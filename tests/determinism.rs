//! Golden-sequence determinism tests.
//!
//! The cycle stepper is the repository's hot loop and gets optimized
//! (scratch-buffer reuse, allocation-free arbitration, a quiet fast path
//! when no analyzer is armed). These tests pin an FNV-1a hash of the
//! complete probe-word sequence for 100k+ cycles of each machine state,
//! so any behavioral drift in a perf refactor — including divergence
//! between `Cluster::run` (quiet) and `Cluster::capture` (probed) — is
//! caught bit-for-bit.

use fx8_sim::{Cluster, MachineConfig, ProbeWord};
use fx8_workload::{kernels, WorkloadMix};

const CYCLES: usize = 100_000;

/// FNV-1a over the packed probe words, framed at the measured machine's
/// 8 lanes. The probe word physically carries a lane per `LaneWord` bit,
/// but these golden machines are all 8-CE FX/8s: hashing only the lanes
/// the machine has keeps the pinned constants stable across probe-word
/// capacity changes while still covering every signal these sequences can
/// produce.
fn fnv1a(words: &[ProbeWord]) -> u64 {
    const N_CES: usize = 8;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for w in words {
        for b in w.cycle.to_le_bytes() {
            eat(b);
        }
        for op in &w.ce_ops[..N_CES] {
            eat(*op as u8);
        }
        eat(w.mem_op as u8);
        eat(w.active_mask as u8);
        debug_assert!(w.check_wellformed(N_CES).is_ok(), "lanes beyond the hash");
    }
    h
}

fn idle_cluster(seed: u64) -> Cluster {
    let mut c = Cluster::new(MachineConfig::fx8(), seed);
    c.set_ip_intensity(WorkloadMix::csrd_production().ip_intensity);
    c
}

fn serial_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    c.mount_serial(kernels::scalar_serial().instantiate(1), 1, None);
    c.run(5_000);
    c
}

fn loop_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    let k = kernels::sor_sweep(1026);
    c.mount_loop(
        k.instantiate(1),
        0,
        1_000_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    c.run(20_000);
    c
}

/// Hashes pinned before the zero-allocation stepper refactor; the
/// sequences must never change.
const GOLDEN_IDLE: u64 = 0x5df3dd129ea63612;
const GOLDEN_SERIAL: u64 = 0x62f3fedbeaedc38c;
const GOLDEN_LOOP: u64 = 0x6f7c2dbd33cdd1d1;

#[test]
fn idle_probe_sequence_matches_golden() {
    let words = idle_cluster(11).capture(CYCLES);
    assert_eq!(fnv1a(&words), GOLDEN_IDLE, "actual {:#018x}", fnv1a(&words));
}

#[test]
fn serial_probe_sequence_matches_golden() {
    let words = serial_cluster(12).capture(CYCLES);
    assert_eq!(
        fnv1a(&words),
        GOLDEN_SERIAL,
        "actual {:#018x}",
        fnv1a(&words)
    );
}

#[test]
fn loop_probe_sequence_matches_golden() {
    let words = loop_cluster(13).capture(CYCLES);
    assert_eq!(fnv1a(&words), GOLDEN_LOOP, "actual {:#018x}", fnv1a(&words));
}

/// The quiet path (`run`, no analyzer armed) must advance the machine
/// bit-identically to the probed path (`capture`): running N quiet cycles
/// then capturing must equal capturing through the same span and keeping
/// the tail.
#[test]
fn quiet_run_and_probed_capture_advance_identically() {
    for build in [idle_cluster, serial_cluster, loop_cluster] {
        let mut quiet = build(29);
        quiet.run(40_000);
        let tail_quiet = quiet.capture(4_096);

        let mut probed = build(29);
        let mut all = probed.capture(40_000 + 4_096);
        let tail_probed = all.split_off(40_000);
        assert_eq!(tail_quiet, tail_probed);
    }
}
