//! The invariant auditor's own suite: with the `audit` feature compiled
//! in, every way the stack drives the machine — raw acquisitions, the
//! three session protocols, the full quick study — must come back with
//! zero violations. A violation here is a simulator bug by definition:
//! either a machine invariant broke, or the probe stream disagreed with
//! the simulator's own ground-truth counters.
//!
//! The whole file is gated: `cargo test --features audit` runs it,
//! a plain `cargo test` compiles it to nothing.
#![cfg(feature = "audit")]

use fx8_study::core::experiment::{
    run_random_session, run_transition_session, run_triggered_session, SessionConfig,
};
use fx8_study::core::study::{Study, StudyConfig};
use fx8_study::monitor::{DasConfig, DasMonitor, Trigger};
use fx8_study::sim::audit::MAX_RECORDED_VIOLATIONS;
use fx8_study::sim::{Cluster, MachineConfig};
use fx8_study::workload::{kernels, WorkloadMix};
use proptest::prelude::*;

fn render(report: &fx8_study::sim::audit::AuditReport) -> String {
    report
        .violations
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

/// The PR's acceptance criterion: the quick study completes with zero
/// violations across all three session types.
#[test]
fn audited_quick_study_is_clean() {
    let cfg = StudyConfig::quick();
    // The fast-forward knob stays *on*: audit builds disable skipping
    // internally, so the auditor checks the same per-cycle trajectory the
    // skipping build claims to reproduce.
    assert!(cfg.machine.fast_forward, "audit runs with the knob enabled");
    let study = Study::run(cfg);
    let report = study.audit_report();
    assert!(report.checked_cycles > 0, "auditor saw every stepped cycle");
    assert!(report.is_clean(), "{}", report.render());
    // Every session contributed a report: 3 random + 2 triggered + 2
    // transition in the quick configuration.
    assert_eq!(report.sessions.len(), 3 + 2 + 2);
    for s in &study.random_sessions {
        assert!(s.audit.checked_cycles > 0, "per-session auditing ran");
    }
}

/// Each session runner, driven alone on a concurrent mix, audits clean
/// and actually checked cycles.
#[test]
fn session_runners_report_clean_audits() {
    let mut cfg = SessionConfig::paper(11);
    cfg.hours = 0.12;
    cfg.warmup_cycles = 1024;
    cfg.mix = WorkloadMix::all_concurrent();
    cfg.validate().expect("test config is legal");

    let r = run_random_session(&cfg, 0);
    assert!(r.audit.checked_cycles > 0);
    assert!(r.audit.is_clean(), "random: {}", render(&r.audit));

    let (caps, audit) = run_triggered_session(&cfg, 0, 2);
    assert!(!caps.is_empty(), "concurrent mix must trigger");
    assert!(audit.is_clean(), "triggered: {}", render(&audit));

    let (caps, audit) = run_transition_session(&cfg, 0, 2);
    assert!(!caps.is_empty(), "loops must drain");
    assert!(audit.is_clean(), "transition: {}", render(&audit));
}

/// Violations are recorded with their context, capped per session, and
/// counted past the cap rather than silently dropped.
#[test]
fn violations_are_recorded_and_capped() {
    let mut c = Cluster::new(MachineConfig::fx8(), 1);
    for i in 0..(MAX_RECORDED_VIOLATIONS + 36) {
        c.audit_note_violation("test", format!("invariant {i}"), "broken".to_string());
    }
    let report = c.audit_report();
    assert!(!report.is_clean());
    assert_eq!(report.violations.len(), MAX_RECORDED_VIOLATIONS);
    assert_eq!(report.dropped_violations, 36);
    assert_eq!(
        report.total_violations(),
        (MAX_RECORDED_VIOLATIONS + 36) as u64
    );
    let first = &report.violations[0];
    assert_eq!(first.component, "test");
    assert!(first.to_string().contains("invariant 0"));
}

proptest! {
    // Each case simulates up to ~100k cycles; two dozen cases keep the
    // suite under control while sweeping kernel × seed × depth × trigger.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Across kernels, seeds, buffer depths and all three trigger types,
    /// a mounted-loop acquisition audits clean (timeouts included: the
    /// auditor checks every stepped cycle whether or not the trigger
    /// fires).
    #[test]
    fn loop_acquisitions_audit_clean(
        kernel_idx in 0usize..6,
        seed in 0u64..1_000,
        depth_idx in 0usize..3,
        trig_idx in 0usize..3,
    ) {
        let depth = [32usize, 128, 512][depth_idx];
        let kernel = match kernel_idx {
            0 => kernels::sor_sweep(258),
            1 => kernels::matmul(24),
            2 => kernels::vector_triad(64),
            3 => kernels::recurrence(512),
            4 => kernels::reduction(64),
            _ => kernels::fine_grain_loop(512),
        };
        let trigger = [
            Trigger::Immediate,
            Trigger::AllCesActive,
            Trigger::TransitionFromFull,
        ][trig_idx];
        let mut c = Cluster::new(MachineConfig::fx8(), seed);
        c.set_ip_intensity(0.1);
        c.mount_loop(
            kernel.instantiate(1),
            0,
            5_000,
            kernels::glue_serial().instantiate(1),
            1,
        );
        let das = DasMonitor::new(DasConfig {
            buffer_depth: depth,
            trigger,
            timeout_cycles: 100_000,
        });
        let _ = das.acquire_reduced(&mut c);
        let report = c.audit_report();
        prop_assert!(report.checked_cycles > 0);
        prop_assert!(report.is_clean(), "{}", render(&report));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Short random-sampling sessions across workload mixes audit clean —
    /// this path exercises macro/micro clock hand-offs (advance_to between
    /// captures), which the auditor must tolerate via its external-change
    /// notifications without false positives.
    #[test]
    fn short_sessions_audit_clean(seed in 0u64..100, mix_idx in 0usize..3) {
        let mut cfg = SessionConfig::paper(seed);
        cfg.hours = 0.05;
        cfg.warmup_cycles = 2_048;
        cfg.mix = match mix_idx {
            0 => WorkloadMix::csrd_production(),
            1 => WorkloadMix::all_concurrent(),
            _ => WorkloadMix::all_serial(),
        };
        let r = run_random_session(&cfg, 0);
        prop_assert!(r.audit.checked_cycles > 0);
        prop_assert!(r.audit.is_clean(), "{}", render(&r.audit));
    }
}
