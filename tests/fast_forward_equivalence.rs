//! Differential proof that event-horizon fast-forwarding is invisible:
//! every protocol in the stack — raw cluster runs over arbitrary kernels,
//! and all three of the study's session types — must produce bit-identical
//! results with the engine on (the default) and off.
//!
//! Compiled away under `--features audit`: audit builds disable skipping
//! internally so the per-cycle auditor stays an independent oracle, which
//! would make the on/off comparison here trivially equal.
#![cfg(not(feature = "audit"))]

use fx8_study::core::experiment::{
    run_random_session, run_transition_session, run_triggered_session, SessionConfig,
};
use fx8_study::sim::{Cluster, MachineConfig};
use fx8_study::workload::kernels::{self, LoopKernel};
use fx8_study::workload::WorkloadMix;
use proptest::prelude::*;

fn with_ff(mut cfg: SessionConfig, on: bool) -> SessionConfig {
    cfg.machine.fast_forward = on;
    cfg
}

fn small_cfg(seed: u64) -> SessionConfig {
    SessionConfig {
        hours: 0.05,
        warmup_cycles: 1024,
        ..SessionConfig::paper(seed)
    }
}

/// All three session protocols on fixed seeds: sample counts, event
/// counts, kernel counters, captures and trigger cycles must all agree.
#[test]
fn session_protocols_are_ff_invariant() {
    let cfg = small_cfg(7);
    assert_eq!(
        run_random_session(&with_ff(cfg.clone(), true), 0),
        run_random_session(&with_ff(cfg, false), 0),
        "random session diverged"
    );
    let cfg = SessionConfig {
        mix: WorkloadMix::all_concurrent(),
        ..small_cfg(8)
    };
    assert_eq!(
        run_triggered_session(&with_ff(cfg.clone(), true), 1, 2),
        run_triggered_session(&with_ff(cfg.clone(), false), 1, 2),
        "triggered session diverged"
    );
    assert_eq!(
        run_transition_session(&with_ff(cfg.clone(), true), 2, 2),
        run_transition_session(&with_ff(cfg, false), 2, 2),
        "transition session diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random-sampling sessions across seeds and sampling cadences. The
    /// three regimes cover the study's five-minute cadence, a short
    /// interval yielding several samples, and the degenerate interval of a
    /// handful of cycles where the snapshot spacing floors to zero and the
    /// snapshots run back-to-back.
    #[test]
    fn random_sessions_are_ff_invariant(seed in 0u64..10_000, regime in 0usize..3) {
        let (interval_s, hours) = match regime {
            0 => (300.0, 0.06),
            1 => (2.0, 0.002),
            _ => (8.5e-7, 1e-8), // ~5 cycles: snapshot spacing floors to 0
        };
        let cfg = SessionConfig {
            sample_interval_s: interval_s,
            hours,
            warmup_cycles: 256,
            buffer_depth: 96,
            ..SessionConfig::paper(seed)
        };
        let on = run_random_session(&with_ff(cfg.clone(), true), 0);
        let off = run_random_session(&with_ff(cfg, false), 0);
        prop_assert_eq!(on, off);
    }

    /// Triggered and transition sessions across seeds, including the
    /// degenerate horizon where the capture spacing floors to one cycle
    /// and the session gives up without a single armed acquisition.
    #[test]
    fn triggered_sessions_are_ff_invariant(seed in 0u64..10_000, degenerate in any::<bool>()) {
        let cfg = SessionConfig {
            mix: WorkloadMix::all_concurrent(),
            hours: if degenerate { 1e-10 } else { 0.02 },
            warmup_cycles: 1024,
            ..SessionConfig::paper(seed)
        };
        prop_assert_eq!(
            run_triggered_session(&with_ff(cfg.clone(), true), 0, 2),
            run_triggered_session(&with_ff(cfg.clone(), false), 0, 2)
        );
        prop_assert_eq!(
            run_transition_session(&with_ff(cfg.clone(), true), 0, 1),
            run_transition_session(&with_ff(cfg, false), 0, 1)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary loop kernels driven straight on the cluster: after a
    /// quiet run and a probed capture, the full observable state digest,
    /// the captured words, and the clock must match per-cycle stepping.
    #[test]
    fn random_loop_kernels_are_ff_invariant(
        iters in 1u64..96,
        panel_lines in 1u64..256,
        panel_refs in 1u32..48,
        compute in 1u32..256,
        dependence in prop::option::of(0.2f64..0.8),
        seed in 0u64..1_000,
        ip_on in any::<bool>(),
    ) {
        let kernel = LoopKernel {
            name: "prop".into(),
            iters,
            panel_lines,
            panel_refs,
            stream_lines: 2,
            store_lines: 1,
            compute,
            code_bytes: 512,
            dependence,
            variance: 0.1,
        };
        let drive = |ff: bool| {
            let mut cfg = MachineConfig::fx8();
            cfg.fast_forward = ff;
            let mut c = Cluster::new(cfg, seed);
            c.set_ip_intensity(if ip_on { 0.1 } else { 0.0 });
            c.mount_loop(
                kernel.instantiate(1),
                0,
                kernel.iters,
                kernels::glue_serial().instantiate(1),
                1,
            );
            c.run(40_000);
            let words = c.capture(128);
            (c.state_digest(), words, c.now(), c.skip_counters().0)
        };
        let (d_on, w_on, n_on, _) = drive(true);
        let (d_off, w_off, n_off, sk_off) = drive(false);
        prop_assert_eq!(sk_off, 0, "knob off must never skip");
        prop_assert_eq!(n_on, n_off);
        prop_assert_eq!(d_on, d_off);
        prop_assert_eq!(w_on, w_off);
    }
}
