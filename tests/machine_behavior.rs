//! Machine-level behavioral invariants across the workload kernel library:
//! every kernel must run to completion on the simulated cluster with
//! conserved iteration counts and sensible probe output.

use fx8_study::monitor::EventCounts;
use fx8_study::sim::cluster::LoadKind;
use fx8_study::sim::{Cluster, MachineConfig};
use fx8_study::workload::kernels::{self, LoopKernel};

fn run_loop_to_drain(kernel: &LoopKernel, iters: u64, seed: u64) -> (Cluster, u64) {
    let mut c = Cluster::new(MachineConfig::fx8(), seed);
    c.set_ip_intensity(0.01);
    c.mount_loop(
        kernel.instantiate(1),
        0,
        iters,
        kernels::glue_serial().instantiate(1),
        1,
    );
    let mut steps = 0u64;
    while c.load_kind() != LoadKind::Drained {
        c.step();
        steps += 1;
        assert!(
            steps < 20_000_000,
            "{} did not drain in 20M cycles",
            kernel.name
        );
    }
    (c, steps)
}

#[test]
fn every_loop_kernel_drains_with_exact_iteration_count() {
    let cases: Vec<LoopKernel> = vec![
        kernels::matmul(66),
        kernels::sor_sweep(50),
        kernels::vector_triad(66),
        kernels::recurrence(50),
        kernels::reduction(66),
        kernels::lu_panel(66),
    ];
    for k in cases {
        let iters = k.iters;
        let (c, _) = run_loop_to_drain(&k, iters, 7);
        let done: u64 = (0..8).map(|i| c.ce_stats(i).iters_completed).sum();
        assert_eq!(done, iters, "{}: wrong iteration count", k.name);
    }
}

#[test]
fn dependent_kernel_serializes_but_terminates() {
    let k = kernels::recurrence(64);
    let (c, steps) = run_loop_to_drain(&k, 64, 3);
    // The dependence must generate synchronization waiting.
    assert!(c.ccb_stats().sync_wait_cycles > 0);
    // And the loop must take longer per iteration than an equivalent
    // independent kernel.
    let mut indep = kernels::recurrence(64);
    indep.dependence = None;
    let (_, steps_indep) = run_loop_to_drain(&indep, 64, 3);
    assert!(
        steps > steps_indep,
        "dependent {} vs independent {} cycles",
        steps,
        steps_indep
    );
}

#[test]
fn streaming_kernel_misses_more_than_panel_kernel() {
    let probe = |k: &LoopKernel| -> f64 {
        let mut c = Cluster::new(MachineConfig::fx8(), 5);
        c.set_ip_intensity(0.0);
        c.mount_loop(
            k.instantiate(1),
            0,
            1_000_000,
            kernels::glue_serial().instantiate(1),
            1,
        );
        c.run(20_000);
        let words = c.capture(4_096);
        EventCounts::reduce(&words, 8).missrate()
    };
    let streaming = probe(&kernels::vector_triad(100_000));
    let panelled = probe(&kernels::matmul(258));
    assert!(
        streaming > 2.0 * panelled,
        "triad missrate {streaming} should dwarf matmul {panelled}"
    );
}

#[test]
fn serial_execution_touches_only_one_bus() {
    let mut c = Cluster::new(MachineConfig::fx8(), 2);
    c.set_ip_intensity(0.0);
    c.mount_serial(kernels::scalar_serial().instantiate(1), 1, Some(4));
    c.run(2_000);
    let words = c.capture(2_000);
    for w in &words {
        for j in 0..8 {
            if j != 4 {
                assert!(!w.ce_ops[j].is_busy(), "CE {j} busy during serial-on-CE4");
            }
        }
    }
}

#[test]
fn icache_absorbs_loop_body_instruction_traffic() {
    // A loop body that fits the 16 KB icache stops issuing IFetch requests
    // after its first pass.
    let k = kernels::sor_sweep(1026); // code_bytes = 1 KB << 16 KB
    let mut c = Cluster::new(MachineConfig::fx8(), 9);
    c.set_ip_intensity(0.0);
    c.mount_loop(
        k.instantiate(1),
        0,
        1_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    c.run(50_000); // plenty of passes
    let words = c.capture(4_096);
    let counts = EventCounts::reduce(&words, 8);
    let ifetch = counts.ceop[fx8_study::sim::opcode::CeBusOp::IFetch.index()];
    let total_busy: u64 = counts.ceop.iter().sum::<u64>()
        - counts.ceop[fx8_study::sim::opcode::CeBusOp::Idle.index()];
    assert!(
        (ifetch as f64) < 0.02 * total_busy as f64,
        "ifetch {ifetch} of {total_busy} busy cycles — icache not absorbing"
    );
}

#[test]
fn cross_ce_sharing_reduces_missrate_versus_narrow_run() {
    // The same kernel on 8 CEs should have *at most* proportionally more
    // misses per record than on 1 CE (shared panel reuse) — Missrate's
    // P_c-insensitivity in miniature.
    let missrate_width = |width: usize| -> f64 {
        let mut c = Cluster::new(MachineConfig::fx8(), 11);
        c.set_ip_intensity(0.0);
        struct Quiet(fx8_study::sim::stream::CodeRegion);
        impl fx8_study::sim::stream::SerialCode for Quiet {
            fn code(&self) -> fx8_study::sim::stream::CodeRegion {
                self.0
            }
            fn gen_block(&mut self, _ce: usize, out: &mut Vec<fx8_study::sim::stream::Op>) {
                out.push(fx8_study::sim::stream::Op::Compute(64));
            }
        }
        for ce in width..8 {
            let region = fx8_study::sim::stream::CodeRegion::test_region(9);
            c.mount_detached(ce, Box::new(Quiet(region)), 9);
        }
        let k = kernels::matmul(258);
        c.mount_loop(
            k.instantiate(1),
            0,
            1_000_000,
            kernels::glue_serial().instantiate(1),
            1,
        );
        c.run(30_000);
        let words = c.capture(4_096);
        EventCounts::reduce(&words, 8).missrate()
    };
    let wide = missrate_width(8);
    let narrow = missrate_width(2);
    assert!(
        wide < narrow * 6.0,
        "missrate grew superlinearly with width: 2-wide {narrow}, 8-wide {wide}"
    );
}

#[test]
fn tiny_machine_runs_the_same_kernels() {
    let k = kernels::sor_sweep(50);
    let mut c = Cluster::new(MachineConfig::tiny(), 1);
    c.set_ip_intensity(0.0);
    c.mount_loop(
        k.instantiate(1),
        0,
        50,
        kernels::glue_serial().instantiate(1),
        1,
    );
    let mut steps = 0;
    while c.load_kind() != LoadKind::Drained && steps < 10_000_000 {
        c.step();
        steps += 1;
    }
    assert_eq!(c.load_kind(), LoadKind::Drained);
    let done: u64 = (0..2).map(|i| c.ce_stats(i).iters_completed).sum();
    assert_eq!(done, 50);
}
