//! Property-based tests over the core data structures and invariants.

use fx8_study::monitor::EventCounts;
use fx8_study::sim::addr::{LineId, PageId, VAddr};
use fx8_study::sim::cache::SetAssocCache;
use fx8_study::sim::opcode::{CeBusOp, MemBusOp};
use fx8_study::sim::vm::{FaultMode, Vm};
use fx8_study::sim::ProbeWord;
use fx8_study::stats::freq::{midpoints, FreqDist};
use fx8_study::stats::measures::ConcurrencyMeasures;
use fx8_study::stats::regression::fit_quadratic;
use fx8_study::stats::summary::{median, quantile};
use proptest::prelude::*;

fn probe_word_strategy() -> impl Strategy<Value = ProbeWord> {
    (
        any::<u64>(),
        any::<u8>(),
        proptest::array::uniform8(0u8..CeBusOp::COUNT as u8),
        0u8..MemBusOp::COUNT as u8,
    )
        .prop_map(|(cycle, mask, ce_ops, mem_op)| {
            let mut w = ProbeWord::idle(cycle);
            w.active_mask = mask as fx8_study::sim::LaneWord;
            for (i, &op) in ce_ops.iter().enumerate() {
                w.ce_ops[i] = CeBusOp::ALL[op as usize];
            }
            w.mem_op = MemBusOp::ALL[mem_op as usize];
            w
        })
}

proptest! {
    #[test]
    fn measures_identities_hold(num in proptest::collection::vec(0u64..10_000, 2..9)) {
        let m = ConcurrencyMeasures::from_counts(&num);
        let total: u64 = num.iter().sum();
        if total > 0 {
            // Σ c_j = 1.
            prop_assert!((m.c.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // C_w = Σ_{j>=2} c_j.
            let cw: f64 = m.c.iter().skip(2).sum();
            prop_assert!((m.workload_concurrency - cw).abs() < 1e-12);
            // P_c within [2, P] iff concurrency exists.
            match m.mean_concurrency_level {
                Some(pc) => {
                    prop_assert!(m.workload_concurrency > 0.0);
                    prop_assert!(pc >= 2.0 - 1e-12);
                    prop_assert!(pc <= (num.len() - 1) as f64 + 1e-12);
                    // Conditional distribution sums to 1.
                    prop_assert!((m.conditional.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                }
                None => prop_assert!(m.workload_concurrency == 0.0),
            }
        }
    }

    #[test]
    fn event_count_reduction_conserves_records(
        words in proptest::collection::vec(probe_word_strategy(), 0..200)
    ) {
        let c = EventCounts::reduce(&words, 8);
        prop_assert_eq!(c.records, words.len() as u64);
        prop_assert_eq!(c.num.iter().sum::<u64>(), c.records);
        prop_assert_eq!(c.ceop.iter().sum::<u64>(), c.records * 8);
        prop_assert_eq!(c.membop.iter().sum::<u64>(), c.records);
        // prof_j never exceeds records; Σ prof = Σ j*num_j.
        let weighted: u64 = c.num.iter().enumerate().map(|(j, &n)| j as u64 * n).sum();
        prop_assert_eq!(c.prof.iter().sum::<u64>(), weighted);
        for &p in &c.prof {
            prop_assert!(p <= c.records);
        }
        // Measures bounded.
        prop_assert!((0.0..=1.0).contains(&c.ce_bus_busy()));
        prop_assert!((0.0..=1.0).contains(&c.mem_bus_busy()));
    }

    #[test]
    fn merged_counts_equal_concatenated_reduction(
        a in proptest::collection::vec(probe_word_strategy(), 0..100),
        b in proptest::collection::vec(probe_word_strategy(), 0..100),
    ) {
        let mut merged = EventCounts::reduce(&a, 8);
        merged.merge(&EventCounts::reduce(&b, 8));
        let mut concat = a.clone();
        concat.extend(b.iter().copied());
        prop_assert_eq!(merged, EventCounts::reduce(&concat, 8));
    }

    #[test]
    fn cache_never_exceeds_capacity_and_finds_after_fill(
        lines in proptest::collection::vec(0u64..64, 1..300)
    ) {
        let n_sets = 4;
        let assoc = 2;
        let mut cache = SetAssocCache::new(n_sets, assoc);
        for &l in &lines {
            let set = (l % n_sets as u64) as usize;
            let line = LineId(l);
            if cache.lookup(set, line).is_none() {
                cache.fill(set, line, l % 3 == 0, false);
            }
            // Found immediately after access, always.
            prop_assert!(cache.contains(set, line));
            prop_assert!(cache.occupancy() <= n_sets * assoc);
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lines.len() as u64);
    }

    #[test]
    fn vm_residency_bounded_and_counts_monotone(
        pages in proptest::collection::vec(0u64..50, 1..400),
        frames in 1u64..32,
    ) {
        let mut vm = Vm::new(frames, 1);
        let mut last_faults = 0;
        for &p in &pages {
            vm.touch(0, PageId(p), FaultMode::User);
            prop_assert!(vm.resident_count() as u64 <= frames);
            let f = vm.fault_counts(0).total();
            prop_assert!(f >= last_faults);
            last_faults = f;
            // The page just touched is always resident afterwards.
            prop_assert!(vm.is_resident(PageId(p)));
        }
    }

    #[test]
    fn quadratic_fit_recovers_exact_polynomials(
        b1 in -100.0f64..100.0,
        b2 in -100.0f64..100.0,
        c in -100.0f64..100.0,
    ) {
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|i| {
                let x = i as f64 * 0.37;
                (x, b1 * x + b2 * x * x + c)
            })
            .collect();
        let m = fit_quadratic(&pts).unwrap();
        let scale = b1.abs().max(b2.abs()).max(c.abs()).max(1.0);
        prop_assert!((m.b1 - b1).abs() / scale < 1e-6, "b1 {} vs {}", m.b1, b1);
        prop_assert!((m.b2 - b2).abs() / scale < 1e-6, "b2 {} vs {}", m.b2, b2);
        prop_assert!((m.c - c).abs() / scale < 1e-6, "c {} vs {}", m.c, c);
        prop_assert!(m.r2 > 1.0 - 1e-9);
    }

    #[test]
    fn regression_residuals_orthogonal_to_basis(
        ys in proptest::collection::vec(-50.0f64..50.0, 4..20)
    ) {
        let pts: Vec<(f64, f64)> =
            ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
        let m = fit_quadratic(&pts).unwrap();
        let (mut r1, mut rx, mut rx2) = (0.0, 0.0, 0.0);
        let scale: f64 = ys.iter().map(|y| y.abs()).sum::<f64>().max(1.0);
        for &(x, y) in &pts {
            let r = y - m.predict(x);
            r1 += r;
            rx += r * x;
            rx2 += r * x * x;
        }
        let n3 = (pts.len() as f64).powi(3);
        prop_assert!(r1.abs() / scale < 1e-6);
        prop_assert!(rx.abs() / (scale * n3) < 1e-6);
        prop_assert!(rx2.abs() / (scale * n3 * pts.len() as f64) < 1e-6);
        prop_assert!(m.r2 <= 1.0 + 1e-12);
    }

    #[test]
    fn freq_distributions_conserve_counts(
        values in proptest::collection::vec(-2.0f64..3.0, 0..200)
    ) {
        let mids = midpoints(0.0, 0.25, 5);
        let d = FreqDist::from_values(&values, &mids);
        prop_assert_eq!(d.total() as usize, values.len());
        let cum = d.cum_freq();
        prop_assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        if !values.is_empty() {
            prop_assert!((d.cum_percent().last().unwrap() - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(-1e6f64..1e6, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        prop_assert!(a <= b);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min && b <= max);
        let med = median(&values).unwrap();
        prop_assert!((min..=max).contains(&med));
    }

    #[test]
    fn vaddr_round_trips(asid in 0u16..4096, offset in 0u64..(1u64 << 32)) {
        let a = VAddr::new(asid, offset);
        prop_assert_eq!(a.asid(), asid);
        prop_assert_eq!(a.offset(), offset);
        // Line and page of the address contain the address.
        let line = a.line(32);
        prop_assert!(line.base(32).0 <= a.0 && a.0 < line.base(32).0 + 32);
        let page = a.page();
        prop_assert!(page.base().0 <= a.0 && a.0 < page.base().0 + 4096);
    }
}
