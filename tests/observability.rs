//! Cross-crate tests of the `fx8-trace` observability layer.
//!
//! Two properties are load-bearing for the whole layer:
//!
//! * the Chrome `trace_event` export is real JSON that a trace viewer can
//!   load: it parses back, every record is well-formed, spans nest, and
//!   each session appears as a named process;
//! * the metrics registry agrees with the simulator's own ground-truth
//!   counters (CCB grant statistics, cache access counts) — the tracer
//!   observes the machine, it does not keep a parallel version of it.

use fx8_study::core::experiment::{run_random_session, run_random_session_observed};
use fx8_study::prelude::*;
use proptest::prelude::*;
use serde::Value;
use std::collections::BTreeMap;

/// The mini study used across core's own tests: every session type, short
/// horizons, a fully concurrent mix so the CCB and crossbar stay busy.
fn mini_builder() -> StudyConfigBuilder {
    StudyConfig::builder()
        .n_random(2)
        .session_hours(vec![0.12, 0.12])
        .n_triggered(1)
        .captures_per_triggered(2)
        .n_transition(1)
        .captures_per_transition(2)
        .mix(WorkloadMix::all_concurrent())
}

fn as_str<'v>(v: &'v Value, what: &str) -> &'v str {
    match v {
        Value::Str(s) => s,
        other => panic!("{what}: expected string, got {other:?}"),
    }
}

fn as_num(v: &Value, what: &str) -> f64 {
    match v {
        Value::Num(s) => s.parse().unwrap_or_else(|e| panic!("{what}: {e}")),
        other => panic!("{what}: expected number, got {other:?}"),
    }
}

/// Export a fully traced mini study as Chrome JSON, parse it back, and
/// check the event stream a viewer would rely on: phases are known, every
/// record carries `name`/`ph`/`pid` (`ts` unless metadata, `dur` on
/// spans), spans on one (pid, tid) lane are ordered and non-overlapping,
/// and every session is announced as a named process.
#[test]
fn chrome_trace_round_trips_and_spans_nest() {
    let cfg = mini_builder()
        .trace(TraceConfig::full())
        .build()
        .expect("mini study config validates");
    let ns_per_cycle = cfg.machine.ns_per_cycle;
    let (_study, obs) = Study::run_observed(cfg);
    let json = obs.chrome_trace(ns_per_cycle);

    let doc: Value = serde_json::from_str(&json).expect("export is valid JSON");
    let Some(Value::Array(events)) = doc.get("traceEvents") else {
        panic!("export lacks a traceEvents array");
    };
    assert!(!events.is_empty(), "a traced study emits events");

    let mut process_names = Vec::new();
    let mut spans: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let name = as_str(ev.get("name").expect("every event has a name"), "name");
        let ph = as_str(ev.get("ph").expect("every event has a phase"), "ph");
        let pid = as_num(ev.get("pid").expect("every event has a pid"), "pid");
        assert!(
            matches!(ph, "M" | "C" | "i" | "X"),
            "event {i}: unknown phase {ph:?}"
        );
        if ph != "M" {
            let ts = as_num(ev.get("ts").expect("timed events carry ts"), "ts");
            assert!(ts >= 0.0, "event {i}: negative timestamp");
        }
        if ph == "M" && name == "process_name" {
            let args = ev.get("args").expect("metadata carries args");
            process_names
                .push(as_str(args.get("name").expect("args.name"), "args.name").to_string());
        }
        if ph == "X" {
            let tid = as_num(ev.get("tid").expect("spans carry tid"), "tid");
            let ts = as_num(ev.get("ts").unwrap(), "ts");
            let dur = as_num(ev.get("dur").expect("spans carry dur"), "dur");
            assert!(dur >= 0.0, "event {i}: negative duration");
            spans
                .entry((format!("{pid}"), format!("{tid}")))
                .or_default()
                .push((ts, dur));
        }
    }

    for label in ["random 0", "random 1", "triggered 0", "transition 0"] {
        assert!(
            process_names.iter().any(|n| n == label),
            "session {label:?} missing from process metadata {process_names:?}"
        );
    }
    // Spans on a lane are emitted in machine-time order and describe
    // disjoint windows (fast-forward skips, dense batches): each one ends
    // before the next begins.
    for ((pid, tid), lane) in &spans {
        for w in lane.windows(2) {
            let (t0, d0) = w[0];
            let (t1, _) = w[1];
            assert!(
                t1 >= t0 + d0 - 1e-6,
                "lane ({pid},{tid}): span at {t1} overlaps span {t0}+{d0}"
            );
        }
    }
}

/// The exporter output also satisfies the standalone `trace_check`
/// well-formedness contract when written through `std::fmt` consumers —
/// cheap guard that the file ends exactly where the JSON does.
#[test]
fn chrome_trace_has_no_trailing_garbage() {
    let cfg = mini_builder()
        .n_random(1)
        .session_hours(vec![0.05])
        .n_triggered(0)
        .n_transition(0)
        .trace(TraceConfig::full())
        .build()
        .unwrap();
    let ns = cfg.machine.ns_per_cycle;
    let (_study, obs) = Study::run_observed(cfg);
    let json = obs.chrome_trace(ns);
    assert!(json.starts_with('{') && json.trim_end().ends_with("]}"));
    serde_json::from_str::<Value>(json.trim_end()).expect("whole file is one JSON value");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Metrics equal ground truth on short random-sampling sessions, for
    /// arbitrary seeds: the grant-latency histogram saw exactly the grants
    /// the CCB hardware counters recorded, per-bank crossbar grants
    /// partition the total, every crossbar grant was a CE cache access,
    /// the engine split partitions the stepped timeline — and arming the
    /// metrics registry never steers the simulation.
    #[test]
    fn metrics_agree_with_ground_truth_counters(seed in 0u64..1024) {
        let machine = MachineConfig::builder()
            .trace(TraceConfig::metrics_only())
            .build()
            .unwrap();
        let mut cfg = fx8_study::core::experiment::SessionConfig::quick(seed);
        cfg.hours = 0.05;
        cfg.machine = machine;
        cfg.validate().unwrap();

        let (result, obs) = run_random_session_observed(&cfg, 0);
        let m = &obs.metrics;
        prop_assert!(m.cycles.consistent(), "engine split must partition total");
        prop_assert!(m.cycles.total > 0, "the session stepped cycles");
        prop_assert_eq!(
            m.ccb_grant_latency.count,
            m.ccb_grants_by_ce.iter().sum::<u64>(),
            "histogram saw every CCB grant"
        );
        prop_assert_eq!(
            m.crossbar_grants_by_bank.iter().sum::<u64>(),
            m.crossbar_grants,
            "per-bank grants partition the total"
        );
        prop_assert_eq!(
            m.crossbar_grants, m.cache_ce_accesses,
            "every crossbar grant is one CE cache access"
        );
        prop_assert_eq!(m.events_recorded, 0, "metrics-only mode records no events");
        prop_assert!(obs.events.is_empty());

        // Tracing never steers: a plain untraced run is bit-identical.
        let mut plain_cfg = cfg.clone();
        plain_cfg.machine.trace = TraceConfig::off();
        let plain = run_random_session(&plain_cfg, 0);
        prop_assert_eq!(&result, &plain, "metrics must be a pure observer");
    }
}
