//! Cross-crate integration: the full measurement pipeline end to end.

use fx8_study::core::study::{Study, StudyConfig};
use fx8_study::core::{report, tables};
use fx8_study::workload::WorkloadMix;
use std::sync::OnceLock;

fn quick_cfg() -> StudyConfig {
    StudyConfig {
        n_random: 2,
        session_hours: vec![0.2, 0.2],
        n_triggered: 1,
        captures_per_triggered: 3,
        n_transition: 1,
        captures_per_transition: 3,
        mix: WorkloadMix::all_concurrent(),
        ..StudyConfig::paper()
    }
}

/// One shared study for the read-only assertions (built once per process).
fn shared_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(quick_cfg()))
}

#[test]
fn full_pipeline_produces_report_and_comparison() {
    let study = shared_study();
    let report_text = report::render_full_report(study);
    assert!(report_text.contains("TABLE 2"));
    assert!(report_text.contains("Figure B.10") || report_text.contains("Figure B.9"));
    let rows = report::comparison(study);
    assert!(rows.len() >= 10);
    // Every measured value is finite (NaN would mean a broken pipeline
    // stage, except P_c-band medians that can legitimately be empty on a
    // tiny study).
    for r in &rows {
        if r.id != "Figure 10" && r.id != "Figure 11" {
            assert!(
                r.measured.is_finite(),
                "{} / {} is not finite",
                r.id,
                r.metric
            );
        }
    }
}

fn tiny_cfg() -> StudyConfig {
    StudyConfig {
        n_random: 1,
        session_hours: vec![0.1],
        n_triggered: 0,
        n_transition: 1,
        captures_per_transition: 2,
        mix: WorkloadMix::all_concurrent(),
        ..StudyConfig::paper()
    }
}

#[test]
fn study_is_deterministic_across_runs() {
    let a = Study::run(tiny_cfg());
    let b = Study::run(tiny_cfg());
    assert_eq!(a.pooled_num(), b.pooled_num());
    assert_eq!(a.pooled_transition_counts(), b.pooled_transition_counts());
}

#[test]
fn different_seeds_give_different_data() {
    let a = Study::run(tiny_cfg());
    let mut cfg = tiny_cfg();
    cfg.base_seed += 1;
    let b = Study::run(cfg);
    assert_ne!(a.pooled_num(), b.pooled_num());
}

#[test]
fn study_serializes_and_round_trips() {
    let study = shared_study();
    let json = serde_json::to_string(study).expect("serialize");
    let back: Study = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.pooled_num(), study.pooled_num());
    assert_eq!(back.random_sessions.len(), study.random_sessions.len());
}

#[test]
fn record_conservation_holds_through_every_stage() {
    let study = shared_study();
    let cfg = &study.config;
    // Each sample holds exactly snapshots x buffer-depth records.
    for session in &study.random_sessions {
        for s in &session.samples {
            assert_eq!(s.counts.records, 5 * 512);
            assert_eq!(s.counts.num.iter().sum::<u64>(), s.counts.records);
            for j in 0..8 {
                assert!(s.counts.prof[j] <= s.counts.records);
            }
            assert_eq!(s.counts.ceop.iter().sum::<u64>(), s.counts.records * 8);
            assert_eq!(s.counts.membop.iter().sum::<u64>(), s.counts.records);
        }
    }
    // Triggered/transition buffers hold exactly one buffer of records.
    for bufs in study.triggered.iter().chain(study.transitions.iter()) {
        for b in bufs {
            assert_eq!(b.counts.records, 512);
        }
    }
    let _ = cfg;
}

#[test]
fn serial_only_workload_yields_zero_concurrency_everywhere() {
    let cfg = StudyConfig {
        n_random: 1,
        session_hours: vec![0.2],
        n_triggered: 0,
        n_transition: 0,
        mix: WorkloadMix::all_serial(),
        ..StudyConfig::paper()
    };
    let study = Study::run(cfg);
    let m = study.overall_measures();
    assert_eq!(m.workload_concurrency, 0.0);
    assert_eq!(m.mean_concurrency_level, None);
    // Table 2 renders the undefined case without panicking.
    let rendered = tables::table2(&study).render();
    assert!(rendered.contains("undefined"));
}

#[test]
fn quick_study_config_is_self_consistent() {
    let cfg = StudyConfig::quick();
    assert!(cfg.n_random <= cfg.session_hours.len());
    let study = Study::run(cfg);
    assert!(study.pooled_counts().records > 0);
}
