//! Property-based tests at the machine and workload level: arbitrary kernel
//! parameters and schedules must never violate the cluster's invariants.

use fx8_study::monitor::{DasConfig, DasMonitor, EventCounts, Trigger};
use fx8_study::sim::ccb::{Ccb, IterGrant};
use fx8_study::sim::cluster::LoadKind;
use fx8_study::sim::config::Arbitration;
use fx8_study::sim::{Cluster, MachineConfig};
use fx8_study::workload::kernels::LoopKernel;
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = LoopKernel> {
    (
        1u64..64,  // iters
        1u64..512, // panel lines
        1u32..64,  // panel refs
        0u32..8,   // stream lines
        0u32..4,   // store lines
        1u32..256, // compute
        prop::option::of(0.1f64..0.9),
        0.0f64..0.3,
    )
        .prop_map(|(iters, pl, pr, sl, st, comp, dep, var)| LoopKernel {
            name: "prop".into(),
            iters,
            panel_lines: pl,
            panel_refs: pr,
            stream_lines: sl,
            store_lines: st,
            compute: comp,
            code_bytes: 512,
            dependence: dep,
            variance: var,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any loop kernel mounted on the cluster drains with exactly its
    /// iteration count completed, and every probe record is well-formed.
    #[test]
    fn every_kernel_drains_with_exact_iterations(kernel in arb_kernel(), seed in 0u64..32) {
        let mut c = Cluster::new(MachineConfig::fx8(), seed);
        c.set_ip_intensity(0.01);
        c.mount_loop(
            kernel.instantiate(1),
            0,
            kernel.iters,
            fx8_study::workload::kernels::glue_serial().instantiate(1),
            1,
        );
        let mut counts = EventCounts::empty(8);
        let mut steps = 0u64;
        while c.load_kind() != LoadKind::Drained {
            let w = c.step();
            prop_assert!(w.active_count() <= 8);
            counts.accumulate(&[w]);
            steps += 1;
            prop_assert!(steps < 30_000_000, "kernel did not drain");
        }
        let done: u64 = (0..8).map(|i| c.ce_stats(i).iters_completed).sum();
        prop_assert_eq!(done, kernel.iters);
        // Probe-side conservation held throughout.
        prop_assert_eq!(counts.num.iter().sum::<u64>(), counts.records);
        // Narrow loops never activate more CEs than they have iterations,
        // beyond the brief cstart transient in which every CE asserts its
        // line while the serialized grant chain resolves (at most one grant
        // period per CE).
        let width = kernel.iters.min(8) as usize;
        let transient: u64 = ((width + 1)..=8).map(|j| counts.num[j]).sum();
        let transient_bound = 8 * c.config().ccb_grant_cycles + 16;
        prop_assert!(
            transient <= transient_bound,
            "steady records above width {}: {} (bound {})",
            width,
            transient,
            transient_bound
        );
    }

    /// The CCB hands out every iteration exactly once, whatever the
    /// request pattern.
    #[test]
    fn ccb_grants_each_iteration_exactly_once(
        total in 1u64..200,
        pattern in proptest::collection::vec(0u8..=255, 1..64),
        arb in prop::sample::select(vec![
            Arbitration::FixedLowFirst,
            Arbitration::EndsFirst,
            Arbitration::CenterFirst,
            Arbitration::RoundRobin,
        ]),
    ) {
        let mut ccb = Ccb::new(8, arb, 1);
        ccb.start_loop(0, total);
        let mut granted = Vec::new();
        let mut t = 0u64;
        let mut pat = pattern.iter().cycle();
        // Drive with a pseudo-random request mask; ensure progress by
        // forcing all-request once the pattern mask goes quiet.
        while granted.len() < total as usize {
            let mask = *pat.next().expect("cycled");
            let mut requesting = [false; 8];
            for (j, r) in requesting.iter_mut().enumerate() {
                *r = mask & (1 << j) != 0;
            }
            if mask == 0 {
                requesting = [true; 8];
            }
            for g in ccb.arbitrate(t, &requesting) {
                if let IterGrant::Iter(i) = g {
                    granted.push(i);
                }
            }
            t += 1;
            prop_assert!(t < 100_000, "grants stalled");
        }
        granted.sort_unstable();
        let expect: Vec<u64> = (0..total).collect();
        prop_assert_eq!(granted, expect);
    }

    /// Streaming acquisition equals reducing a materialized buffer: for any
    /// kernel, seed, buffer depth, and trigger, `acquire_reduced` matches
    /// `EventCounts::reduce(acquire(..).records)` and both paths advance
    /// the machine identically (including the timeout path).
    #[test]
    fn acquire_reduced_equals_buffered_reduce(
        kernel in arb_kernel(),
        seed in 0u64..16,
        depth in 1usize..600,
        trigger in prop::sample::select(vec![
            Trigger::Immediate,
            Trigger::AllCesActive,
            Trigger::TransitionFromFull,
        ]),
    ) {
        let machine = || {
            let mut c = Cluster::new(MachineConfig::fx8(), seed);
            c.set_ip_intensity(0.02);
            c.mount_loop(
                kernel.instantiate(1),
                0,
                kernel.iters,
                fx8_study::workload::kernels::glue_serial().instantiate(1),
                1,
            );
            c
        };
        let das = DasMonitor::new(DasConfig {
            buffer_depth: depth,
            trigger,
            timeout_cycles: 200_000,
        });
        let (mut a, mut b) = (machine(), machine());
        let buffered = das.acquire(&mut a);
        let streamed = das.acquire_reduced(&mut b);
        match (buffered, streamed) {
            (Ok(acq), Ok(red)) => {
                prop_assert_eq!(red.triggered_at, acq.triggered_at);
                prop_assert_eq!(red.counts, EventCounts::reduce(&acq.records, 8));
            }
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            (b1, s1) => prop_assert!(false, "paths disagree: {:?} vs {:?}", b1, s1),
        }
        prop_assert_eq!(a.now(), b.now());
    }

    /// Cluster execution is deterministic for any kernel/seed pair.
    #[test]
    fn cluster_trace_is_deterministic(kernel in arb_kernel(), seed in 0u64..16) {
        let run = || {
            let mut c = Cluster::new(MachineConfig::fx8(), seed);
            c.set_ip_intensity(0.02);
            c.mount_loop(
                kernel.instantiate(1),
                0,
                kernel.iters,
                fx8_study::workload::kernels::glue_serial().instantiate(1),
                1,
            );
            c.capture(800)
        };
        prop_assert_eq!(run(), run());
    }
}
