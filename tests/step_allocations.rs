//! Proof that the steady-state cycle stepper never touches the heap.
//!
//! A counting global allocator wraps the system allocator; after warming a
//! cluster past its transient growth (op queues, the memory-bus start ring,
//! refill scratch buffers reaching their high-water capacity), stepping
//! must perform zero allocations. The simulator is deterministic, so this
//! is a stable property, not a flaky timing assertion.

use fx8_sim::{Cluster, MachineConfig, TraceConfig};
use fx8_workload::{kernels, WorkloadMix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Count allocations performed by `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let r = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::SeqCst), r)
}

fn cluster(seed: u64) -> Cluster {
    let mut c = Cluster::new(MachineConfig::fx8(), seed);
    c.set_ip_intensity(WorkloadMix::csrd_production().ip_intensity);
    c
}

#[test]
fn step_allocations_idle_steady_state_is_zero() {
    let mut c = cluster(21);
    c.run(50_000);
    let (allocs, _) = allocations_during(|| c.run(10_000));
    assert_eq!(allocs, 0, "idle stepping allocated {allocs} times");
}

#[test]
fn step_allocations_serial_steady_state_is_zero() {
    let mut c = cluster(22);
    c.mount_serial(kernels::scalar_serial().instantiate(1), 1, None);
    c.run(50_000);
    let (allocs, _) = allocations_during(|| c.run(10_000));
    assert_eq!(allocs, 0, "serial stepping allocated {allocs} times");
}

#[test]
fn step_allocations_loop_steady_state_is_zero() {
    let mut c = cluster(23);
    let k = kernels::sor_sweep(1026);
    c.mount_loop(
        k.instantiate(1),
        0,
        1_000_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    c.run(50_000);
    let (allocs, _) = allocations_during(|| c.run(10_000));
    assert_eq!(allocs, 0, "loop stepping allocated {allocs} times");
}

#[test]
fn step_allocations_traced_loop_steady_state_is_zero() {
    // An armed tracer must not re-introduce heap traffic: the event ring is
    // pre-allocated, overflow evicts in place, and metrics are plain
    // counters. Warm past the point where the ring first fills so eviction
    // (the steady state for a busy loop) is what gets measured.
    let mut cfg = MachineConfig::fx8();
    cfg.trace = TraceConfig {
        metrics: true,
        events: true,
        event_capacity: 4096,
    };
    let mut c = Cluster::new(cfg, 24);
    c.set_ip_intensity(WorkloadMix::csrd_production().ip_intensity);
    let k = kernels::sor_sweep(1026);
    c.mount_loop(
        k.instantiate(1),
        0,
        1_000_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    c.run(50_000);
    let (allocs, _) = allocations_during(|| c.run(10_000));
    assert_eq!(allocs, 0, "traced loop stepping allocated {allocs} times");
    assert!(
        c.metrics().events_recorded > 0,
        "the tracer was armed and recording"
    );
}
