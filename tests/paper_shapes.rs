//! The reproduction's scientific regression test: a reduced-scale study on
//! the calibrated production mix must show the paper's qualitative shapes.
//! Tolerances are wide — these guard the *phenomena*, not the third digit.

use fx8_study::core::report::comparison;
use fx8_study::core::study::{Study, StudyConfig};
use fx8_study::core::tables;
use std::sync::OnceLock;

/// About a sixth of the paper-scale study: enough samples for stable
/// band-level statistics, small enough for the test suite.
fn shape_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        let cfg = StudyConfig {
            n_random: 5,
            session_hours: vec![1.5; 5],
            n_triggered: 4,
            captures_per_triggered: 25,
            n_transition: 4,
            captures_per_transition: 30,
            ..StudyConfig::paper()
        };
        Study::run(cfg)
    })
}

fn row(id: &str, metric_prefix: &str) -> f64 {
    comparison(shape_study())
        .into_iter()
        .find(|r| r.id == id && r.metric.starts_with(metric_prefix))
        .unwrap_or_else(|| panic!("no comparison row {id} / {metric_prefix}"))
        .measured
}

#[test]
fn workload_is_about_one_third_concurrent() {
    let m = shape_study().overall_measures();
    assert!(
        (0.15..0.55).contains(&m.workload_concurrency),
        "C_w = {} should be near the paper's 0.35",
        m.workload_concurrency
    );
}

#[test]
fn concurrent_periods_use_nearly_all_processors() {
    let m = shape_study().overall_measures();
    let pc = m.mean_concurrency_level.expect("concurrency exists");
    assert!(pc > 7.0, "P_c = {pc} should be close to 8 (paper: 7.66)");
    assert!(
        m.c_j_given_concurrent(8) > 0.8,
        "8-active dominates concurrency (paper: 0.93)"
    );
}

#[test]
fn activity_distribution_is_tri_modal() {
    // Figure 3: idle, serial and full concurrency dominate; intermediate
    // states are rare.
    let num = shape_study().pooled_num();
    let total: u64 = num.iter().sum();
    let modes = (num[0] + num[1] + num[8]) as f64 / total as f64;
    assert!(modes > 0.9, "idle+serial+full = {modes:.3} of records");
}

#[test]
fn many_samples_see_no_concurrency_at_all() {
    // Figure 4's 44.6% mass at zero (burstiness of the load).
    let zero = row("Figure 4", "% of samples with C_w = 0");
    assert!((20.0..75.0).contains(&zero), "zero-C_w samples: {zero}%");
}

#[test]
fn transitions_are_dominated_by_low_concurrency_states() {
    // Figure 6: the 2-active state is the largest transition state.
    let num = shape_study().pooled_transition_counts().num;
    let transition: u64 = (2..8).map(|j| num[j]).sum();
    let low = (num[2] + num[3]) as f64 / transition.max(1) as f64;
    assert!(
        low > 0.25,
        "2/3-active should carry a large share of transition states: {low:.2} of {num:?}"
    );
}

#[test]
fn end_processors_trail_through_transitions() {
    // Figure 7: CEs 0 and 7 stay active longer than the middle CEs.
    let ratio = row("Figure 7", "transition activity");
    assert!(
        ratio > 1.1,
        "ends/middle activity ratio {ratio} should exceed 1"
    );
}

#[test]
fn missrate_rises_with_workload_concurrency() {
    // Figure 10 / Table 3: the low band sits far below the upper bands.
    let low = row("Figure 10", "median Missrate, C_w band (0.0, 0.4]");
    let mid = row("Figure 10", "median Missrate, C_w band (0.4, 0.8]");
    let high = row("Figure 10", "median Missrate, C_w band (0.8, 1.0]");
    let upper = mid.max(high);
    assert!(
        upper > low + 0.005,
        "missrate must rise with C_w: {low:.4} -> {mid:.4} -> {high:.4}"
    );
}

#[test]
fn missrate_is_less_sensitive_to_concurrency_level_than_to_cw() {
    // The paper's central asymmetry (Tables 3 vs 4): the relative swing of
    // the upper P_c bands is small compared to the C_w swing.
    let mid = row("Figure 11", "median Missrate, P_c band (6.0, 7.5]");
    let high = row("Figure 11", "median Missrate, P_c band (7.5, 8.0]");
    if mid > 0.0 && high > 0.0 {
        let swing = (high / mid).max(mid / high);
        assert!(
            swing < 6.0,
            "upper P_c bands should be comparable: {mid:.4} vs {high:.4}"
        );
    }
}

#[test]
fn bus_activity_tracks_workload_concurrency_nearly_linearly() {
    let t3 = tables::table3(shape_study());
    let busy = t3.model("Median CE Bus Busy").expect("busy model fits");
    assert!(busy.r2 > 0.6, "busy-vs-C_w R^2 = {} (paper: 0.89)", busy.r2);
    let at_full = busy.predict(1.0);
    assert!(
        (0.15..0.55).contains(&at_full),
        "busy at C_w=1 is {at_full} (paper: ~0.33)"
    );
    assert!(
        busy.predict(1.0) > busy.predict(0.2),
        "busy increases with C_w"
    );
}

#[test]
fn page_faults_grow_with_concurrency() {
    let t3 = tables::table3(shape_study());
    let pfr = t3
        .model("Median Page Fault Rate")
        .expect("fault model fits");
    assert!(
        pfr.predict(0.9) > pfr.predict(0.1),
        "fault rate should grow with C_w: {} vs {}",
        pfr.predict(0.9),
        pfr.predict(0.1)
    );
}

#[test]
fn regression_tables_fit_all_three_measures_against_cw() {
    // The C_w axis always has occupied bins from 0 to 1; the P_c axis can
    // legitimately concentrate above 7 on a reduced study, so only the
    // C_w table is required to fit everything.
    let t3 = tables::table3(shape_study());
    for measure in [
        "Median Miss Rate",
        "Median CE Bus Busy",
        "Median Page Fault Rate",
    ] {
        assert!(t3.model(measure).is_some(), "{measure} vs C_w did not fit");
    }
}
