//! # fx8-study — reproduction of McGuire (1987)
//!
//! *A Measurement-Based Study of Concurrency in a Multiprocessor* measured
//! loop-level concurrency in the production workload of an Alliant FX/8 and
//! related it to cache miss rate, CE bus activity, and page fault rate.
//! This workspace rebuilds the whole measurement environment in Rust:
//!
//! * [`sim`] — the FX/8 machine (CEs, shared cache, crossbar, memory buses,
//!   Concurrency Control Bus, demand paging, IP background load);
//! * [`workload`] — a stochastic CSRD-style production workload;
//! * [`monitor`] — the DAS 9100-style hardware monitor and kernel counters;
//! * [`stats`] — concurrency measures, distributions, charts, regression;
//! * [`core`] — the paper's methodology: sessions, sampling protocol, and
//!   every table and figure of the evaluation.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use fx8_study::prelude::*;
//! use fx8_study::workload::kernels;
//!
//! // Build the measured machine and mount a concurrent loop on it.
//! let mut cluster = Cluster::new(MachineConfig::fx8(), 42);
//! # cluster.set_ip_intensity(0.0);
//! let kernel = kernels::sor_sweep(258);
//! cluster.mount_loop(
//!     kernel.instantiate(1),
//!     0,
//!     kernel.iters,
//!     kernels::glue_serial().instantiate(1),
//!     1,
//! );
//! cluster.run(2_000); // let dispatch ramp up
//!
//! // Capture a 512-record buffer exactly as the logic analyzer did.
//! let records = cluster.capture(512);
//! let counts = EventCounts::reduce(&records, 8);
//! let m = ConcurrencyMeasures::from_counts(&counts.num);
//! assert!(m.workload_concurrency > 0.9, "a running loop is concurrent");
//! if let Some(pc) = m.mean_concurrency_level {
//!     assert!(pc > 7.0, "all eight CEs participate");
//! }
//! ```

pub use fx8_core as core;
pub use fx8_monitor as monitor;
pub use fx8_sim as sim;
pub use fx8_stats as stats;
pub use fx8_workload as workload;

/// The names most programs want in scope.
///
/// Re-exports [`fx8_core::prelude`] (Study, builders, observability,
/// [`fx8_core::prelude::ConfigError`], …) plus the machine- and
/// statistics-level types a direct simulation driver needs.
pub mod prelude {
    pub use fx8_core::prelude::*;
    pub use fx8_sim::{Cluster, ProbeWord};
    pub use fx8_stats::measures::ConcurrencyMeasures;
    pub use fx8_workload::mix::WorkloadMix;
}
