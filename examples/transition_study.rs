//! § 4.3 of the thesis: what happens at the end of concurrent loops.
//!
//! Arms the logic analyzer with the transition-from-full trigger, captures
//! loop drains from the production workload, and regenerates Figures 6–7:
//! the distribution of intermediate concurrency states and the per-CE
//! activity profile. Then re-runs the experiment with a fair (round-robin)
//! CCB grant chain to show the uneven per-CE profile is an arbitration
//! artifact — the ablation DESIGN.md calls out.
//!
//! Run with: `cargo run --release --example transition_study`

use fx8_study::core::experiment::{run_transition_session, SessionConfig};
use fx8_study::core::figures;
use fx8_study::core::study::{Study, StudyConfig};
use fx8_study::monitor::EventCounts;
use fx8_study::sim::config::Arbitration;

fn ends_to_middle(counts: &EventCounts) -> f64 {
    let ends = (counts.prof[0] + counts.prof[7]) as f64 / 2.0;
    let middle: f64 = (1..7).map(|j| counts.prof[j] as f64).sum::<f64>() / 6.0;
    ends / middle.max(1.0)
}

fn main() {
    let cfg = StudyConfig::builder()
        .n_random(0)
        .session_hours(vec![])
        .n_triggered(0)
        .n_transition(3)
        .captures_per_transition(30)
        .build()
        .expect("transition study config is valid");
    eprintln!(
        "capturing loop drains from {} transition sessions...",
        cfg.n_transition
    );
    let study = Study::run(cfg);

    println!("{}", figures::fig6(&study));
    println!("{}", figures::fig7(&study));

    let pooled = study.pooled_transition_counts();
    let transition: u64 = (2..8).map(|j| pooled.num[j]).sum();
    println!(
        "2-active share of transition states: {:.1}% (paper: 52.4%)",
        100.0 * pooled.num[2] as f64 / transition.max(1) as f64
    );
    println!(
        "ends/middle CE activity ratio: {:.2} (paper: CEs 7 and 0 dominate)",
        ends_to_middle(&pooled)
    );

    // Ablation: a fair grant chain flattens the per-CE profile.
    eprintln!("re-running one session with a round-robin CCB grant chain...");
    let mut fair_cfg = SessionConfig::paper(4242);
    fair_cfg.hours = 1.0;
    fair_cfg.machine.ccb_arbitration = Arbitration::RoundRobin;
    let (buffers, _audit) = run_transition_session(&fair_cfg, 0, 30);
    let mut fair = EventCounts::empty(8);
    for b in &buffers {
        fair.merge(&b.counts);
    }
    println!(
        "with round-robin grants the ends/middle ratio drops to {:.2}",
        ends_to_middle(&fair)
    );
}
