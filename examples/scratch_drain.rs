use fx8_study::monitor::{DasConfig, DasMonitor, EventCounts, Trigger};
use fx8_study::sim::{Cluster, MachineConfig};
use fx8_study::workload::kernels;

fn main() {
    for dim in [258u64, 256, 130] {
        let k = kernels::sor_sweep(dim);
        let mut pooled = EventCounts::empty(8);
        for seed in 0..6u64 {
            let mut c = Cluster::new(MachineConfig::fx8(), seed);
            c.set_ip_intensity(0.01);
            c.mount_loop(
                k.instantiate(1),
                dim - 48,
                dim,
                kernels::glue_serial().instantiate(1),
                1,
            );
            c.run(2048);
            let das = DasMonitor::new(DasConfig {
                buffer_depth: 512,
                trigger: Trigger::TransitionFromFull,
                timeout_cycles: 400_000,
            });
            if let Ok(acq) = das.acquire(&mut c) {
                pooled.accumulate(&acq.records);
                if seed == 0 {
                    // print the active-count timeline compressed
                    let mut runs: Vec<(u32, u32)> = Vec::new();
                    for w in &acq.records {
                        let a = w.active_count();
                        match runs.last_mut() {
                            Some((v, n)) if *v == a => *n += 1,
                            _ => runs.push((a, 1)),
                        }
                    }
                    println!(
                        "dim {dim} seed0 timeline: {:?}",
                        &runs[..runs.len().min(30)]
                    );
                }
            }
        }
        println!("dim {dim}: num={:?}", pooled.num);
        println!("        prof={:?}", pooled.prof);
    }
}
