//! Chapter 4 of the thesis: characterize concurrency in the workload.
//!
//! Runs a set of random-sampling sessions over the calibrated CSRD-style
//! production mix and regenerates Table 2 (overall concurrency measures)
//! and Figures 3–5 (activity histogram, per-sample `C_w` and `P_c`
//! distributions).
//!
//! Run with: `cargo run --release --example workload_characterization`

use fx8_study::core::study::{Study, StudyConfig};
use fx8_study::core::{figures, tables};

fn main() {
    let cfg = StudyConfig::builder()
        .n_random(4)
        .session_hours(vec![1.0, 1.0, 1.5, 1.5])
        .n_triggered(0)
        .n_transition(0)
        .build()
        .expect("characterization study config is valid");
    eprintln!(
        "sampling {} sessions ({} hours of machine time)...",
        cfg.n_random,
        cfg.session_hours.iter().sum::<f64>()
    );
    let study = Study::run(cfg);

    println!("{}", tables::table2(&study).render());
    println!("{}", figures::fig3(&study));
    println!("{}", figures::fig4(&study));
    println!("{}", figures::fig5(&study));
    println!("{}", tables::render_table_a1(&tables::table_a1(&study)));

    let m = study.overall_measures();
    println!(
        "Headline: C_w = {:.3} (paper 0.35), P_c = {} (paper 7.66)",
        m.workload_concurrency,
        m.mean_concurrency_level
            .map_or("undefined".into(), |p| format!("{p:.2}")),
    );
}
