//! Chapter 5 of the thesis: concurrency and system measures.
//!
//! Runs random-sampling plus all-active-triggered sessions, then fits the
//! second-order median regression models of § 5.2 and regenerates Tables
//! 3–4 and the model-curve Figures 12–14. Prints the paper's headline
//! prediction: the miss-rate model roughly triples between `C_w = 0.5`
//! and `C_w = 1.0`, while `P_c` explains almost nothing.
//!
//! Run with: `cargo run --release --example regression_models`

use fx8_study::core::study::{Study, StudyConfig};
use fx8_study::core::{figures, tables};

fn main() {
    let cfg = StudyConfig::builder()
        .n_random(4)
        .session_hours(vec![1.5; 4])
        .n_triggered(3)
        .captures_per_triggered(25)
        .n_transition(0)
        .build()
        .expect("regression study config is valid");
    eprintln!(
        "running {} random + {} triggered sessions...",
        cfg.n_random, cfg.n_triggered
    );
    let study = Study::run(cfg);

    let t3 = tables::table3(&study);
    let t4 = tables::table4(&study);
    println!("{}", t3.render());
    println!("{}", t4.render());
    println!("{}", figures::fig12(&study));
    println!("{}", figures::fig13(&study));
    println!("{}", figures::fig14(&study));

    if let Some(m) = t3.model("Median Miss Rate") {
        let half = m.predict(0.5);
        let full = m.predict(1.0);
        println!(
            "Missrate model: {half:.4} at C_w=0.5 -> {full:.4} at C_w=1.0 ({:.0}% increase; paper ~240-300%)",
            100.0 * (full - half) / half.max(1e-9)
        );
        println!("  fit quality: R^2 = {:.2} ({})", m.r2, m.r2_category());
    }
    if let (Some(m3), Some(m4)) = (t3.model("Median Miss Rate"), t4.model("Median Miss Rate")) {
        println!(
            "Missrate R^2: vs C_w {:.2} vs P_c {:.2} — the paper's key asymmetry (0.74 vs 0.07)",
            m3.r2, m4.r2
        );
    }
    if let Some(b4) = t4.model("Median CE Bus Busy") {
        println!(
            "CE bus busy saturation: model(6)={:.3}, model(8)={:.3} (paper: levels off ~0.30 past P_c=6)",
            b4.predict(6.0),
            b4.predict(8.0)
        );
    }
}
