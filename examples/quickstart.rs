//! Quickstart: build the measured machine, run a short workload session,
//! and compute the paper's concurrency measures from captured buffers.
//!
//! Run with: `cargo run --release --example quickstart`

use fx8_study::prelude::*;

fn main() {
    // A scaled-down study: 4 short random-sampling sessions, assembled
    // with the validating builder.
    let cfg = StudyConfigBuilder::quick()
        .n_random(4)
        .session_hours(vec![1.5, 1.5, 1.5, 1.5])
        .n_triggered(0)
        .n_transition(0)
        .build()
        .expect("quickstart study config is valid");
    println!("running {} random-sampling sessions...", cfg.n_random);
    let study = Study::run(cfg);

    let m = study.overall_measures();
    println!("records: {}", m.total_records);
    for (j, c) in m.c.iter().enumerate() {
        println!("  c_{j} = {c:.4}");
    }
    println!("Workload Concurrency C_w  = {:.3}", m.workload_concurrency);
    match m.mean_concurrency_level {
        Some(pc) => println!("Mean Concurrency Level P_c = {pc:.2}"),
        None => println!("Mean Concurrency Level P_c is undefined (no concurrency observed)"),
    }
    let counts = study.pooled_counts();
    println!("Missrate    = {:.4}", counts.missrate());
    println!("CE Bus Busy = {:.4}", counts.ce_bus_busy());
    let samples = study.all_samples();
    println!("samples: {}", samples.len());
    let zero = samples
        .iter()
        .filter(|s| s.workload_concurrency() == 0.0)
        .count();
    println!(
        "samples with zero concurrency: {} ({:.0}%)",
        zero,
        100.0 * zero as f64 / samples.len() as f64
    );
}
