use fx8_study::sim::cluster::LoadKind;
use fx8_study::sim::{Cluster, MachineConfig};
use fx8_study::workload::kernels;

fn main() {
    for seed in 0..4u64 {
        let dim = 258u64;
        let k = kernels::sor_sweep(dim);
        let mut c = Cluster::new(MachineConfig::fx8(), seed);
        c.set_ip_intensity(0.01);
        c.mount_loop(
            k.instantiate(1),
            dim - 48,
            dim,
            kernels::glue_serial().instantiate(1),
            1,
        );
        // run until drained, recording when each CE's activity line drops
        let mut last_active = [true; 8];
        let mut drop_time = [0u64; 8];
        let mut first_drop = 0u64;
        for _ in 0..2_000_000 {
            let w = c.step();
            for j in 0..8 {
                let a = w.is_active(j);
                if last_active[j] && !a {
                    drop_time[j] = w.cycle;
                    if first_drop == 0 {
                        first_drop = w.cycle;
                    }
                }
                last_active[j] = a;
            }
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        let rel: Vec<i64> = drop_time
            .iter()
            .map(|&t| if t == 0 { -1 } else { (t - first_drop) as i64 })
            .collect();
        let iters: Vec<u64> = (0..8).map(|j| c.ce_stats(j).iters_completed).collect();
        println!("seed {seed}: drop(rel)={rel:?} iters={iters:?}");
    }
}
