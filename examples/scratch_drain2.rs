use fx8_study::monitor::{DasConfig, DasMonitor, EventCounts, Trigger};
use fx8_study::sim::config::Arbitration;
use fx8_study::sim::{Cluster, MachineConfig};
use fx8_study::workload::kernels;

fn probe(xbar: Arbitration, dims: &[u64]) {
    let mut pooled = EventCounts::empty(8);
    for &dim in dims {
        let k = kernels::sor_sweep(dim);
        for seed in 0..10u64 {
            let mut cfg = MachineConfig::fx8();
            cfg.crossbar_arbitration = xbar;
            let mut c = Cluster::new(cfg, seed);
            c.set_ip_intensity(0.01);
            c.mount_loop(
                k.instantiate(1),
                dim - 48,
                dim,
                kernels::glue_serial().instantiate(1),
                1,
            );
            c.run(2048);
            let das = DasMonitor::new(DasConfig {
                buffer_depth: 512,
                trigger: Trigger::TransitionFromFull,
                timeout_cycles: 400_000,
            });
            if let Ok(acq) = das.acquire(&mut c) {
                pooled.accumulate(&acq.records);
            }
        }
    }
    let transition: u64 = (2..8).map(|j| pooled.num[j]).sum();
    let ends = (pooled.prof[0] + pooled.prof[7]) as f64 / 2.0;
    let mid: f64 = (1..7).map(|j| pooled.prof[j] as f64).sum::<f64>() / 6.0;
    println!(
        "{xbar:?}: num2..7={:?} 2share={:.2} ratio={:.2}",
        &pooled.num[2..8],
        pooled.num[2] as f64 / transition.max(1) as f64,
        ends / mid
    );
    println!("  prof={:?}", pooled.prof);
}

fn main() {
    let dims = [258u64, 130, 514, 66, 256, 1026];
    for xbar in [
        Arbitration::EndsFirst,
        Arbitration::CenterFirst,
        Arbitration::RoundRobin,
    ] {
        probe(xbar, &dims);
    }
}
