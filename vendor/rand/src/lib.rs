//! Offline stand-in for the parts of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, self-contained implementation of exactly the surface the crates
//! call: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] / [`Rng::gen_bool`] over half-open ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family `rand` 0.8 uses for `SmallRng` on 64-bit targets. The
//! workspace only relies on determinism and reasonable uniformity, not on
//! matching upstream `rand`'s exact output streams.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly-distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one sample from `rng`.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back inside.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as `rand` seeds fixed-size states.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let i = rng.gen_range(0u8..=255);
            let _ = i;
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "p=0.25 hit {hits}/100000");
    }
}
