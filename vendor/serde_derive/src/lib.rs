//! `#[derive(Serialize, Deserialize)]` for the vendored serde data model.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote, which
//! are unavailable offline). Supports exactly the shapes this workspace
//! derives on:
//!
//! * structs with named fields;
//! * enums whose variants are units (with optional discriminants) or carry
//!   named fields.
//!
//! Generics, tuple structs, tuple variants, and `#[serde(...)]` attributes
//! are not supported and panic with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed derive target.
enum Input {
    /// Struct name + field names.
    Struct(String, Vec<String>),
    /// Enum name + (variant name, named fields; `None` means unit variant).
    Enum(String, Vec<(String, Option<Vec<String>>)>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct(name, fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    None => {
                        format!("{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),")
                    }
                    Some(fields) => {
                        let binds = fields.join(", ");
                        let pairs: String = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Object(vec![{pairs}])),\
                             ]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct(name, fields) => {
            let inits: String = fields.iter().map(|f| field_init(&name, f)).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum(name, variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_none())
                .map(|(vname, _)| {
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|(vname, fields)| fields.as_ref().map(|f| (vname, f)))
                .map(|(vname, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| field_init_from("inner", &name, f))
                        .collect();
                    format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(other)),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::unknown_variant(other)),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error::invalid_type(\"enum\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

/// `field: Deserialize::from_value(v.get("field")…)?,` for struct bodies.
fn field_init(type_name: &str, field: &str) -> String {
    field_init_from("v", type_name, field)
}

fn field_init_from(src: &str, type_name: &str, field: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value({src}.get({field:?})\
             .ok_or_else(|| ::serde::Error::missing_field(concat!(stringify!({type_name}), \".\", {field:?})))?)?,"
    )
}

/// Parse the derive input down to names; types are never needed because the
/// generated code goes through the `Serialize`/`Deserialize` traits.
fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: skip the bracket group that follows.
                let _ = iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip optional `pub(…)` restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut iter);
                let body = expect_brace_group(&mut iter, &name);
                return Input::Struct(name, parse_named_fields(body));
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut iter);
                let body = expect_brace_group(&mut iter, &name);
                return Input::Enum(name, parse_variants(body));
            }
            Some(_) => continue,
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    }
}

fn expect_ident(iter: &mut impl Iterator<Item = TokenTree>) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn expect_brace_group(iter: &mut impl Iterator<Item = TokenTree>, name: &str) -> TokenStream {
    for tok in iter {
        match tok {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => return g.stream(),
            TokenTree::Punct(p) if p.as_char() == '<' => panic!(
                "serde_derive: generic type `{name}` is not supported by the vendored derive"
            ),
            _ => continue,
        }
    }
    panic!("serde_derive: `{name}` has no braced body (tuple/unit shapes unsupported)")
}

/// Field names of a named-field body: `attrs vis name : Type , …`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility in front of the field name.
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive: unexpected token in fields: {other}"),
                None => return fields,
            }
        };
        fields.push(name);
        // Skip `: Type` up to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// Variants of an enum body; data variants must use named fields.
fn parse_variants(body: TokenStream) -> Vec<(String, Option<Vec<String>>)> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive: unexpected token in variants: {other}"),
                None => return variants,
            }
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                let _ = iter.next();
                Some(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
                "serde_derive: tuple variant `{name}` is not supported by the vendored derive"
            ),
            _ => None,
        };
        variants.push((name, fields));
        // Skip an optional `= discriminant` up to the next comma.
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' => break,
                _ => {}
            }
        }
    }
}
