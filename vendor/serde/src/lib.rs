//! Offline stand-in for the `serde` data model.
//!
//! The registry is unreachable in this build environment, so the workspace
//! carries a small self-contained serialization framework with the same
//! spelling as serde: `#[derive(Serialize, Deserialize)]` plus a
//! `serde_json` front end. Types serialize into a [`Value`] tree; JSON
//! rendering/parsing lives in the `serde_json` vendor crate.
//!
//! Representation choices mirror serde's JSON defaults so derived data
//! round-trips the way the tests expect:
//!
//! * structs → objects keyed by field name;
//! * unit enum variants → the variant name as a string;
//! * data-carrying variants → `{"Variant": {…fields…}}`;
//! * `Option` → `null` / value; `Result` → `{"Ok": v}` / `{"Err": e}`;
//! * numbers keep their exact lexeme in [`Value::Num`], so `u64` survives
//!   untruncated and `f64` uses the shortest round-trip form.

pub use serde_derive::{Deserialize, Serialize};

/// A parsed or to-be-rendered JSON-ish value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its exact lexeme (no precision loss for u64).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// An object was missing a required field.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// An enum tag did not name a known variant.
    pub fn unknown_variant(tag: &str) -> Self {
        Error(format!("unknown variant `{tag}`"))
    }

    /// A value had the wrong shape for the target type.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        let shape = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error(format!("invalid type: expected {expected}, found {shape}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        Error::custom(format!("bad {}: {s:?}: {e}", stringify!($t)))
                    }),
                    other => Err(Error::invalid_type(stringify!($t), other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // `{:?}` is the shortest representation that round-trips.
                Value::Num(format!("{:?}", self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        Error::custom(format!("bad {}: {s:?}: {e}", stringify!($t)))
                    }),
                    other => Err(Error::invalid_type(stringify!($t), other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(v) => Value::Object(vec![("Ok".to_string(), v.to_value())]),
            Err(e) => Value::Object(vec![("Err".to_string(), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if let Some(ok) = v.get("Ok") {
            return T::from_value(ok).map(Ok);
        }
        if let Some(err) = v.get("Err") {
            return E::from_value(err).map(Err);
        }
        Err(Error::invalid_type("result object", v))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("array length {n}, expected {N}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::invalid_type("2-element array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&0.1f64.to_value()).unwrap(), 0.1);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hé\"llo".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        let t = (1.5f64, 2.5f64);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let a = [7u64; 5];
        assert_eq!(<[u64; 5]>::from_value(&a.to_value()).unwrap(), a);
        let r: Result<u64, String> = Err("x".into());
        assert_eq!(Result::<u64, String>::from_value(&r.to_value()).unwrap(), r);
    }
}
