//! JSON rendering/parsing over the vendored serde [`Value`] tree.
//!
//! Numbers pass through as their exact lexemes in both directions, so `u64`
//! round-trips without precision loss and floats keep their shortest
//! representation.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn eat(&mut self, token: &str) -> Result<(), Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{token}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat("null").map(|()| Value::Null),
            b't' => self.eat("true").map(|()| Value::Bool(true)),
            b'f' => self.eat("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(":")?;
                    let val = self.value()?;
                    fields.push((key, val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected byte `{}`",
                other as char
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::custom("empty number"));
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("non-UTF8 number"))?;
        Ok(Value::Num(lexeme.to_string()))
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek()? != b'"' {
            return Err(Error::custom(format!(
                "expected string at byte {}",
                self.pos
            )));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unescaped). Validate at most one scalar's
                    // worth of bytes: validating the whole remaining input
                    // here made string parsing quadratic in document size.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err(Error::custom("non-UTF8 string")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("a".into(), Value::Num("18446744073709551615".into())),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("s".into(), Value::Str("q\"\\\n€".into())),
            ("f".into(), Value::Num("0.1".into())),
        ]);
        let mut text = String::new();
        write_value(&v, &mut text);
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.value().unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<u64> = vec![0, 1, u64::MAX];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[0,1,18446744073709551615]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
        let f: Vec<f64> = from_str(&to_string(&vec![0.1f64, -2.5]).unwrap()).unwrap();
        assert_eq!(f, vec![0.1, -2.5]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<Vec<u64>>("[1] junk").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }
}
