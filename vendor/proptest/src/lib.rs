//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Same spelling as upstream — `proptest! { #[test] fn f(x in strat) {…} }`,
//! `Strategy`/`prop_map`, `prop::collection::vec`, `prop::array::uniform8`,
//! `prop::option::of`, `prop::sample::select`, `any::<T>()` — but with a
//! plain random-sampling runner: each test draws `cases` inputs from a
//! deterministic per-test RNG and asserts the body. There is no shrinking;
//! a failure panics with the ordinary assertion message.

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Runner configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; these tests drive a cycle-level
            // machine simulator, so keep the suite fast while still
            // sweeping a meaningful slice of the input space.
            Config { cases: 64 }
        }
    }

    /// Deterministic per-test RNG (xoshiro256++ seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut next = || {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `u64` in `[0, bound)`.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy over empty range");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy over empty range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }
}

pub use strategy::{Just, Strategy};

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;

        /// Build it.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for a primitive.
    #[derive(Debug, Clone, Default)]
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;

                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    impl Strategy for FullRange<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;

        fn arbitrary() -> Self::Strategy {
            FullRange(std::marker::PhantomData)
        }
    }
}

/// The canonical strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy over empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `[T; 8]` drawing each element from the same strategy.
    pub struct Uniform8<S>(S);

    /// Eight values from `element`.
    pub fn uniform8<S: Strategy>(element: S) -> Uniform8<S> {
        Uniform8(element)
    }

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; 8] {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding `None` a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// `Some` from `element` (75%) or `None` (25%).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Sampling from explicit lists.
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    pub struct Select<T>(Vec<T>);

    /// Choose uniformly among `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty list");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn` runs `cases` times over fresh samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// Assert within a property body (panics; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_cover_their_domains() {
        let mut rng = crate::test_runner::TestRng::deterministic("cover");
        let s = (1u64..5, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        for _ in 0..1000 {
            let (a, b) = s.sample(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
        let v = crate::collection::vec(0u8..=255, 2..6);
        for _ in 0..100 {
            let xs = v.sample(&mut rng);
            assert!((2..6).contains(&xs.len()));
        }
        let sel = crate::sample::select(vec![10, 20, 30]);
        let opt = crate::option::of(1u32..3);
        let arr = crate::array::uniform8(0u8..4);
        let mut saw_none = false;
        for _ in 0..200 {
            assert!([10, 20, 30].contains(&sel.sample(&mut rng)));
            saw_none |= opt.sample(&mut rng).is_none();
            assert!(arr.sample(&mut rng).iter().all(|&x| x < 4));
        }
        assert!(saw_none, "option::of never produced None");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_binds_patterns((a, b) in (0u32..10, 0u32..10), c in any::<u8>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = c;
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a + 1, a);
        }
    }
}
