//! Offline stand-in for the `criterion` harness API this workspace uses.
//!
//! Bench binaries keep their upstream spelling (`criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! throughput annotations). Behavior:
//!
//! * under `cargo bench` (cargo passes `--bench`), each benchmark is timed
//!   over `sample_size` iterations after one warm-up and a mean ns/iter is
//!   printed, with elements/sec when a throughput was declared;
//! * under `cargo test` (no `--bench` argument), each benchmark body runs
//!   exactly once so the suite stays a smoke test.

use std::time::Instant;

/// True when cargo invoked the binary for real benchmarking.
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Declared per-iteration work, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the measured work.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Run `f` for the configured number of iterations, timing the whole.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    tp: Option<Throughput>,
    mut f: F,
) {
    if !bench_mode() {
        // Smoke-test mode under `cargo test`: one iteration, no timing.
        let mut b = Bencher {
            iters: 1,
            elapsed_ns: 0,
        };
        f(&mut b);
        return;
    }
    // One warm-up pass, then the timed run.
    let mut warmup = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut warmup);
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns as f64 / b.iters.max(1) as f64;
    match tp {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter / 1e9);
            println!("{name}: {per_iter:.0} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter / 1e9);
            println!("{name}: {per_iter:.0} ns/iter ({rate:.0} B/s)");
        }
        None => println!("{name}: {per_iter:.0} ns/iter"),
    }
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run_once_in_test_mode() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("unit", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "test mode runs the body once");
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        let mut grp_runs = 0;
        g.bench_function("inner", |b| b.iter(|| grp_runs += 1));
        g.finish();
        assert_eq!(grp_runs, 1);
    }
}
