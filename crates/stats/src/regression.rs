//! Second-order linear regression and the paper's median-binning procedure.
//!
//! § 5.2: "A median point is calculated with respect to C_w by finding the
//! median of the system measure for the set of points clustered around
//! their closest Workload Concurrency midpoint (0.0, 0.1, ... 1.0). The
//! resulting set of coordinate pairs is then used to determine the model...
//! Second order linear models were determined to most accurately model the
//! data": `y = β₁·x + β₂·x² + C`, fit by least squares, with R² as the
//! goodness measure.

use crate::freq::nearest_bin;
use crate::summary::median;
use serde::{Deserialize, Serialize};

/// A fitted second-order model `y = b1·x + b2·x² + c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadModel {
    /// Linear coefficient β₁.
    pub b1: f64,
    /// Quadratic coefficient β₂.
    pub b2: f64,
    /// Intercept C.
    pub c: f64,
    /// Coefficient of determination over the fitted points.
    pub r2: f64,
    /// Number of points the model was fit to.
    pub n_points: usize,
}

impl QuadModel {
    /// Evaluate the model at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.b1 * x + self.b2 * x * x + self.c
    }

    /// The thesis's qualitative R² categories (Mendenhall & Sincich):
    /// 0 none, 0.25 moderately weak, 0.5 moderate, 0.75 moderately strong,
    /// 1.0 perfect.
    pub fn r2_category(&self) -> &'static str {
        match self.r2 {
            r if r < 0.125 => "no relationship",
            r if r < 0.375 => "moderately weak",
            r if r < 0.625 => "moderate",
            r if r < 0.875 => "moderately strong",
            _ => "near perfect",
        }
    }
}

/// Errors from a degenerate fit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitError {
    /// Fewer than three points: the quadratic is underdetermined.
    TooFewPoints,
    /// The normal equations are singular (e.g. all x identical).
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewPoints => write!(f, "fewer than three points to fit"),
            FitError::Singular => write!(f, "singular normal equations (degenerate x values)"),
        }
    }
}

impl std::error::Error for FitError {}

/// Least-squares fit of `y = b1·x + b2·x² + c` to `(x, y)` points.
pub fn fit_quadratic(points: &[(f64, f64)]) -> Result<QuadModel, FitError> {
    let n = points.len();
    if n < 3 {
        return Err(FitError::TooFewPoints);
    }
    // Normal equations for the basis [x, x², 1]:
    //   [Σx²  Σx³  Σx ] [b1]   [Σxy ]
    //   [Σx³  Σx⁴  Σx²] [b2] = [Σx²y]
    //   [Σx   Σx²  n  ] [c ]   [Σy  ]
    let (mut sx, mut sx2, mut sx3, mut sx4) = (0.0, 0.0, 0.0, 0.0);
    let (mut sy, mut sxy, mut sx2y) = (0.0, 0.0, 0.0);
    for &(x, y) in points {
        let x2 = x * x;
        sx += x;
        sx2 += x2;
        sx3 += x2 * x;
        sx4 += x2 * x2;
        sy += y;
        sxy += x * y;
        sx2y += x2 * y;
    }
    let a = [[sx2, sx3, sx], [sx3, sx4, sx2], [sx, sx2, n as f64]];
    let b = [sxy, sx2y, sy];
    let sol = solve3(a, b).ok_or(FitError::Singular)?;
    let (b1, b2, c) = (sol[0], sol[1], sol[2]);

    // R² over the fitted points.
    let mean_y = sy / n as f64;
    let mut ss_tot = 0.0;
    let mut ss_res = 0.0;
    for &(x, y) in points {
        let f = b1 * x + b2 * x * x + c;
        ss_res += (y - f) * (y - f);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(QuadModel {
        b1,
        b2,
        c,
        r2,
        n_points: n,
    })
}

/// Solve a 3×3 linear system by Gaussian elimination with partial pivoting.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // Pivot.
        let pivot = (col..3).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..3 {
            let f = a[row][col] / a[col][col];
            // Indexing two rows of the same matrix: iterator forms would
            // need split borrows for no clarity gain.
            #[allow(clippy::needless_range_loop)]
            for k in col..3 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut s = b[row];
        for k in (row + 1)..3 {
            s -= a[row][k] * x[k];
        }
        x[row] = s / a[row][row];
    }
    Some(x)
}

/// § 5.2 median binning: cluster `(x, y)` samples around their nearest `x`
/// midpoint and take the median `y` per occupied bin. Returns
/// `(midpoint, median)` pairs for occupied bins only.
pub fn median_bin(samples: &[(f64, f64)], mids: &[f64]) -> Vec<(f64, f64)> {
    let mut bins: Vec<Vec<f64>> = vec![Vec::new(); mids.len()];
    for &(x, y) in samples {
        bins[nearest_bin(x, mids)].push(y);
    }
    mids.iter()
        .zip(bins)
        .filter_map(|(&m, ys)| median(&ys).map(|md| (m, md)))
        .collect()
}

/// The full § 5.2 procedure: median-bin the samples, then fit the
/// second-order model to the `(midpoint, median)` pairs.
pub fn fit_median_model(samples: &[(f64, f64)], mids: &[f64]) -> Result<QuadModel, FitError> {
    fit_quadratic(&median_bin(samples, mids))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn exact_quadratic_recovered() {
        // y = 2x + 3x² + 1
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| i as f64 / 10.0)
            .map(|x| (x, 2.0 * x + 3.0 * x * x + 1.0))
            .collect();
        let m = fit_quadratic(&pts).unwrap();
        assert!(close(m.b1, 2.0, 1e-9), "b1 = {}", m.b1);
        assert!(close(m.b2, 3.0, 1e-9), "b2 = {}", m.b2);
        assert!(close(m.c, 1.0, 1e-9), "c = {}", m.c);
        assert!(close(m.r2, 1.0, 1e-12));
        assert_eq!(m.n_points, 10);
    }

    #[test]
    fn pure_linear_data_gets_zero_quadratic_term() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 5.0 * i as f64 - 2.0)).collect();
        let m = fit_quadratic(&pts).unwrap();
        assert!(close(m.b1, 5.0, 1e-8));
        assert!(close(m.b2, 0.0, 1e-9));
        assert!(close(m.c, -2.0, 1e-7));
    }

    #[test]
    fn noisy_fit_has_sensible_r2() {
        // Deterministic "noise" via a fixed pattern.
        let noise = [0.3, -0.2, 0.1, -0.4, 0.25, -0.1, 0.05, -0.3, 0.2, 0.15];
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let x = i as f64;
                (x, x * x + noise[i])
            })
            .collect();
        let m = fit_quadratic(&pts).unwrap();
        assert!(m.r2 > 0.99, "r2 = {}", m.r2);
        assert!(m.r2 <= 1.0);
    }

    #[test]
    fn too_few_points_is_an_error() {
        assert_eq!(
            fit_quadratic(&[(0.0, 0.0), (1.0, 1.0)]),
            Err(FitError::TooFewPoints)
        );
    }

    #[test]
    fn identical_x_is_singular() {
        let pts = [(1.0, 0.0), (1.0, 1.0), (1.0, 2.0), (1.0, 3.0)];
        assert_eq!(fit_quadratic(&pts), Err(FitError::Singular));
    }

    #[test]
    fn prediction_matches_formula() {
        let m = QuadModel {
            b1: -3.30e-3,
            b2: 2.57e-2,
            c: 2.62e-3,
            r2: 0.74,
            n_points: 11,
        };
        // The paper's Table 3 miss-rate model: 0.007 at C_w = 0.5, 0.025 at 1.0.
        assert!(close(m.predict(0.5), 0.0074, 5e-4));
        assert!(close(m.predict(1.0), 0.0250, 5e-4));
    }

    #[test]
    fn r2_categories_match_the_cited_scale() {
        let mk = |r2| QuadModel {
            b1: 0.0,
            b2: 0.0,
            c: 0.0,
            r2,
            n_points: 3,
        };
        assert_eq!(mk(0.02).r2_category(), "no relationship");
        assert_eq!(mk(0.25).r2_category(), "moderately weak");
        assert_eq!(mk(0.5).r2_category(), "moderate");
        assert_eq!(mk(0.75).r2_category(), "moderately strong");
        assert_eq!(mk(0.95).r2_category(), "near perfect");
    }

    #[test]
    fn median_bin_clusters_and_takes_medians() {
        let mids = [0.0, 1.0, 2.0];
        let samples = [
            (0.1, 10.0),
            (-0.2, 20.0),
            (0.05, 30.0), // bin 0: median 20
            (1.1, 5.0),   // bin 1: median 5
                          // bin 2 empty
        ];
        let binned = median_bin(&samples, &mids);
        assert_eq!(binned, vec![(0.0, 20.0), (1.0, 5.0)]);
    }

    #[test]
    fn median_model_is_robust_to_outliers() {
        // y = x on medians, but every bin carries one huge outlier; the
        // median-binned model must ignore them.
        let mids: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let mut samples = Vec::new();
        for i in 0..=10 {
            let x = i as f64;
            samples.push((x, x));
            samples.push((x, x + 0.01));
            samples.push((x, x - 0.01));
            samples.push((x, 1_000.0)); // outlier
        }
        let m = fit_median_model(&samples, &mids).unwrap();
        assert!(
            close(m.predict(5.0), 5.0, 0.1),
            "predict(5) = {}",
            m.predict(5.0)
        );
    }

    #[test]
    fn residual_orthogonality_holds() {
        // Least squares residuals are orthogonal to the basis [x, x², 1].
        let pts: Vec<(f64, f64)> = (0..12)
            .map(|i| {
                let x = i as f64 * 0.5;
                (
                    x,
                    1.0 + 0.3 * x - 0.05 * x * x + if i % 2 == 0 { 0.2 } else { -0.2 },
                )
            })
            .collect();
        let m = fit_quadratic(&pts).unwrap();
        let (mut r1, mut rx, mut rx2) = (0.0, 0.0, 0.0);
        for &(x, y) in &pts {
            let r = y - m.predict(x);
            r1 += r;
            rx += r * x;
            rx2 += r * x * x;
        }
        assert!(r1.abs() < 1e-8, "Σr = {r1}");
        assert!(rx.abs() < 1e-8, "Σrx = {rx}");
        assert!(rx2.abs() < 1e-7, "Σrx² = {rx2}");
    }
}
