//! Means, medians and quantiles.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample median (average of the two central order statistics for even n).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Quantile by the midpoint-interpolating definition SAS used for medians.
/// `q` in `[0, 1]`; `None` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in data"));
    let n = v.len();
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// Population variance; `None` for fewer than one element.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Standard deviation.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(0.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.25), Some(1.0));
        assert_eq!(quantile(&xs, 0.375), Some(1.5));
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn variance_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(stddev(&xs), Some(2.0));
    }

    #[test]
    fn single_element_statistics() {
        assert_eq!(mean(&[7.0]), Some(7.0));
        assert_eq!(median(&[7.0]), Some(7.0));
        assert_eq!(variance(&[7.0]), Some(0.0));
    }
}
