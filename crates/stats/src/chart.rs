//! SAS-style ASCII charts.
//!
//! The thesis's figures are SAS `PROC CHART` / `PROC PLOT` listings:
//! horizontal bar charts of asterisks with FREQ / CUM FREQ / PERCENT /
//! CUM PERCENT columns, and scatter plots where a letter encodes the
//! number of overplotted observations (`A` = 1 obs, `B` = 2, ... — the
//! "LEGEND: A = 1 OBS, B = 2 OBS, ETC." of Figures 8–9 and B.1–B.6).
//! Rendering the reproduced figures the same way makes them directly
//! comparable to the originals.

use crate::freq::FreqDist;
use crate::regression::QuadModel;

/// Maximum bar length in characters.
const BAR_WIDTH: usize = 60;

/// Render a frequency distribution as a SAS-style horizontal bar chart.
/// `label_fmt` formats the midpoint column (e.g. `|m| format!("{m:.3}")`).
pub fn hbar(dist: &FreqDist, title: &str, label_fmt: impl Fn(f64) -> String) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = dist.freq.iter().copied().max().unwrap_or(0).max(1);
    let cum = dist.cum_freq();
    let pct = dist.percent();
    let cpct = dist.cum_percent();
    let labels: Vec<String> = dist.midpoints.iter().map(|&m| label_fmt(m)).collect();
    let lw = labels.iter().map(String::len).max().unwrap_or(0).max(8);
    out.push_str(&format!(
        "{:lw$}  {:bw$}  {:>8} {:>8} {:>8} {:>8}\n",
        "MIDPOINT",
        "",
        "FREQ",
        "CUM.FREQ",
        "PERCENT",
        "CUM.PCT",
        lw = lw,
        bw = BAR_WIDTH
    ));
    for i in 0..dist.freq.len() {
        let bar_len = ((dist.freq[i] as f64 / max as f64) * BAR_WIDTH as f64).round() as usize;
        out.push_str(&format!(
            "{:lw$} |{:bw$}| {:>8} {:>8} {:>8.2} {:>8.2}\n",
            labels[i],
            "*".repeat(bar_len),
            dist.freq[i],
            cum[i],
            pct[i],
            cpct[i],
            lw = lw,
            bw = BAR_WIDTH
        ));
    }
    if let (Some(mean), Some(median)) = (dist.mean_midpoint(), dist.median_midpoint()) {
        out.push_str(&format!("MEAN: {mean:.4}   MEDIAN: {median:.4}\n"));
    }
    out
}

/// Render a labeled bar chart (e.g. per-CE activity, Figure 7).
pub fn hbar_labeled(title: &str, labels: &[String], freq: &[u64]) -> String {
    assert_eq!(labels.len(), freq.len());
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let total: u64 = freq.iter().sum();
    let max = freq.iter().copied().max().unwrap_or(0).max(1);
    let lw = labels.iter().map(String::len).max().unwrap_or(0).max(8);
    for (label, &f) in labels.iter().zip(freq) {
        let bar_len = ((f as f64 / max as f64) * BAR_WIDTH as f64).round() as usize;
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * f as f64 / total as f64
        };
        out.push_str(&format!(
            "{:lw$} |{:bw$}| {:>10} {:>7.2}%\n",
            label,
            "*".repeat(bar_len),
            f,
            pct,
            lw = lw,
            bw = BAR_WIDTH
        ));
    }
    out
}

/// Render a letter-coded scatter plot (`A` = 1 obs, `B` = 2, ...).
pub fn scatter(
    title: &str,
    points: &[(f64, f64)],
    x_label: &str,
    y_label: &str,
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 2 && height >= 2);
    let mut out = String::new();
    out.push_str(title);
    out.push_str("\nLEGEND: A = 1 OBS, B = 2 OBS, ETC.\n");
    if points.is_empty() {
        out.push_str("(no observations)\n");
        return out;
    }
    let (x0, x1) = bounds(points.iter().map(|p| p.0));
    let (y0, y1) = bounds(points.iter().map(|p| p.1));
    let mut grid = vec![vec![0u32; width]; height];
    for &(x, y) in points {
        let col = scale(x, x0, x1, width);
        let row = scale(y, y0, y1, height);
        grid[height - 1 - row][col] += 1;
    }
    out.push_str(&format!("{y_label}\n"));
    for (r, row) in grid.iter().enumerate() {
        let y_val = y1 - (y1 - y0) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_val:>10.4} |"));
        for &n in row {
            out.push(letter(n));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}  {:<w$.4}{:>.4}   ({x_label})\n",
        "",
        x0,
        x1,
        w = width.saturating_sub(6)
    ));
    out
}

/// Render a fitted model curve over `[x0, x1]` (Figures 12–14, B.9–B.10).
pub fn model_curve(
    title: &str,
    model: &QuadModel,
    x0: f64,
    x1: f64,
    width: usize,
    height: usize,
) -> String {
    assert!(x1 > x0 && width >= 2 && height >= 2);
    let points: Vec<(f64, f64)> = (0..width)
        .map(|i| {
            let x = x0 + (x1 - x0) * i as f64 / (width - 1) as f64;
            (x, model.predict(x))
        })
        .collect();
    let mut out = scatter(title, &points, "x", "fitted", width, height);
    out.push_str(&format!(
        "MODEL: y = {:+.4e}*x {:+.4e}*x^2 {:+.4e}   R^2 = {:.2}\n",
        model.b1, model.b2, model.c, model.r2
    ));
    out
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo == hi {
        // Degenerate: widen so everything lands mid-plot.
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn scale(v: f64, lo: f64, hi: f64, n: usize) -> usize {
    let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * (n - 1) as f64).round() as usize).min(n - 1)
}

/// SAS overplot letter: blank for 0, `A` for 1 ... `Z` for >= 26.
fn letter(n: u32) -> char {
    match n {
        0 => ' ',
        1..=26 => (b'A' + (n - 1) as u8) as char,
        _ => 'Z',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::midpoints;

    #[test]
    fn hbar_renders_all_rows_and_stats() {
        let d = FreqDist::from_counts(&midpoints(0.0, 0.125, 9), &[29, 2, 10, 7, 1, 2, 5, 2, 7]);
        let s = hbar(&d, "Distribution of Samples by Workload Concurrency", |m| {
            format!("{m:.3}")
        });
        assert!(s.contains("0.000"));
        assert!(s.contains("1.000"));
        assert!(s.lines().count() >= 11, "header + 9 rows + stats");
        assert!(s.contains("MEAN:"));
        assert!(s.contains("MEDIAN:"));
        // Largest bin renders the longest bar.
        let bar_of = |needle: &str| {
            s.lines()
                .find(|l| l.starts_with(needle))
                .unwrap()
                .matches('*')
                .count()
        };
        assert!(bar_of("0.000") > bar_of("0.125"));
    }

    #[test]
    fn hbar_labeled_scales_bars() {
        let s = hbar_labeled(
            "per-CE activity",
            &(0..4).map(|i| format!("CE {i}")).collect::<Vec<_>>(),
            &[100, 50, 0, 25],
        );
        let bar = |needle: &str| {
            s.lines()
                .find(|l| l.starts_with(needle))
                .unwrap()
                .matches('*')
                .count()
        };
        assert_eq!(bar("CE 0"), BAR_WIDTH);
        assert_eq!(bar("CE 2"), 0);
        assert!(bar("CE 1") > bar("CE 3"));
    }

    #[test]
    fn scatter_encodes_overplot_with_letters() {
        let pts = vec![(0.0, 0.0), (0.0, 0.0), (1.0, 1.0)];
        let s = scatter("t", &pts, "x", "y", 11, 5);
        assert!(s.contains('B'), "two overplotted points must show B:\n{s}");
        assert!(s.contains('A'));
        assert!(s.contains("LEGEND"));
    }

    #[test]
    fn scatter_handles_empty_and_degenerate_inputs() {
        let s = scatter("t", &[], "x", "y", 10, 5);
        assert!(s.contains("no observations"));
        // All points identical: must not panic.
        let s2 = scatter("t", &[(1.0, 1.0), (1.0, 1.0)], "x", "y", 10, 5);
        assert!(s2.contains('B'));
    }

    #[test]
    fn model_curve_shows_equation() {
        let m = QuadModel {
            b1: 2.18e-1,
            b2: 1.01e-1,
            c: 2.47e-2,
            r2: 0.89,
            n_points: 11,
        };
        let s = model_curve("CE Bus Busy vs Cw", &m, 0.0, 1.0, 40, 10);
        assert!(s.contains("R^2 = 0.89"));
        assert!(s.contains("MODEL:"));
        // The curve marks at least `width`-ish cells.
        assert!(s.matches('A').count() >= 20);
    }

    #[test]
    fn letters_saturate_at_z() {
        assert_eq!(letter(0), ' ');
        assert_eq!(letter(1), 'A');
        assert_eq!(letter(2), 'B');
        assert_eq!(letter(26), 'Z');
        assert_eq!(letter(500), 'Z');
    }
}
