//! # fx8-stats — the study's statistical toolkit
//!
//! McGuire processed the measured data "with the Statistical Analysis
//! System (SAS) package on an IBM 4381" (§ 3.5). This crate is the
//! SAS-equivalent the reproduction needs:
//!
//! * [`measures`] — the concurrency measures of § 4.1 (equations 4.1–4.4):
//!   j-concurrency `c_j`, Workload Concurrency `C_w`, conditional
//!   j-concurrency `c_{j|c}`, and Mean Concurrency Level `P_c`;
//! * [`summary`] — means, medians and quantiles;
//! * [`freq`] — midpoint-binned frequency distributions with the
//!   FREQ / CUM FREQ / PERCENT / CUM PERCENT columns of the thesis listings;
//! * [`chart`] — SAS-style ASCII bar charts and letter-coded scatter plots,
//!   so regenerated figures are visually comparable to the originals;
//! * [`regression`] — second-order linear least squares with R², plus the
//!   paper's median-binning procedure (§ 5.2).

pub mod chart;
pub mod freq;
pub mod measures;
pub mod regression;
pub mod summary;

pub use measures::ConcurrencyMeasures;
pub use regression::QuadModel;
