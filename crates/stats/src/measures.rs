//! The concurrency measures of § 4.1.
//!
//! From a distribution of "number of active processors" records:
//!
//! * eq. 4.1 — `c_j = Prob(Number of Active Processors = j)`;
//! * eq. 4.2 — `C_w = Σ_{j=2}^{P} c_j`, the Workload Concurrency: the
//!   probability that *any* level of concurrency (two or more processors
//!   in parallel) exists;
//! * eq. 4.3 — `c_{j|c} = Prob(N = j | N > 1)`, j-concurrency conditioned
//!   on the system being concurrent (undefined if `C_w = 0`);
//! * eq. 4.4 — `P_c = Σ_{j=2}^{P} j · c_{j|c}`, the Mean Concurrency
//!   Level: average processors in use during concurrent operation,
//!   ranging over `[2, P]`.

use serde::{Deserialize, Serialize};

/// The measures of equations 4.1–4.4 computed from one record distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyMeasures {
    /// `c_j` for `j = 0..=P` (eq. 4.1). Sums to 1 when any records exist.
    pub c: Vec<f64>,
    /// Workload Concurrency `C_w` (eq. 4.2).
    pub workload_concurrency: f64,
    /// `c_{j|c}` for `j = 0..=P` (eq. 4.3); entries below `j = 2` are zero.
    /// Empty when undefined (`C_w = 0`).
    pub conditional: Vec<f64>,
    /// Mean Concurrency Level `P_c` (eq. 4.4); `None` when no concurrency
    /// was observed, exactly as the thesis leaves it undefined.
    pub mean_concurrency_level: Option<f64>,
    /// Total records behind the distribution.
    pub total_records: u64,
}

impl ConcurrencyMeasures {
    /// Compute the measures from `num[j]` = records with `j` processors
    /// active, `j = 0..=P`.
    pub fn from_counts(num: &[u64]) -> Self {
        assert!(
            num.len() >= 2,
            "need counts for at least 0 and 1 processors"
        );
        let total: u64 = num.iter().sum();
        if total == 0 {
            return ConcurrencyMeasures {
                c: vec![0.0; num.len()],
                workload_concurrency: 0.0,
                conditional: Vec::new(),
                mean_concurrency_level: None,
                total_records: 0,
            };
        }
        let c: Vec<f64> = num.iter().map(|&k| k as f64 / total as f64).collect();
        let cw: f64 = c.iter().skip(2).sum();
        let (conditional, pc) = if cw > 0.0 {
            let cond: Vec<f64> = c
                .iter()
                .enumerate()
                .map(|(j, &cj)| if j >= 2 { cj / cw } else { 0.0 })
                .collect();
            let pc = cond.iter().enumerate().map(|(j, &p)| j as f64 * p).sum();
            (cond, Some(pc))
        } else {
            (Vec::new(), None)
        };
        ConcurrencyMeasures {
            c,
            workload_concurrency: cw,
            conditional,
            mean_concurrency_level: pc,
            total_records: total,
        }
    }

    /// Highest processor count in the distribution.
    pub fn max_processors(&self) -> usize {
        self.c.len() - 1
    }

    /// `c_j`, zero for out-of-range `j`.
    pub fn c_j(&self, j: usize) -> f64 {
        self.c.get(j).copied().unwrap_or(0.0)
    }

    /// `c_{j|c}`, zero for out-of-range `j` or when undefined.
    pub fn c_j_given_concurrent(&self, j: usize) -> f64 {
        self.conditional.get(j).copied().unwrap_or(0.0)
    }
}

/// Pool several count distributions into one (the "All Sessions" totals).
pub fn pool_counts(distributions: &[Vec<u64>]) -> Vec<u64> {
    let width = distributions.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = vec![0u64; width];
    for d in distributions {
        for (j, &k) in d.iter().enumerate() {
            out[j] += k;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_measures() {
        // 10 records at each of 0..=8 processors.
        let num = vec![10u64; 9];
        let m = ConcurrencyMeasures::from_counts(&num);
        assert_eq!(m.total_records, 90);
        assert!((m.c.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((m.workload_concurrency - 7.0 / 9.0).abs() < 1e-12);
        // P_c = mean of 2..=8 = 5.
        assert!((m.mean_concurrency_level.unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn table2_style_distribution() {
        // A tri-modal distribution like Figure 3: idle, serial, full.
        // 100k records: 45k idle, 20k serial, 2k spread over 2..=7, 33k full.
        let num = vec![45_000, 20_000, 300, 300, 300, 300, 400, 400, 33_000];
        let m = ConcurrencyMeasures::from_counts(&num);
        let cw = m.workload_concurrency;
        assert!((cw - 0.35).abs() < 0.01, "C_w = {cw}");
        let pc = m.mean_concurrency_level.unwrap();
        assert!(pc > 7.5 && pc < 8.0, "P_c = {pc}");
        // c_{8|c} dominates.
        assert!(m.c_j_given_concurrent(8) > 0.9);
    }

    #[test]
    fn no_concurrency_leaves_pc_undefined() {
        let m = ConcurrencyMeasures::from_counts(&[50, 50, 0, 0]);
        assert_eq!(m.workload_concurrency, 0.0);
        assert_eq!(m.mean_concurrency_level, None);
        assert!(m.conditional.is_empty());
    }

    #[test]
    fn all_concurrent_gives_cw_one() {
        let m = ConcurrencyMeasures::from_counts(&[0, 0, 0, 0, 100]);
        assert!((m.workload_concurrency - 1.0).abs() < 1e-12);
        assert!((m.mean_concurrency_level.unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pc_bounds_hold() {
        // P_c must lie in [2, P] whenever defined.
        let cases: Vec<Vec<u64>> = vec![
            vec![0, 0, 1, 0, 0, 0, 0, 0, 0],
            vec![0, 0, 0, 0, 0, 0, 0, 0, 1],
            vec![9, 5, 3, 1, 4, 1, 5, 9, 2],
        ];
        for num in cases {
            let m = ConcurrencyMeasures::from_counts(&num);
            if let Some(pc) = m.mean_concurrency_level {
                assert!((2.0..=8.0).contains(&pc), "P_c = {pc} for {num:?}");
            }
        }
    }

    #[test]
    fn empty_counts_are_handled() {
        let m = ConcurrencyMeasures::from_counts(&[0, 0, 0]);
        assert_eq!(m.total_records, 0);
        assert_eq!(m.workload_concurrency, 0.0);
        assert_eq!(m.mean_concurrency_level, None);
    }

    #[test]
    fn conditional_sums_to_one_when_defined() {
        let m = ConcurrencyMeasures::from_counts(&[10, 20, 5, 5, 5, 5, 5, 5, 40]);
        let s: f64 = m.conditional.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pooling_adds_distributions_of_unequal_width() {
        let pooled = pool_counts(&[vec![1, 2, 3], vec![10, 10], vec![0, 0, 0, 5]]);
        assert_eq!(pooled, vec![11, 12, 3, 5]);
    }

    #[test]
    fn pooled_measures_match_weighted_combination() {
        let a = vec![50, 0, 0, 50];
        let b = vec![0, 100, 0, 0];
        let pooled = pool_counts(&[a.clone(), b.clone()]);
        let m = ConcurrencyMeasures::from_counts(&pooled);
        // 200 records total, 50 concurrent (3-active).
        assert!((m.workload_concurrency - 0.25).abs() < 1e-12);
        assert!((m.mean_concurrency_level.unwrap() - 3.0).abs() < 1e-12);
    }
}
