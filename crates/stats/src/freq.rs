//! Midpoint-binned frequency distributions.
//!
//! The thesis presents every distribution as a SAS `PROC CHART` listing:
//! values clustered to the nearest midpoint, with FREQ, CUM FREQ, PERCENT
//! and CUM PERCENT columns (e.g. Figures 4, 5, 10, 11, A.3–A.5, B.3–B.8).

use serde::{Deserialize, Serialize};

/// A binned frequency distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreqDist {
    /// Bin midpoints, ascending.
    pub midpoints: Vec<f64>,
    /// Records per bin.
    pub freq: Vec<u64>,
}

impl FreqDist {
    /// Bin `values` to their nearest midpoints. `midpoints` must be
    /// non-empty and strictly ascending; values outside the range clamp to
    /// the end bins (SAS clusters everything to its nearest midpoint).
    pub fn from_values(values: &[f64], midpoints: &[f64]) -> Self {
        assert!(!midpoints.is_empty(), "need at least one midpoint");
        assert!(
            midpoints.windows(2).all(|w| w[0] < w[1]),
            "midpoints must be strictly ascending"
        );
        let mut freq = vec![0u64; midpoints.len()];
        for &v in values {
            debug_assert!(
                v.is_finite(),
                "non-finite value {v} would silently cluster into bin 0"
            );
            freq[nearest_bin(v, midpoints)] += 1;
        }
        FreqDist {
            midpoints: midpoints.to_vec(),
            freq,
        }
    }

    /// Build directly from per-bin counts (e.g. processor-activity counts).
    pub fn from_counts(midpoints: &[f64], freq: &[u64]) -> Self {
        assert_eq!(midpoints.len(), freq.len());
        FreqDist {
            midpoints: midpoints.to_vec(),
            freq: freq.to_vec(),
        }
    }

    /// Total records.
    pub fn total(&self) -> u64 {
        self.freq.iter().sum()
    }

    /// Cumulative frequencies.
    pub fn cum_freq(&self) -> Vec<u64> {
        self.freq
            .iter()
            .scan(0u64, |acc, &f| {
                *acc += f;
                Some(*acc)
            })
            .collect()
    }

    /// Percent per bin (0–100; zeros if the distribution is empty).
    pub fn percent(&self) -> Vec<f64> {
        let t = self.total();
        if t == 0 {
            vec![0.0; self.freq.len()]
        } else {
            self.freq
                .iter()
                .map(|&f| 100.0 * f as f64 / t as f64)
                .collect()
        }
    }

    /// Cumulative percent per bin.
    pub fn cum_percent(&self) -> Vec<f64> {
        let t = self.total();
        if t == 0 {
            return vec![0.0; self.freq.len()];
        }
        self.cum_freq()
            .iter()
            .map(|&f| 100.0 * f as f64 / t as f64)
            .collect()
    }

    /// Median estimated from bin midpoints (the statistic the thesis
    /// annotates on its distribution listings).
    pub fn median_midpoint(&self) -> Option<f64> {
        let t = self.total();
        if t == 0 {
            return None;
        }
        let half = t.div_ceil(2);
        let mut acc = 0u64;
        for (i, &f) in self.freq.iter().enumerate() {
            acc += f;
            if acc >= half {
                return Some(self.midpoints[i]);
            }
        }
        None
    }

    /// Mean estimated from bin midpoints.
    pub fn mean_midpoint(&self) -> Option<f64> {
        let t = self.total();
        if t == 0 {
            return None;
        }
        let s: f64 = self
            .midpoints
            .iter()
            .zip(&self.freq)
            .map(|(&m, &f)| m * f as f64)
            .sum();
        Some(s / t as f64)
    }
}

/// Index of the nearest midpoint (ties round toward the higher bin,
/// matching SAS's half-up clustering).
///
/// `v` must be finite: a NaN makes every distance comparison below false,
/// so it would land in bin 0 — indistinguishable from a real low value and
/// exactly how a NaN rate once skewed a distribution undetected.
pub fn nearest_bin(v: f64, midpoints: &[f64]) -> usize {
    debug_assert!(v.is_finite(), "nearest_bin({v}) is not meaningful");
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, &m) in midpoints.iter().enumerate() {
        let d = (v - m).abs();
        // `<=` so an exact tie between two midpoints rounds half-up
        // (midpoints are ascending, the later bin wins).
        if d <= best_d {
            best = i;
            best_d = d;
        }
    }
    best
}

/// Equally spaced midpoints `start, start+step, ..` (n points).
pub fn midpoints(start: f64, step: f64, n: usize) -> Vec<f64> {
    (0..n).map(|i| start + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_cluster_to_nearest_midpoint() {
        let mids = midpoints(0.0, 0.125, 9); // the Figure 4 bins
        let d = FreqDist::from_values(&[0.0, 0.05, 0.07, 0.12, 0.99, 1.0], &mids);
        assert_eq!(d.freq[0], 2); // 0.0, 0.05 -> 0.0
        assert_eq!(d.freq[1], 2); // 0.07, 0.12 -> 0.125
        assert_eq!(d.freq[8], 2); // 0.99, 1.0 -> 1.0
        assert_eq!(d.total(), 6);
    }

    #[test]
    fn out_of_range_values_clamp_to_end_bins() {
        let mids = [0.0, 1.0];
        let d = FreqDist::from_values(&[-5.0, 7.0], &mids);
        assert_eq!(d.freq, vec![1, 1]);
    }

    #[test]
    fn tie_rounds_to_higher_bin() {
        let mids = [0.0, 1.0];
        assert_eq!(nearest_bin(0.5, &mids), 1);
        assert_eq!(nearest_bin(0.4999, &mids), 0);
    }

    #[test]
    fn cumulative_columns() {
        let d = FreqDist::from_counts(&[0.0, 1.0, 2.0], &[2, 3, 5]);
        assert_eq!(d.cum_freq(), vec![2, 5, 10]);
        assert_eq!(d.percent(), vec![20.0, 30.0, 50.0]);
        assert_eq!(d.cum_percent(), vec![20.0, 50.0, 100.0]);
    }

    #[test]
    fn median_and_mean_from_bins() {
        let d = FreqDist::from_counts(&[0.0, 1.0, 2.0], &[1, 1, 2]);
        assert_eq!(d.median_midpoint(), Some(1.0));
        assert_eq!(d.mean_midpoint(), Some(1.25));
    }

    #[test]
    fn empty_distribution_degenerates_gracefully() {
        let d = FreqDist::from_values(&[], &[0.0, 1.0]);
        assert_eq!(d.total(), 0);
        assert_eq!(d.percent(), vec![0.0, 0.0]);
        assert_eq!(d.median_midpoint(), None);
        assert_eq!(d.mean_midpoint(), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_midpoints_rejected() {
        FreqDist::from_values(&[1.0], &[1.0, 0.0]);
    }

    // debug_assertions-gated: `cargo test --release` (as CI runs it)
    // compiles the guards out, so the panics only exist in debug builds.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not meaningful")]
    fn nan_values_are_rejected_by_nearest_bin() {
        nearest_bin(f64::NAN, &[0.0, 1.0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "silently cluster")]
    fn nan_values_are_rejected_by_from_values() {
        FreqDist::from_values(&[0.5, f64::NAN], &[0.0, 1.0]);
    }

    #[test]
    fn midpoints_helper_spacing() {
        assert_eq!(
            midpoints(2.0, 1.0, 7),
            vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        );
    }
}
