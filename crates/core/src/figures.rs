//! Figures 3–14, A.1–A.5 and B.1–B.10, rendered in the thesis's SAS style.
//!
//! Every function takes the study's data and produces the text listing the
//! corresponding figure shows; structured variants return the underlying
//! distributions so tests and EXPERIMENTS.md can assert on the numbers.

use crate::sample::{points_vs_cw, points_vs_pc, Sample};
use crate::study::Study;
use crate::tables::{analysis_samples, table3, table4};
use fx8_stats::chart::{hbar, hbar_labeled, model_curve, scatter};
use fx8_stats::freq::{midpoints, FreqDist};

const PLOT_W: usize = 72;
const PLOT_H: usize = 24;

/// Histogram of records by active-processor count, descending order as in
/// the thesis (Figures 3, A.1, A.2, 6).
fn activity_histogram(title: &str, num: &[u64], lo: usize, hi: usize) -> String {
    let labels: Vec<String> = (lo..=hi).rev().map(|j| format!("{j}")).collect();
    let freq: Vec<u64> = (lo..=hi).rev().map(|j| num[j]).collect();
    let mut s = format!("NUMBER OF PROCESSORS / {title}\n");
    s.push_str(&hbar_labeled("", &labels, &freq));
    s
}

/// Figure 3: records with N processors active, all random sessions.
pub fn fig3(study: &Study) -> String {
    let num = study.pooled_num();
    activity_histogram("All Sessions", &num, 0, num.len() - 1)
}

/// Figure 4 data: distribution of samples by Workload Concurrency.
pub fn fig4_dist(study: &Study) -> FreqDist {
    let cw: Vec<f64> = study
        .all_samples()
        .iter()
        .map(|s| s.workload_concurrency())
        .collect();
    FreqDist::from_values(&cw, &midpoints(0.0, 0.125, 9))
}

/// Figure 4: distribution of samples by Workload Concurrency.
pub fn fig4(study: &Study) -> String {
    hbar(
        &fig4_dist(study),
        "Figure 4. Distribution of Samples by Workload Concurrency / All Sessions",
        |m| format!("{m:.3}"),
    )
}

/// Figure 5 data: distribution of samples by Mean Concurrency Level
/// (samples with `C_w = 0` are excluded — `P_c` is undefined there).
pub fn fig5_dist(study: &Study) -> FreqDist {
    let pc: Vec<f64> = study
        .all_samples()
        .iter()
        .filter_map(|s| s.mean_concurrency_level())
        .collect();
    FreqDist::from_values(&pc, &midpoints(2.0, 1.0, 7))
}

/// Figure 5: distribution of samples by Mean Concurrency Level.
pub fn fig5(study: &Study) -> String {
    hbar(
        &fig5_dist(study),
        "Figure 5. Distribution of Samples by Mean Concurrency Level / All Sessions",
        |m| format!("{m:.1}"),
    )
}

/// Figure 6 data: transition-period records with N processors active,
/// restricted to the transition states 2..=7 as in the thesis.
pub fn fig6_counts(study: &Study) -> Vec<u64> {
    study.pooled_transition_counts().num
}

/// Figure 6: N-active histogram over concurrency transition periods.
pub fn fig6(study: &Study) -> String {
    let num = fig6_counts(study);
    activity_histogram("Concurrency Transition Periods", &num, 2, 7)
}

/// Figure 7 data: per-processor activity during transition periods.
pub fn fig7_counts(study: &Study) -> Vec<u64> {
    study.pooled_transition_counts().prof
}

/// Figure 7: records active by processor number, transition periods.
pub fn fig7(study: &Study) -> String {
    let prof = fig7_counts(study);
    let labels: Vec<String> = (0..prof.len()).rev().map(|j| format!("CE {j}")).collect();
    let freq: Vec<u64> = (0..prof.len()).rev().map(|j| prof[j]).collect();
    let mut s =
        String::from("Figure 7. Number of Records Active by Processor Number / Transitions\n");
    s.push_str(&hbar_labeled("", &labels, &freq));
    s
}

fn hw_samples(study: &Study) -> Vec<Sample> {
    let (random, triggered) = analysis_samples(study);
    let mut all = random;
    all.extend(triggered);
    all
}

/// Figure 8: scatter of Missrate vs Workload Concurrency.
pub fn fig8(study: &Study) -> String {
    let pts = points_vs_cw(&hw_samples(study), Sample::missrate);
    scatter(
        "Figure 8. Missrate vs. Workload Concurrency",
        &pts,
        "C_w",
        "MISSRATE",
        PLOT_W,
        PLOT_H,
    )
}

/// Figure 9: scatter of Missrate vs Mean Concurrency Level.
pub fn fig9(study: &Study) -> String {
    let pts = points_vs_pc(&hw_samples(study), Sample::missrate);
    scatter(
        "Figure 9. Missrate vs. Mean Concurrency Level",
        &pts,
        "P_c",
        "MISSRATE",
        PLOT_W,
        PLOT_H,
    )
}

/// Band boundaries the thesis used for `C_w` (Figures 10, B.3, B.7).
pub const CW_BANDS: [(f64, f64); 3] = [(0.0, 0.4), (0.4, 0.8), (0.8, f64::INFINITY)];
/// Band boundaries the thesis used for `P_c` (Figures 11, B.4, B.8).
pub const PC_BANDS: [(f64, f64); 3] = [(0.0, 6.0), (6.0, 7.5), (7.5, f64::INFINITY)];

/// Distribution of a system measure within samples whose `C_w` lies in
/// `(lo, hi]` (first band includes 0).
pub fn banded_by_cw(
    samples: &[Sample],
    band: (f64, f64),
    y: impl Fn(&Sample) -> f64,
    mids: &[f64],
) -> FreqDist {
    let vals: Vec<f64> = samples
        .iter()
        .filter(|s| {
            let cw = s.workload_concurrency();
            (cw > band.0 || band.0 == 0.0) && cw <= band.1
        })
        .map(y)
        .collect();
    FreqDist::from_values(&vals, mids)
}

/// Distribution of a system measure within samples whose `P_c` lies in
/// `(lo, hi]` (samples without a defined `P_c` are dropped).
pub fn banded_by_pc(
    samples: &[Sample],
    band: (f64, f64),
    y: impl Fn(&Sample) -> f64,
    mids: &[f64],
) -> FreqDist {
    let vals: Vec<f64> = samples
        .iter()
        .filter_map(|s| s.mean_concurrency_level().map(|pc| (pc, y(s))))
        .filter(|&(pc, _)| (pc > band.0 || band.0 == 0.0) && pc <= band.1)
        .map(|(_, v)| v)
        .collect();
    FreqDist::from_values(&vals, mids)
}

fn render_bands(
    study: &Study,
    fig: &str,
    measure_name: &str,
    by_cw: bool,
    y: impl Fn(&Sample) -> f64 + Copy,
    mids: &[f64],
    fmt: impl Fn(f64) -> String + Copy,
) -> String {
    let samples = hw_samples(study);
    let mut out = String::new();
    let (bands, x_name): (&[(f64, f64)], &str) = if by_cw {
        (&CW_BANDS, "Cw")
    } else {
        (&PC_BANDS, "Pc")
    };
    for (i, &band) in bands.iter().enumerate() {
        let label = (b'a' + i as u8) as char;
        let hi = if band.1.is_infinite() {
            format!("{x_name} > {}", band.0)
        } else if band.0 == 0.0 {
            format!("{x_name} <= {}", band.1)
        } else {
            format!("{} < {x_name} <= {}", band.0, band.1)
        };
        let dist = if by_cw {
            banded_by_cw(&samples, band, y, mids)
        } else {
            banded_by_pc(&samples, band, y, mids)
        };
        out.push_str(&hbar(
            &dist,
            &format!("Figure {fig} ({label}). Distribution of {measure_name}, {hi}"),
            fmt,
        ));
        out.push('\n');
    }
    out
}

/// Midpoints for miss-rate distributions (0.00..0.10 step 0.01).
pub fn missrate_midpoints() -> Vec<f64> {
    midpoints(0.0, 0.01, 11)
}

/// Figure 10 (a–c): Missrate distributions binned by `C_w` band.
pub fn fig10(study: &Study) -> String {
    render_bands(
        study,
        "10",
        "Miss Rate",
        true,
        Sample::missrate,
        &missrate_midpoints(),
        |m| format!("{m:.2}"),
    )
}

/// Figure 11 (a–c): Missrate distributions binned by `P_c` band.
pub fn fig11(study: &Study) -> String {
    render_bands(
        study,
        "11",
        "Miss Rate",
        false,
        Sample::missrate,
        &missrate_midpoints(),
        |m| format!("{m:.2}"),
    )
}

/// Figure 12: the fitted Missrate-vs-`C_w` model curve.
pub fn fig12(study: &Study) -> String {
    match table3(study).model("Median Miss Rate") {
        Some(m) => model_curve(
            "Figure 12. Plot of Regression Model, Missrate vs. Cw",
            m,
            0.0,
            1.0,
            PLOT_W,
            16,
        ),
        None => "Figure 12: model degenerate (insufficient occupied bins)\n".into(),
    }
}

/// Figure 13: the fitted CE-Bus-Busy-vs-`C_w` model curve.
pub fn fig13(study: &Study) -> String {
    match table3(study).model("Median CE Bus Busy") {
        Some(m) => model_curve(
            "Figure 13. Plot of Regression Model, CE Bus Busy vs. Cw",
            m,
            0.0,
            1.0,
            PLOT_W,
            16,
        ),
        None => "Figure 13: model degenerate (insufficient occupied bins)\n".into(),
    }
}

/// Figure 14: the fitted CE-Bus-Busy-vs-`P_c` model curve.
pub fn fig14(study: &Study) -> String {
    match table4(study).model("Median CE Bus Busy") {
        Some(m) => model_curve(
            "Figure 14. Plot of Regression Model, CE Bus Busy vs. Pc",
            m,
            2.0,
            8.0,
            PLOT_W,
            16,
        ),
        None => "Figure 14: model degenerate (insufficient occupied bins)\n".into(),
    }
}

/// Figures A.1/A.2: per-session activity histograms (the thesis shows
/// sessions 1 and 9 to illustrate day-to-day variation).
pub fn fig_a1_a2(study: &Study, session: usize) -> String {
    let s = &study.random_sessions[session];
    activity_histogram(&format!("Session {}", session + 1), &s.pooled_num(), 0, 8)
}

/// Figure A.3: distribution of samples by CE Bus Busy.
pub fn fig_a3(study: &Study) -> String {
    let vals: Vec<f64> = study
        .all_samples()
        .iter()
        .map(|s| s.ce_bus_busy())
        .collect();
    let d = FreqDist::from_values(&vals, &midpoints(0.0, 0.05, 11));
    hbar(
        &d,
        "Figure A.3. Distribution of Samples by CE Bus Busy",
        |m| format!("{m:.2}"),
    )
}

/// Figure A.4: distribution of samples by Miss Rate.
pub fn fig_a4(study: &Study) -> String {
    let vals: Vec<f64> = study.all_samples().iter().map(|s| s.missrate()).collect();
    let d = FreqDist::from_values(&vals, &missrate_midpoints());
    hbar(
        &d,
        "Figure A.4. Distribution of Samples by Miss Rate",
        |m| format!("{m:.2}"),
    )
}

/// Figure A.5: distribution of samples by Page Fault Rate.
pub fn fig_a5(study: &Study) -> String {
    let vals: Vec<f64> = study
        .all_samples()
        .iter()
        .map(|s| s.page_fault_rate())
        .collect();
    let d = FreqDist::from_values(&vals, &midpoints(0.0, 1000.0, 25));
    hbar(
        &d,
        "Figure A.5. Distribution of Samples by Page Fault Rate",
        |m| format!("{m:.0}"),
    )
}

/// Figure B.1: scatter of CE Bus Busy vs Workload Concurrency.
pub fn fig_b1(study: &Study) -> String {
    let pts = points_vs_cw(&hw_samples(study), Sample::ce_bus_busy);
    scatter(
        "Figure B.1. CE Bus Busy vs. Workload Concurrency",
        &pts,
        "C_w",
        "CE BUS BUSY",
        PLOT_W,
        PLOT_H,
    )
}

/// Figure B.2: scatter of CE Bus Busy vs Mean Concurrency Level.
pub fn fig_b2(study: &Study) -> String {
    let pts = points_vs_pc(&hw_samples(study), Sample::ce_bus_busy);
    scatter(
        "Figure B.2. CE Bus Busy vs. Mean Concurrency Level",
        &pts,
        "P_c",
        "CE BUS BUSY",
        PLOT_W,
        PLOT_H,
    )
}

/// Midpoints for CE-bus-busy distributions (0.0..1.0 step 0.1).
pub fn busy_midpoints() -> Vec<f64> {
    midpoints(0.0, 0.1, 11)
}

/// Figure B.3 (a–c): CE Bus Busy distributions binned by `C_w` band.
pub fn fig_b3(study: &Study) -> String {
    render_bands(
        study,
        "B.3",
        "CE Bus Busy",
        true,
        Sample::ce_bus_busy,
        &busy_midpoints(),
        |m| format!("{m:.1}"),
    )
}

/// Figure B.4 (a–c): CE Bus Busy distributions binned by `P_c` band.
pub fn fig_b4(study: &Study) -> String {
    render_bands(
        study,
        "B.4",
        "CE Bus Busy",
        false,
        Sample::ce_bus_busy,
        &busy_midpoints(),
        |m| format!("{m:.1}"),
    )
}

/// Figure B.5: scatter of Page Fault Rate vs Workload Concurrency
/// (random samples only — the kernel counters exist only there).
pub fn fig_b5(study: &Study) -> String {
    let (random, _) = analysis_samples(study);
    let pts = points_vs_cw(&random, Sample::page_fault_rate);
    scatter(
        "Figure B.5. Page Fault Rate vs. Workload Concurrency",
        &pts,
        "C_w",
        "CE PAGE FAULT",
        PLOT_W,
        PLOT_H,
    )
}

/// Figure B.6: scatter of Page Fault Rate vs Mean Concurrency Level.
pub fn fig_b6(study: &Study) -> String {
    let (random, _) = analysis_samples(study);
    let pts = points_vs_pc(&random, Sample::page_fault_rate);
    scatter(
        "Figure B.6. Page Fault Rate vs. Mean Concurrency Level",
        &pts,
        "P_c",
        "CE PAGE FAULT",
        PLOT_W,
        PLOT_H,
    )
}

/// Midpoints for page-fault-rate distributions.
pub fn pfr_midpoints() -> Vec<f64> {
    midpoints(0.0, 2000.0, 13)
}

fn render_pfr_bands(study: &Study, fig: &str, by_cw: bool) -> String {
    let (random, _) = analysis_samples(study);
    let mut out = String::new();
    let (bands, x_name): (&[(f64, f64)], &str) = if by_cw {
        (&CW_BANDS, "Cw")
    } else {
        (&PC_BANDS, "Pc")
    };
    for (i, &band) in bands.iter().enumerate() {
        let label = (b'a' + i as u8) as char;
        let hi = if band.1.is_infinite() {
            format!("{x_name} > {}", band.0)
        } else if band.0 == 0.0 {
            format!("{x_name} <= {}", band.1)
        } else {
            format!("{} < {x_name} <= {}", band.0, band.1)
        };
        let dist = if by_cw {
            banded_by_cw(&random, band, Sample::page_fault_rate, &pfr_midpoints())
        } else {
            banded_by_pc(&random, band, Sample::page_fault_rate, &pfr_midpoints())
        };
        out.push_str(&hbar(
            &dist,
            &format!("Figure {fig} ({label}). Distribution of Page Fault Rate, {hi}"),
            |m| format!("{m:.0}"),
        ));
        out.push('\n');
    }
    out
}

/// Figure B.7 (a–c): Page Fault Rate distributions binned by `C_w` band.
pub fn fig_b7(study: &Study) -> String {
    render_pfr_bands(study, "B.7", true)
}

/// Figure B.8 (a–c): Page Fault Rate distributions binned by `P_c` band.
pub fn fig_b8(study: &Study) -> String {
    render_pfr_bands(study, "B.8", false)
}

/// Figure B.9: the fitted Page-Fault-Rate-vs-`C_w` model curve.
pub fn fig_b9(study: &Study) -> String {
    match table3(study).model("Median Page Fault Rate") {
        Some(m) => model_curve(
            "Figure B.9. Plot of Regression Model, Page Fault Rate vs. Cw",
            m,
            0.0,
            1.0,
            PLOT_W,
            16,
        ),
        None => "Figure B.9: model degenerate (insufficient occupied bins)\n".into(),
    }
}

/// Figure B.10: the fitted Page-Fault-Rate-vs-`P_c` model curve.
pub fn fig_b10(study: &Study) -> String {
    match table4(study).model("Median Page Fault Rate") {
        Some(m) => model_curve(
            "Figure B.10. Plot of Regression Model, Page Fault Rate vs. Pc",
            m,
            2.0,
            8.0,
            PLOT_W,
            16,
        ),
        None => "Figure B.10: model degenerate (insufficient occupied bins)\n".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use fx8_workload::WorkloadMix;
    use std::sync::OnceLock;

    fn mini_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| {
            let cfg = StudyConfig {
                n_random: 2,
                session_hours: vec![0.15, 0.15],
                n_triggered: 1,
                captures_per_triggered: 3,
                n_transition: 1,
                captures_per_transition: 3,
                mix: WorkloadMix::all_concurrent(),
                ..StudyConfig::paper()
            };
            Study::run(cfg)
        })
    }

    #[test]
    fn every_figure_renders_nonempty() {
        let study = mini_study();
        let figs: Vec<(&str, String)> = vec![
            ("fig3", fig3(study)),
            ("fig4", fig4(study)),
            ("fig5", fig5(study)),
            ("fig6", fig6(study)),
            ("fig7", fig7(study)),
            ("fig8", fig8(study)),
            ("fig9", fig9(study)),
            ("fig10", fig10(study)),
            ("fig11", fig11(study)),
            ("fig12", fig12(study)),
            ("fig13", fig13(study)),
            ("fig14", fig14(study)),
            ("figA1", fig_a1_a2(study, 0)),
            ("figA2", fig_a1_a2(study, 1)),
            ("figA3", fig_a3(study)),
            ("figA4", fig_a4(study)),
            ("figA5", fig_a5(study)),
            ("figB1", fig_b1(study)),
            ("figB2", fig_b2(study)),
            ("figB3", fig_b3(study)),
            ("figB4", fig_b4(study)),
            ("figB5", fig_b5(study)),
            ("figB6", fig_b6(study)),
            ("figB7", fig_b7(study)),
            ("figB8", fig_b8(study)),
            ("figB9", fig_b9(study)),
            ("figB10", fig_b10(study)),
        ];
        for (name, text) in figs {
            // Model-curve figures may legitimately degenerate on a mini
            // study whose P_c values occupy fewer than three bins.
            if text.contains("model degenerate") {
                continue;
            }
            assert!(text.lines().count() >= 3, "{name} too short:\n{text}");
        }
    }

    #[test]
    fn fig4_distribution_covers_all_samples() {
        let study = mini_study();
        let d = fig4_dist(study);
        assert_eq!(d.total() as usize, study.all_samples().len());
    }

    #[test]
    fn fig6_shows_only_transition_states() {
        let study = mini_study();
        let text = fig6(study);
        // Histogram rows run 7 down to 2.
        assert!(text.contains("\n7 "));
        assert!(text.contains("\n2 "));
        assert!(!text.contains("\n8 "));
    }

    #[test]
    fn banded_distributions_partition_hw_samples() {
        let study = mini_study();
        let samples = hw_samples(study);
        let mids = missrate_midpoints();
        let total: u64 = CW_BANDS
            .iter()
            .map(|&b| banded_by_cw(&samples, b, Sample::missrate, &mids).total())
            .sum();
        assert_eq!(total as usize, samples.len(), "C_w bands must partition");
    }

    #[test]
    fn pc_bands_cover_only_defined_samples() {
        let study = mini_study();
        let samples = hw_samples(study);
        let mids = missrate_midpoints();
        let total: u64 = PC_BANDS
            .iter()
            .map(|&b| banded_by_pc(&samples, b, Sample::missrate, &mids).total())
            .sum();
        let defined = samples
            .iter()
            .filter(|s| s.mean_concurrency_level().is_some())
            .count();
        assert_eq!(total as usize, defined);
    }
}
