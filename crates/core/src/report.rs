//! The full report and the paper-vs-measured comparison.
//!
//! [`render_full_report`] regenerates every table and figure as one text
//! document; [`comparison`] extracts the quantitative claims of the thesis
//! and pairs each with the value measured by this reproduction — the data
//! behind EXPERIMENTS.md. Reproduction targets *shape*, not absolute
//! numbers: the substrate is a simulator, not the CSRD machine.

use crate::figures;
use crate::observability::StudyObservability;
use crate::sample::Sample;
use crate::study::Study;
use crate::tables;
use fx8_stats::summary::median;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One compared quantity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompRow {
    /// Table/figure the value comes from.
    pub id: String,
    /// What is being compared.
    pub metric: String,
    /// The thesis's value (None for qualitative claims).
    pub paper: Option<f64>,
    /// This reproduction's value.
    pub measured: f64,
    /// What "agreement" means for this row.
    pub note: String,
}

fn band_median(
    samples: &[Sample],
    band: (f64, f64),
    by_cw: bool,
    y: impl Fn(&Sample) -> f64,
) -> f64 {
    let vals: Vec<f64> = samples
        .iter()
        .filter_map(|s| {
            let x = if by_cw {
                Some(s.workload_concurrency())
            } else {
                s.mean_concurrency_level()
            }?;
            ((x > band.0 || band.0 == 0.0) && x <= band.1).then(|| y(s))
        })
        .collect();
    median(&vals).unwrap_or(f64::NAN)
}

/// Extract every quantitative claim and its measured counterpart.
pub fn comparison(study: &Study) -> Vec<CompRow> {
    let mut rows = Vec::new();
    let m = study.overall_measures();

    // --- Table 2 / Chapter 4 headline numbers.
    rows.push(CompRow {
        id: "Table 2".into(),
        metric: "Workload Concurrency C_w".into(),
        paper: Some(0.35),
        measured: m.workload_concurrency,
        note: "fraction of records with >= 2 CEs active".into(),
    });
    rows.push(CompRow {
        id: "Table 2".into(),
        metric: "Mean Concurrency Level P_c".into(),
        paper: Some(7.66),
        measured: m.mean_concurrency_level.unwrap_or(f64::NAN),
        note: "average CEs active during concurrency".into(),
    });
    rows.push(CompRow {
        id: "Table 2".into(),
        metric: "c_{8|c} (8-active share of concurrent records)".into(),
        paper: Some(0.9278),
        measured: m.c_j_given_concurrent(8),
        note: "concurrent periods typically use all CEs".into(),
    });

    // --- Figure 4: burstiness of the sample-level C_w distribution.
    let samples: Vec<Sample> = study.all_samples().into_iter().cloned().collect();
    let zero = samples
        .iter()
        .filter(|s| s.workload_concurrency() == 0.0)
        .count();
    rows.push(CompRow {
        id: "Figure 4".into(),
        metric: "% of samples with C_w = 0".into(),
        paper: Some(44.62),
        measured: 100.0 * zero as f64 / samples.len().max(1) as f64,
        note: "44.62% of 5-minute samples saw no concurrency".into(),
    });

    // --- Figure 5: concentration of P_c near full concurrency.
    let defined: Vec<f64> = samples
        .iter()
        .filter_map(|s| s.mean_concurrency_level())
        .collect();
    let high = defined.iter().filter(|&&pc| pc > 6.5).count();
    rows.push(CompRow {
        id: "Figure 5".into(),
        metric: "% of concurrent samples with P_c > 6.5".into(),
        paper: Some(94.0),
        measured: 100.0 * high as f64 / defined.len().max(1) as f64,
        note: "'greater than 94% of samples have a Mean Concurrency Level higher than 6.5'".into(),
    });

    // --- Figure 6: the 2-active dominance of transitions.
    let tnum = study.pooled_transition_counts().num;
    let transition_total: u64 = (2..8).map(|j| tnum[j]).sum();
    rows.push(CompRow {
        id: "Figure 6".into(),
        metric: "% of transition states at 2-active".into(),
        paper: Some(52.43),
        measured: 100.0 * tnum[2] as f64 / transition_total.max(1) as f64,
        note: "2-concurrency dominates the drain of concurrent loops".into(),
    });

    // --- Figure 7: CE0/CE7 trail the drain.
    let prof = study.pooled_transition_counts().prof;
    if prof.len() == 8 {
        let ends = (prof[0] + prof[7]) as f64 / 2.0;
        let middle: f64 = (1..7).map(|j| prof[j] as f64).sum::<f64>() / 6.0;
        rows.push(CompRow {
            id: "Figure 7".into(),
            metric: "transition activity, ends/middle CE ratio".into(),
            paper: None,
            measured: ends / middle.max(1.0),
            note: "qualitative in the thesis: CEs 7 and 0 'active significantly more often'; ratio > 1 reproduces it".into(),
        });
    }

    // --- Figure 10: missrate medians by C_w band.
    let (random, triggered) = tables::analysis_samples(study);
    let mut hw = random.clone();
    hw.extend(triggered);
    for (band, paper) in figures::CW_BANDS.iter().zip([0.001, 0.008, 0.023]) {
        rows.push(CompRow {
            id: "Figure 10".into(),
            metric: format!(
                "median Missrate, C_w band ({:.1}, {:.1}]",
                band.0,
                band.1.min(1.0)
            ),
            paper: Some(paper),
            measured: band_median(&hw, *band, true, Sample::missrate),
            note: "median rises steeply with C_w".into(),
        });
    }

    // --- Figure 11: missrate medians by P_c band (flat).
    for (band, paper) in figures::PC_BANDS.iter().zip([0.004, 0.017, 0.017]) {
        rows.push(CompRow {
            id: "Figure 11".into(),
            metric: format!(
                "median Missrate, P_c band ({:.1}, {:.1}]",
                band.0,
                band.1.min(8.0)
            ),
            paper: Some(paper),
            measured: band_median(&hw, *band, false, Sample::missrate),
            note: "little sensitivity to P_c between the upper bands".into(),
        });
    }

    // --- Tables 3/4: model quality and predictions.
    let t3 = tables::table3(study);
    let t4 = tables::table4(study);
    if let Some(miss) = t3.model("Median Miss Rate") {
        rows.push(CompRow {
            id: "Table 3".into(),
            metric: "R^2, Missrate vs C_w".into(),
            paper: Some(0.74),
            measured: miss.r2,
            note: "moderately strong fit".into(),
        });
        rows.push(CompRow {
            id: "Figure 12".into(),
            metric: "model Missrate at C_w = 0.5".into(),
            paper: Some(0.007),
            measured: miss.predict(0.5),
            note: "the 300% headline: 0.007 -> 0.024 as C_w doubles".into(),
        });
        rows.push(CompRow {
            id: "Figure 12".into(),
            metric: "model Missrate at C_w = 1.0".into(),
            paper: Some(0.024),
            measured: miss.predict(1.0),
            note: "the 300% headline: 0.007 -> 0.024 as C_w doubles".into(),
        });
        rows.push(CompRow {
            id: "Figure 12".into(),
            metric: "Missrate ratio, C_w 1.0 / 0.5".into(),
            paper: Some(0.024 / 0.007),
            measured: miss.predict(1.0) / miss.predict(0.5).max(1e-9),
            note: "'greater than triple increase'".into(),
        });
    }
    if let Some(busy) = t3.model("Median CE Bus Busy") {
        rows.push(CompRow {
            id: "Table 3".into(),
            metric: "R^2, CE Bus Busy vs C_w".into(),
            paper: Some(0.89),
            measured: busy.r2,
            note: "near-linear growth with the fraction of parallel code".into(),
        });
        rows.push(CompRow {
            id: "Figure 13".into(),
            metric: "model CE Bus Busy at C_w = 1.0".into(),
            paper: Some(0.34),
            measured: busy.predict(1.0),
            note: "Figure 13 tops out near 0.33".into(),
        });
    }
    if let Some(pfr) = t3.model("Median Page Fault Rate") {
        rows.push(CompRow {
            id: "Table 3".into(),
            metric: "R^2, Page Fault Rate vs C_w".into(),
            paper: Some(0.65),
            measured: pfr.r2,
            note: "concave growth with C_w".into(),
        });
    }
    if let Some(miss4) = t4.model("Median Miss Rate") {
        rows.push(CompRow {
            id: "Table 4".into(),
            metric: "R^2, Missrate vs P_c".into(),
            paper: Some(0.07),
            measured: miss4.r2,
            note: "the key negative result: Missrate barely depends on P_c".into(),
        });
    }
    if let Some(busy4) = t4.model("Median CE Bus Busy") {
        rows.push(CompRow {
            id: "Table 4".into(),
            metric: "R^2, CE Bus Busy vs P_c".into(),
            paper: Some(0.66),
            measured: busy4.r2,
            note: "busy grows with P_c but saturates".into(),
        });
        rows.push(CompRow {
            id: "Figure 14".into(),
            metric: "CE Bus Busy saturation: model(8) - model(6)".into(),
            paper: Some(0.03),
            measured: busy4.predict(8.0) - busy4.predict(6.0),
            note: "'relatively constant bus activity after P_c = 6.0'".into(),
        });
    }
    if let Some(pfr4) = t4.model("Median Page Fault Rate") {
        rows.push(CompRow {
            id: "Table 4".into(),
            metric: "R^2, Page Fault Rate vs P_c".into(),
            paper: Some(0.61),
            measured: pfr4.r2,
            note: "moderate".into(),
        });
    }
    rows
}

/// The study's report: the paper-vs-measured comparison plus the run's
/// own observability (engine residency, per-session metrics, wall clock).
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Every quantitative claim paired with its measured counterpart.
    pub comparison: Vec<CompRow>,
    /// Self-observability of the run that produced the data.
    pub observability: StudyObservability,
}

impl StudyReport {
    /// Build the report for a finished study and its observability.
    pub fn new(study: &Study, observability: StudyObservability) -> Self {
        StudyReport {
            comparison: comparison(study),
            observability,
        }
    }

    /// Render the comparison table followed by the observability section.
    pub fn render(&self) -> String {
        let mut s = render_comparison(&self.comparison);
        s.push('\n');
        s.push_str(&self.observability.render());
        s
    }
}

/// Render the comparison as a markdown table (EXPERIMENTS.md body).
pub fn render_comparison(rows: &[CompRow]) -> String {
    let mut s = String::new();
    s.push_str("| id | metric | paper | measured | note |\n");
    s.push_str("|---|---|---:|---:|---|\n");
    for r in rows {
        let paper = r
            .paper
            .map_or("(qualitative)".into(), |p| format!("{p:.4}"));
        let _ = writeln!(
            s,
            "| {} | {} | {} | {:.4} | {} |",
            r.id, r.metric, paper, r.measured, r.note
        );
    }
    s
}

/// Regenerate every table and figure as one document.
pub fn render_full_report(study: &Study) -> String {
    let mut s = String::new();
    let push = |s: &mut String, block: String| {
        s.push_str(&block);
        s.push('\n');
    };
    push(&mut s, tables::table1());
    push(&mut s, tables::table2(study).render());
    push(&mut s, tables::table3(study).render());
    push(&mut s, tables::table4(study).render());
    push(&mut s, tables::render_table_a1(&tables::table_a1(study)));
    push(&mut s, figures::fig3(study));
    push(&mut s, figures::fig4(study));
    push(&mut s, figures::fig5(study));
    push(&mut s, figures::fig6(study));
    push(&mut s, figures::fig7(study));
    push(&mut s, figures::fig8(study));
    push(&mut s, figures::fig9(study));
    push(&mut s, figures::fig10(study));
    push(&mut s, figures::fig11(study));
    push(&mut s, figures::fig12(study));
    push(&mut s, figures::fig13(study));
    push(&mut s, figures::fig14(study));
    if !study.random_sessions.is_empty() {
        push(&mut s, figures::fig_a1_a2(study, 0));
        push(
            &mut s,
            figures::fig_a1_a2(study, study.random_sessions.len() - 1),
        );
    }
    push(&mut s, figures::fig_a3(study));
    push(&mut s, figures::fig_a4(study));
    push(&mut s, figures::fig_a5(study));
    push(&mut s, figures::fig_b1(study));
    push(&mut s, figures::fig_b2(study));
    push(&mut s, figures::fig_b3(study));
    push(&mut s, figures::fig_b4(study));
    push(&mut s, figures::fig_b5(study));
    push(&mut s, figures::fig_b6(study));
    push(&mut s, figures::fig_b7(study));
    push(&mut s, figures::fig_b8(study));
    push(&mut s, figures::fig_b9(study));
    push(&mut s, figures::fig_b10(study));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use fx8_workload::WorkloadMix;

    fn mini_study() -> Study {
        // Four random sessions, not two: the comparison's regression rows
        // need samples in at least three distinct C_w bins, and two
        // five-minute samples can land in as few as one.
        let cfg = StudyConfig {
            n_random: 4,
            session_hours: vec![0.15, 0.15, 0.15, 0.15],
            n_triggered: 1,
            captures_per_triggered: 3,
            n_transition: 1,
            captures_per_transition: 3,
            mix: WorkloadMix::all_concurrent(),
            ..StudyConfig::paper()
        };
        Study::run(cfg)
    }

    #[test]
    fn comparison_covers_the_headline_claims() {
        let study = mini_study();
        let rows = comparison(&study);
        let ids: Vec<&str> = rows.iter().map(|r| r.id.as_str()).collect();
        for id in [
            "Table 2",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 10",
            "Figure 11",
        ] {
            assert!(ids.contains(&id), "missing {id}");
        }
        assert!(rows.len() >= 15);
    }

    #[test]
    fn comparison_renders_as_markdown() {
        let study = mini_study();
        let rows = comparison(&study);
        let md = render_comparison(&rows);
        assert!(md.starts_with("| id |"));
        assert_eq!(md.lines().count(), rows.len() + 2);
    }

    #[test]
    fn full_report_contains_every_table_and_figure() {
        let study = mini_study();
        let r = render_full_report(&study);
        for needle in [
            "TABLE 1",
            "TABLE 2",
            "Regression Models: System Measure vs. C_w",
            "Regression Models: System Measure vs. P_c",
            "Table A.1",
            "All Sessions",
            "Figure 4",
            "Figure 5",
            "Transition",
            "Figure 8",
            "Figure 10 (a)",
            "Figure 11 (c)",
            "Figure B.3 (b)",
            "Figure B.7 (a)",
        ] {
            assert!(r.contains(needle), "report missing {needle}");
        }
    }
}
