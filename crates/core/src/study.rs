//! The complete study.
//!
//! § 3.5: nine random-sampling sessions on seven midweek days, ten
//! all-active-triggered sessions, and five transition-triggered sessions.
//! Sessions are independent measurements (different days, different
//! seeds), so the study runs them in parallel with scoped threads — the
//! results are bit-identical to a serial run.

use crate::experiment::{
    run_random_session, run_transition_session, run_triggered_session, Capture, SessionConfig,
    SessionResult,
};
use crate::sample::Sample;
use fx8_monitor::EventCounts;
use fx8_sim::MachineConfig;
use fx8_stats::measures::ConcurrencyMeasures;
use fx8_workload::WorkloadMix;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration of the whole study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Machine configuration shared by all sessions.
    pub machine: MachineConfig,
    /// Workload mix shared by all sessions.
    pub mix: WorkloadMix,
    /// Number of random-sampling sessions (9 in the study).
    pub n_random: usize,
    /// Random-session lengths in hours, cycled across sessions
    /// ("each session lasted between four and eight hours").
    pub session_hours: Vec<f64>,
    /// Number of all-active-triggered sessions (10 in the study).
    pub n_triggered: usize,
    /// Buffers captured per triggered session.
    pub captures_per_triggered: usize,
    /// Number of transition-triggered sessions (5 in the study).
    pub n_transition: usize,
    /// Buffers captured per transition session.
    pub captures_per_transition: usize,
    /// Base RNG seed; session `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Run sessions on parallel threads.
    pub parallel: bool,
}

impl StudyConfig {
    /// The study at paper scale.
    pub fn paper() -> Self {
        StudyConfig {
            machine: MachineConfig::fx8(),
            mix: WorkloadMix::csrd_production(),
            n_random: 9,
            session_hours: vec![4.0, 5.0, 6.0, 8.0, 4.5, 7.0, 5.5, 6.5, 6.0],
            n_triggered: 10,
            captures_per_triggered: 40,
            n_transition: 5,
            captures_per_transition: 40,
            base_seed: 1987,
            parallel: true,
        }
    }

    /// A scaled-down study for tests and examples (minutes, not hours).
    pub fn quick() -> Self {
        StudyConfig {
            n_random: 3,
            session_hours: vec![0.35, 0.35, 0.35],
            n_triggered: 2,
            captures_per_triggered: 6,
            n_transition: 2,
            captures_per_transition: 6,
            ..StudyConfig::paper()
        }
    }

    fn session_cfg(&self, seed_offset: u64, hours: f64) -> SessionConfig {
        SessionConfig {
            machine: self.machine.clone(),
            mix: self.mix.clone(),
            hours,
            ..SessionConfig::paper(self.base_seed + seed_offset)
        }
    }
}

/// The study's complete data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Study {
    /// The configuration that produced it.
    pub config: StudyConfig,
    /// Random-sampling sessions, in session order.
    pub random_sessions: Vec<SessionResult>,
    /// Per-buffer captures of the all-active-triggered sessions.
    pub triggered: Vec<Vec<Capture>>,
    /// Per-buffer captures of the transition-triggered sessions.
    pub transitions: Vec<Vec<Capture>>,
}

impl Study {
    /// Run the whole study.
    pub fn run(config: StudyConfig) -> Study {
        enum Task {
            Random(usize, SessionConfig),
            Triggered(usize, SessionConfig, usize),
            Transition(usize, SessionConfig, usize),
        }
        enum Out {
            Random(usize, SessionResult),
            Triggered(usize, Vec<Capture>),
            Transition(usize, Vec<Capture>),
        }
        let mut tasks = Vec::new();
        for i in 0..config.n_random {
            let hours = config.session_hours[i % config.session_hours.len().max(1)];
            tasks.push(Task::Random(i, config.session_cfg(i as u64, hours)));
        }
        for i in 0..config.n_triggered {
            let cfg = config.session_cfg(1000 + i as u64, 1.0);
            tasks.push(Task::Triggered(i, cfg, config.captures_per_triggered));
        }
        for i in 0..config.n_transition {
            let cfg = config.session_cfg(2000 + i as u64, 1.0);
            tasks.push(Task::Transition(i, cfg, config.captures_per_transition));
        }

        let run_task = |t: &Task| -> Out {
            match t {
                Task::Random(i, cfg) => Out::Random(*i, run_random_session(cfg, *i)),
                Task::Triggered(i, cfg, n) => {
                    Out::Triggered(*i, run_triggered_session(cfg, *i, *n))
                }
                Task::Transition(i, cfg, n) => {
                    Out::Transition(*i, run_transition_session(cfg, *i, *n))
                }
            }
        };

        // Estimated session cost, for longest-task-first scheduling. Random
        // sessions simulate one 512-record buffer per snapshot; triggered
        // and transition captures pay an extra trigger-seek on top of each
        // buffer (transitions seek much longer for a falling edge). Only
        // wall time depends on this estimate — results are keyed by task
        // index and each task owns its seeds, so order never changes output.
        let estimated_buffers = |t: &Task| -> f64 {
            match t {
                Task::Random(_, cfg) => {
                    let samples = (cfg.hours * 3600.0 / cfg.sample_interval_s).max(1.0);
                    samples * cfg.snapshots_per_sample as f64
                }
                Task::Triggered(_, _, n) => 2.0 * *n as f64,
                Task::Transition(_, _, n) => 4.0 * *n as f64,
            }
        };

        let outputs: Vec<Out> = if config.parallel {
            // Work queue: a pool sized to the host pulls the heaviest
            // remaining session first, so total wall time is bounded by the
            // single heaviest session instead of by thread oversubscription
            // (the old code spawned one thread per session).
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            order.sort_by(|&a, &b| {
                estimated_buffers(&tasks[b])
                    .total_cmp(&estimated_buffers(&tasks[a]))
                    .then(a.cmp(&b))
            });
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Out>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
            let workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(tasks.len().max(1));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = order.get(k) else { break };
                        let out = run_task(&tasks[idx]);
                        *slots[idx].lock().expect("result slot poisoned") = Some(out);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("result slot poisoned")
                        .expect("every queued session ran")
                })
                .collect()
        } else {
            tasks.iter().map(run_task).collect()
        };

        let mut random_sessions = vec![None; config.n_random];
        let mut triggered = vec![Vec::new(); config.n_triggered];
        let mut transitions = vec![Vec::new(); config.n_transition];
        for out in outputs {
            match out {
                Out::Random(i, r) => random_sessions[i] = Some(r),
                Out::Triggered(i, b) => triggered[i] = b,
                Out::Transition(i, b) => transitions[i] = b,
            }
        }
        Study {
            config,
            random_sessions: random_sessions
                .into_iter()
                .map(|r| r.expect("every random session ran"))
                .collect(),
            triggered,
            transitions,
        }
    }

    /// Every sample of every random session, session order then time order.
    pub fn all_samples(&self) -> Vec<&Sample> {
        self.random_sessions
            .iter()
            .flat_map(|s| s.samples.iter())
            .collect()
    }

    /// Pooled `num[j]` distribution over all random sessions (Figure 3).
    pub fn pooled_num(&self) -> Vec<u64> {
        let mut num = vec![0u64; self.config.machine.n_ces + 1];
        for s in &self.random_sessions {
            for (j, k) in s.pooled_num().iter().enumerate() {
                if j < num.len() {
                    num[j] += k;
                }
            }
        }
        num
    }

    /// Pooled event counts over all random sessions (Table 2).
    pub fn pooled_counts(&self) -> EventCounts {
        let mut acc = EventCounts::empty(self.config.machine.n_ces);
        for s in &self.random_sessions {
            acc.merge(&s.pooled_counts());
        }
        acc
    }

    /// Overall concurrency measures (Table 2).
    pub fn overall_measures(&self) -> ConcurrencyMeasures {
        ConcurrencyMeasures::from_counts(&self.pooled_num())
    }

    /// Pooled counts over all transition-triggered buffers (Figures 6–7).
    pub fn pooled_transition_counts(&self) -> EventCounts {
        let mut acc = EventCounts::empty(self.config.machine.n_ces);
        for session in &self.transitions {
            for b in session {
                acc.merge(&b.counts);
            }
        }
        acc
    }

    /// Pooled counts over all all-active-triggered buffers.
    pub fn pooled_triggered_counts(&self) -> EventCounts {
        let mut acc = EventCounts::empty(self.config.machine.n_ces);
        for session in &self.triggered {
            for b in session {
                acc.merge(&b.counts);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> StudyConfig {
        StudyConfig {
            n_random: 2,
            session_hours: vec![0.12, 0.12],
            n_triggered: 1,
            captures_per_triggered: 2,
            n_transition: 1,
            captures_per_transition: 2,
            mix: WorkloadMix::all_concurrent(),
            ..StudyConfig::paper()
        }
    }

    #[test]
    fn study_runs_all_session_types() {
        let s = Study::run(mini());
        assert_eq!(s.random_sessions.len(), 2);
        assert_eq!(s.triggered.len(), 1);
        assert_eq!(s.transitions.len(), 1);
        assert!(s.pooled_counts().records > 0);
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let mut cfg = mini();
        cfg.parallel = true;
        let par = Study::run(cfg.clone());
        cfg.parallel = false;
        let ser = Study::run(cfg);
        assert_eq!(par.random_sessions, ser.random_sessions);
        assert_eq!(par.triggered, ser.triggered);
        assert_eq!(par.transitions, ser.transitions);
    }

    #[test]
    fn parallel_schedules_never_leak_into_results() {
        // Work-stealing makes task completion order nondeterministic;
        // results must not depend on it. Repeated parallel runs must agree
        // with each other and with the serial reference — here under the
        // production mix, which also exercises the trigger-timeout path.
        let mut cfg = mini();
        cfg.mix = WorkloadMix::csrd_production();
        cfg.parallel = true;
        let first = Study::run(cfg.clone());
        for _ in 0..2 {
            assert_eq!(
                first,
                Study::run(cfg.clone()),
                "parallel run must be reproducible"
            );
        }
        cfg.parallel = false;
        let serial = Study::run(cfg);
        assert_eq!(first.random_sessions, serial.random_sessions);
        assert_eq!(first.triggered, serial.triggered);
        assert_eq!(first.transitions, serial.transitions);
    }

    #[test]
    fn pooling_conserves_records() {
        let s = Study::run(mini());
        let pooled = s.pooled_counts();
        let by_session: u64 = s
            .random_sessions
            .iter()
            .map(|r| r.pooled_counts().records)
            .sum();
        assert_eq!(pooled.records, by_session);
        assert_eq!(s.pooled_num().iter().sum::<u64>(), pooled.records);
    }
}
