//! The complete study.
//!
//! § 3.5: nine random-sampling sessions on seven midweek days, ten
//! all-active-triggered sessions, and five transition-triggered sessions.
//! Sessions are independent measurements (different days, different
//! seeds), so the study runs them in parallel with scoped threads — the
//! results are bit-identical to a serial run.

use crate::experiment::{
    run_random_session_observed, run_transition_session_observed, run_triggered_session_observed,
    Capture, SessionConfig, SessionResult,
};
use crate::observability::{SessionObservability, StudyObservability};
use crate::sample::Sample;
use fx8_monitor::EventCounts;
use fx8_sim::audit::{AuditReport, Violation};
use fx8_sim::{ConfigError, MachineConfig};
use fx8_stats::measures::ConcurrencyMeasures;
use fx8_workload::WorkloadMix;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Session length used when [`StudyConfig::session_hours`] is empty: the
/// paper's typical session ("each session lasted between four and eight
/// hours"; six is the study's midpoint and modal length).
pub const DEFAULT_SESSION_HOURS: f64 = 6.0;

/// Configuration of the whole study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Machine configuration shared by all sessions.
    pub machine: MachineConfig,
    /// Workload mix shared by all sessions.
    pub mix: WorkloadMix,
    /// Number of random-sampling sessions (9 in the study).
    pub n_random: usize,
    /// Random-session lengths in hours, cycled across sessions
    /// ("each session lasted between four and eight hours").
    pub session_hours: Vec<f64>,
    /// Number of all-active-triggered sessions (10 in the study).
    pub n_triggered: usize,
    /// Buffers captured per triggered session.
    pub captures_per_triggered: usize,
    /// Number of transition-triggered sessions (5 in the study).
    pub n_transition: usize,
    /// Buffers captured per transition session.
    pub captures_per_transition: usize,
    /// Base RNG seed; session `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Run sessions on parallel threads.
    pub parallel: bool,
}

impl StudyConfig {
    /// The study at paper scale.
    pub fn paper() -> Self {
        StudyConfig {
            machine: MachineConfig::fx8(),
            mix: WorkloadMix::csrd_production(),
            n_random: 9,
            session_hours: vec![4.0, 5.0, 6.0, 8.0, 4.5, 7.0, 5.5, 6.5, 6.0],
            n_triggered: 10,
            captures_per_triggered: 40,
            n_transition: 5,
            captures_per_transition: 40,
            base_seed: 1987,
            parallel: true,
        }
    }

    /// A scaled-down study for tests and examples (minutes, not hours).
    pub fn quick() -> Self {
        StudyConfig {
            n_random: 3,
            session_hours: vec![0.35, 0.35, 0.35],
            n_triggered: 2,
            captures_per_triggered: 6,
            n_transition: 2,
            captures_per_transition: 6,
            ..StudyConfig::paper()
        }
    }

    /// Length of random session `i`: the configured hours cycled across
    /// sessions, or [`DEFAULT_SESSION_HOURS`] when none were given. An
    /// empty `session_hours` used to panic in [`Study::run`] with an
    /// index-out-of-bounds on `session_hours[0]`.
    pub fn hours_for_session(&self, i: usize) -> f64 {
        self.session_hours
            .get(i % self.session_hours.len().max(1))
            .copied()
            .unwrap_or(DEFAULT_SESSION_HOURS)
    }

    /// Reject configurations the study cannot run: every session length
    /// must be a finite non-negative number of hours, and the per-session
    /// configuration they produce must itself validate.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (i, &h) in self.session_hours.iter().enumerate() {
            if !h.is_finite() || h < 0.0 {
                return Err(ConfigError::out_of_range(
                    "session_hours",
                    format!("{h} (index {i})"),
                    "expected a finite non-negative number of hours",
                ));
            }
        }
        self.session_cfg(0, DEFAULT_SESSION_HOURS).validate()
    }

    /// Start a builder seeded with the paper-scale configuration.
    pub fn builder() -> StudyConfigBuilder {
        StudyConfigBuilder::paper()
    }

    fn session_cfg(&self, seed_offset: u64, hours: f64) -> SessionConfig {
        SessionConfig {
            machine: self.machine.clone(),
            mix: self.mix.clone(),
            hours,
            ..SessionConfig::paper(self.base_seed + seed_offset)
        }
    }
}

/// Builder for [`StudyConfig`].
///
/// Starts from a preset ([`StudyConfigBuilder::paper`] or
/// [`StudyConfigBuilder::quick`]), overrides individual fields, and runs
/// the full validation chain in [`StudyConfigBuilder::build`], returning
/// [`ConfigError`] instead of panicking later inside the session runners.
#[derive(Debug, Clone)]
pub struct StudyConfigBuilder {
    cfg: StudyConfig,
}

macro_rules! study_builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, v: $ty) -> Self {
                self.cfg.$name = v;
                self
            }
        )*
    };
}

impl StudyConfigBuilder {
    /// Start from the paper-scale study ([`StudyConfig::paper`]).
    pub fn paper() -> Self {
        StudyConfigBuilder {
            cfg: StudyConfig::paper(),
        }
    }

    /// Start from the scaled-down test study ([`StudyConfig::quick`]).
    pub fn quick() -> Self {
        StudyConfigBuilder {
            cfg: StudyConfig::quick(),
        }
    }

    /// Start from an existing configuration.
    pub fn from_config(cfg: StudyConfig) -> Self {
        StudyConfigBuilder { cfg }
    }

    study_builder_setters! {
        /// Machine configuration shared by all sessions.
        machine: MachineConfig,
        /// Workload mix shared by all sessions.
        mix: WorkloadMix,
        /// Number of random-sampling sessions.
        n_random: usize,
        /// Random-session lengths in hours, cycled across sessions.
        session_hours: Vec<f64>,
        /// Number of all-active-triggered sessions.
        n_triggered: usize,
        /// Buffers captured per triggered session.
        captures_per_triggered: usize,
        /// Number of transition-triggered sessions.
        n_transition: usize,
        /// Buffers captured per transition session.
        captures_per_transition: usize,
        /// Base RNG seed; session `i` uses `base_seed + i`.
        base_seed: u64,
        /// Run sessions on parallel threads.
        parallel: bool,
    }

    /// Set the trace knobs on the shared machine configuration (the
    /// common case for observability runs: everything else stays preset).
    pub fn trace(mut self, trace: fx8_sim::TraceConfig) -> Self {
        self.cfg.machine.trace = trace;
        self
    }

    /// Validate and return the finished configuration.
    pub fn build(self) -> Result<StudyConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// The study's complete data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Study {
    /// The configuration that produced it.
    pub config: StudyConfig,
    /// Random-sampling sessions, in session order.
    pub random_sessions: Vec<SessionResult>,
    /// Per-buffer captures of the all-active-triggered sessions.
    pub triggered: Vec<Vec<Capture>>,
    /// Per-buffer captures of the transition-triggered sessions.
    pub transitions: Vec<Vec<Capture>>,
    /// Audit report of each all-active-triggered session, in session order
    /// (empty and clean unless the `audit` feature is enabled).
    pub triggered_audits: Vec<AuditReport>,
    /// Audit report of each transition-triggered session, in session order.
    pub transition_audits: Vec<AuditReport>,
}

impl Study {
    /// Run the whole study.
    pub fn run(config: StudyConfig) -> Study {
        Study::run_observed(config).0
    }

    /// Run the whole study, also returning its observability: per-session
    /// trace metrics/events and wall-clock self-profiling. The returned
    /// [`Study`] is bit-identical to [`Study::run`]'s — observation never
    /// steers, and wall time lives only in the second tuple element, so
    /// the determinism suite keeps comparing studies whole.
    pub fn run_observed(config: StudyConfig) -> (Study, StudyObservability) {
        let study_started = std::time::Instant::now();
        enum Task {
            Random(usize, SessionConfig),
            Triggered(usize, SessionConfig, usize),
            Transition(usize, SessionConfig, usize),
        }
        enum Out {
            Random(usize, SessionResult, SessionObservability),
            Triggered(usize, Vec<Capture>, AuditReport, SessionObservability),
            Transition(usize, Vec<Capture>, AuditReport, SessionObservability),
        }
        let mut tasks = Vec::new();
        for i in 0..config.n_random {
            let hours = config.hours_for_session(i);
            tasks.push(Task::Random(i, config.session_cfg(i as u64, hours)));
        }
        for i in 0..config.n_triggered {
            let cfg = config.session_cfg(1000 + i as u64, 1.0);
            tasks.push(Task::Triggered(i, cfg, config.captures_per_triggered));
        }
        for i in 0..config.n_transition {
            let cfg = config.session_cfg(2000 + i as u64, 1.0);
            tasks.push(Task::Transition(i, cfg, config.captures_per_transition));
        }

        let run_task = |t: &Task| -> Out {
            match t {
                Task::Random(i, cfg) => {
                    let (r, obs) = run_random_session_observed(cfg, *i);
                    Out::Random(*i, r, obs)
                }
                Task::Triggered(i, cfg, n) => {
                    let (caps, audit, obs) = run_triggered_session_observed(cfg, *i, *n);
                    Out::Triggered(*i, caps, audit, obs)
                }
                Task::Transition(i, cfg, n) => {
                    let (caps, audit, obs) = run_transition_session_observed(cfg, *i, *n);
                    Out::Transition(*i, caps, audit, obs)
                }
            }
        };

        // Estimated session cost, for longest-task-first scheduling. Random
        // sessions simulate one 512-record buffer per snapshot; triggered
        // and transition captures pay an extra trigger-seek on top of each
        // buffer (transitions seek much longer for a falling edge). Only
        // wall time depends on this estimate — results are keyed by task
        // index and each task owns its seeds, so order never changes output.
        let estimated_buffers = |t: &Task| -> f64 {
            match t {
                Task::Random(_, cfg) => {
                    let samples = (cfg.hours * 3600.0 / cfg.sample_interval_s).max(1.0);
                    samples * cfg.snapshots_per_sample as f64
                }
                Task::Triggered(_, _, n) => 2.0 * *n as f64,
                Task::Transition(_, _, n) => 4.0 * *n as f64,
            }
        };

        let outputs: Vec<Out> = if config.parallel {
            // Work queue: a pool sized to the host pulls the heaviest
            // remaining session first, so total wall time is bounded by the
            // single heaviest session instead of by thread oversubscription
            // (the old code spawned one thread per session).
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            order.sort_by(|&a, &b| {
                estimated_buffers(&tasks[b])
                    .total_cmp(&estimated_buffers(&tasks[a]))
                    .then(a.cmp(&b))
            });
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<Out>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
            let workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(tasks.len().max(1));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = order.get(k) else { break };
                        let out = run_task(&tasks[idx]);
                        *slots[idx].lock().expect("result slot poisoned") = Some(out);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("result slot poisoned")
                        .expect("every queued session ran")
                })
                .collect()
        } else {
            tasks.iter().map(run_task).collect()
        };

        let mut random_sessions = vec![None; config.n_random];
        let mut triggered = vec![Vec::new(); config.n_triggered];
        let mut transitions = vec![Vec::new(); config.n_transition];
        let mut triggered_audits = vec![AuditReport::default(); config.n_triggered];
        let mut transition_audits = vec![AuditReport::default(); config.n_transition];
        // `outputs` is in task order (random, then triggered, then
        // transition), which is exactly the session order the
        // observability report documents.
        let mut session_obs = Vec::with_capacity(outputs.len());
        for out in outputs {
            match out {
                Out::Random(i, r, obs) => {
                    random_sessions[i] = Some(r);
                    session_obs.push(obs);
                }
                Out::Triggered(i, b, a, obs) => {
                    triggered[i] = b;
                    triggered_audits[i] = a;
                    session_obs.push(obs);
                }
                Out::Transition(i, b, a, obs) => {
                    transitions[i] = b;
                    transition_audits[i] = a;
                    session_obs.push(obs);
                }
            }
        }
        let study = Study {
            config,
            random_sessions: random_sessions
                .into_iter()
                .map(|r| r.expect("every random session ran"))
                .collect(),
            triggered,
            transitions,
            triggered_audits,
            transition_audits,
        };
        let observability = StudyObservability {
            sessions: session_obs,
            study_wall_s: study_started.elapsed().as_secs_f64(),
        };
        (study, observability)
    }

    /// Every sample of every random session, session order then time order.
    pub fn all_samples(&self) -> Vec<&Sample> {
        self.random_sessions
            .iter()
            .flat_map(|s| s.samples.iter())
            .collect()
    }

    /// Pooled `num[j]` distribution over all random sessions (Figure 3).
    /// Sized to the widest session so no high-concurrency bin is silently
    /// truncated (the old bounds check dropped records beyond
    /// `machine.n_ces` instead of widening the histogram).
    pub fn pooled_num(&self) -> Vec<u64> {
        let per: Vec<Vec<u64>> = self
            .random_sessions
            .iter()
            .map(|s| s.pooled_num())
            .collect();
        let width = per
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(self.config.machine.n_ces + 1);
        let mut num = vec![0u64; width];
        for p in &per {
            for (j, &k) in p.iter().enumerate() {
                num[j] += k;
            }
        }
        num
    }

    /// Pooled event counts over all random sessions (Table 2).
    pub fn pooled_counts(&self) -> EventCounts {
        let mut acc = EventCounts::empty(self.config.machine.n_ces);
        for s in &self.random_sessions {
            acc.merge(&s.pooled_counts());
        }
        acc
    }

    /// Overall concurrency measures (Table 2).
    pub fn overall_measures(&self) -> ConcurrencyMeasures {
        ConcurrencyMeasures::from_counts(&self.pooled_num())
    }

    /// Pooled counts over all transition-triggered buffers (Figures 6–7).
    pub fn pooled_transition_counts(&self) -> EventCounts {
        let mut acc = EventCounts::empty(self.config.machine.n_ces);
        for session in &self.transitions {
            for b in session {
                acc.merge(&b.counts);
            }
        }
        acc
    }

    /// Pooled counts over all all-active-triggered buffers.
    pub fn pooled_triggered_counts(&self) -> EventCounts {
        let mut acc = EventCounts::empty(self.config.machine.n_ces);
        for session in &self.triggered {
            for b in session {
                acc.merge(&b.counts);
            }
        }
        acc
    }

    /// Pool every session's audit report into one study-wide summary.
    pub fn audit_report(&self) -> StudyAuditReport {
        let mut out = StudyAuditReport::default();
        for (i, s) in self.random_sessions.iter().enumerate() {
            out.add_session(format!("random {i}"), &s.audit);
        }
        for (i, a) in self.triggered_audits.iter().enumerate() {
            out.add_session(format!("triggered {i}"), a);
        }
        for (i, a) in self.transition_audits.iter().enumerate() {
            out.add_session(format!("transition {i}"), a);
        }
        out
    }
}

/// One session's slice of the study-wide audit summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionAudit {
    /// Which session the report came from ("random 3", "triggered 0", ...).
    pub label: String,
    /// Cycles the per-cycle auditor checked in that session.
    pub checked_cycles: u64,
    /// The violations it recorded (capped per session; see
    /// [`fx8_sim::audit::MAX_RECORDED_VIOLATIONS`]).
    pub violations: Vec<Violation>,
}

/// All sessions' audit reports pooled, with a text rendering for the
/// `reproduce --audit` command line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StudyAuditReport {
    /// Per-session slices, in random/triggered/transition order.
    pub sessions: Vec<SessionAudit>,
    /// Total cycles checked across every session.
    pub checked_cycles: u64,
    /// Total violations recorded (excluding those dropped past the cap).
    pub violations: u64,
    /// Violations dropped once per-session caps were hit.
    pub dropped_violations: u64,
}

impl StudyAuditReport {
    fn add_session(&mut self, label: String, rep: &AuditReport) {
        self.checked_cycles += rep.checked_cycles;
        self.violations += rep.violations.len() as u64;
        self.dropped_violations += rep.dropped_violations;
        self.sessions.push(SessionAudit {
            label,
            checked_cycles: rep.checked_cycles,
            violations: rep.violations.clone(),
        });
    }

    /// No violations anywhere (including dropped ones)?
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Recorded plus dropped violations.
    pub fn total_violations(&self) -> u64 {
        self.violations + self.dropped_violations
    }

    /// Human-readable summary, one line per violation.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "audit: {} cycles checked across {} sessions",
            self.checked_cycles,
            self.sessions.len()
        );
        if self.is_clean() {
            let _ = writeln!(s, "audit: clean — zero invariant violations");
        } else {
            let _ = writeln!(
                s,
                "audit: {} violations ({} dropped past the per-session cap)",
                self.total_violations(),
                self.dropped_violations
            );
            for sess in &self.sessions {
                for v in &sess.violations {
                    let _ = writeln!(s, "  [{}] {v}", sess.label);
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> StudyConfig {
        StudyConfig {
            n_random: 2,
            session_hours: vec![0.12, 0.12],
            n_triggered: 1,
            captures_per_triggered: 2,
            n_transition: 1,
            captures_per_transition: 2,
            mix: WorkloadMix::all_concurrent(),
            ..StudyConfig::paper()
        }
    }

    #[test]
    fn study_runs_all_session_types() {
        let s = Study::run(mini());
        assert_eq!(s.random_sessions.len(), 2);
        assert_eq!(s.triggered.len(), 1);
        assert_eq!(s.transitions.len(), 1);
        assert!(s.pooled_counts().records > 0);
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let mut cfg = mini();
        cfg.parallel = true;
        let par = Study::run(cfg.clone());
        cfg.parallel = false;
        let ser = Study::run(cfg);
        assert_eq!(par.random_sessions, ser.random_sessions);
        assert_eq!(par.triggered, ser.triggered);
        assert_eq!(par.transitions, ser.transitions);
    }

    #[test]
    fn parallel_schedules_never_leak_into_results() {
        // Work-stealing makes task completion order nondeterministic;
        // results must not depend on it. Repeated parallel runs must agree
        // with each other and with the serial reference — here under the
        // production mix, which also exercises the trigger-timeout path.
        let mut cfg = mini();
        cfg.mix = WorkloadMix::csrd_production();
        cfg.parallel = true;
        let first = Study::run(cfg.clone());
        for _ in 0..2 {
            assert_eq!(
                first,
                Study::run(cfg.clone()),
                "parallel run must be reproducible"
            );
        }
        cfg.parallel = false;
        let serial = Study::run(cfg);
        assert_eq!(first.random_sessions, serial.random_sessions);
        assert_eq!(first.triggered, serial.triggered);
        assert_eq!(first.transitions, serial.transitions);
    }

    /// The fast-forward opt-out knob on `MachineConfig` flows through
    /// `StudyConfig.machine` into every session of the study; a full run
    /// with the engine on (the default) must be bit-identical to one with
    /// it off.
    #[test]
    fn fast_forward_on_and_off_studies_are_bit_identical() {
        let mut cfg = mini();
        cfg.mix = WorkloadMix::csrd_production();
        assert!(cfg.machine.fast_forward, "fast-forward is on by default");
        let on = Study::run(cfg.clone());
        cfg.machine.fast_forward = false;
        let off = Study::run(cfg);
        assert_eq!(on.random_sessions, off.random_sessions);
        assert_eq!(on.triggered, off.triggered);
        assert_eq!(on.transitions, off.transitions);
    }

    #[test]
    fn pooling_conserves_records() {
        let s = Study::run(mini());
        let pooled = s.pooled_counts();
        let by_session: u64 = s
            .random_sessions
            .iter()
            .map(|r| r.pooled_counts().records)
            .sum();
        assert_eq!(pooled.records, by_session);
        assert_eq!(s.pooled_num().iter().sum::<u64>(), pooled.records);
    }

    #[test]
    fn empty_session_hours_falls_back_to_paper_default() {
        // Regression: Study::run indexed session_hours[0] unconditionally,
        // so an empty vector panicked before the first session even ran.
        // Use the tiny machine and skip triggered/transition sessions to
        // keep the fallback 6-hour random session affordable.
        let cfg = StudyConfig {
            machine: MachineConfig::tiny(),
            n_random: 1,
            session_hours: Vec::new(),
            n_triggered: 0,
            n_transition: 0,
            parallel: false,
            ..StudyConfig::paper()
        };
        assert!((cfg.hours_for_session(0) - DEFAULT_SESSION_HOURS).abs() < 1e-12);
        assert!(cfg.validate().is_ok(), "empty session_hours is legal");
        let s = Study::run(cfg);
        assert_eq!(s.random_sessions.len(), 1);
        assert!(!s.random_sessions[0].samples.is_empty());
    }

    #[test]
    fn study_config_validate_rejects_bad_hours() {
        let mut cfg = mini();
        cfg.session_hours = vec![4.0, f64::NAN];
        assert!(cfg.validate().is_err());
        cfg.session_hours = vec![-1.0];
        assert!(cfg.validate().is_err());
        assert!(StudyConfig::paper().validate().is_ok());
        assert!(StudyConfig::quick().validate().is_ok());
    }

    #[test]
    fn observed_run_is_bit_identical_and_labeled() {
        let base = mini();
        let traced = StudyConfigBuilder::from_config(base.clone())
            .trace(fx8_sim::TraceConfig::full())
            .build()
            .expect("mini study config validates");
        let (study, obs) = Study::run_observed(traced);
        // Tracing never steers: the study equals an untraced plain run.
        let plain = Study::run(base);
        assert_eq!(study.random_sessions, plain.random_sessions);
        assert_eq!(study.triggered, plain.triggered);
        assert_eq!(study.transitions, plain.transitions);
        // One observability slice per session, in documented order.
        let labels: Vec<&str> = obs.sessions.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            ["random 0", "random 1", "triggered 0", "transition 0"]
        );
        let eng = obs.pooled_engine();
        assert!(eng.total > 0, "sessions stepped cycles");
        assert!(eng.consistent(), "engines partition the timeline");
        for s in &obs.sessions {
            assert!(s.metrics.cycles.consistent(), "{}: engine split", s.label);
            assert!(s.wall_s >= 0.0);
        }
        assert!(
            obs.sessions.iter().any(|s| !s.events.is_empty()),
            "the event trace captured something"
        );
        let json = obs.chrome_trace(study.config.machine.ns_per_cycle);
        assert!(json.contains("random 0"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn study_builder_overrides_and_validates() {
        let cfg = StudyConfig::builder()
            .n_random(1)
            .session_hours(vec![0.1])
            .n_triggered(0)
            .n_transition(0)
            .base_seed(7)
            .parallel(false)
            .build()
            .expect("overridden paper config stays valid");
        assert_eq!(cfg.n_random, 1);
        assert_eq!(cfg.base_seed, 7);
        assert_eq!(cfg.machine, MachineConfig::fx8(), "presets untouched");

        let err = StudyConfigBuilder::quick()
            .session_hours(vec![f64::NAN])
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "session_hours");
    }

    #[test]
    fn audit_report_pools_every_session() {
        let s = Study::run(mini());
        let rep = s.audit_report();
        assert_eq!(rep.sessions.len(), 2 + 1 + 1);
        // Without the audit feature the reports are empty-but-clean; with
        // it they must be clean too (the dedicated audit suite asserts the
        // stronger property on larger runs).
        assert!(rep.is_clean(), "{}", rep.render());
        if cfg!(feature = "audit") {
            assert!(rep.checked_cycles > 0, "auditor saw every stepped cycle");
        } else {
            assert_eq!(rep.checked_cycles, 0);
        }
        assert!(rep.render().contains("clean"));
    }
}
