//! The complete study.
//!
//! § 3.5: nine random-sampling sessions on seven midweek days, ten
//! all-active-triggered sessions, and five transition-triggered sessions.
//! Sessions are independent measurements (different days, different
//! seeds), so the study runs them in parallel with scoped threads — the
//! results are bit-identical to a serial run.

use crate::cache::{CacheStats, CachedSession, SessionCache, SessionKind};
use crate::executor;
use crate::experiment::{
    run_random_session_observed, run_transition_session_observed, run_triggered_session_observed,
    Capture, SessionConfig, SessionResult,
};
use crate::observability::{SessionObservability, StudyObservability};
use crate::sample::Sample;
use fx8_monitor::EventCounts;
use fx8_sim::audit::{AuditReport, Violation};
use fx8_sim::{ConfigError, MachineConfig};
use fx8_stats::measures::ConcurrencyMeasures;
use fx8_workload::WorkloadMix;
use serde::{Deserialize, Serialize};

/// Session length used when [`StudyConfig::session_hours`] is empty: the
/// paper's typical session ("each session lasted between four and eight
/// hours"; six is the study's midpoint and modal length).
pub const DEFAULT_SESSION_HOURS: f64 = 6.0;

/// Configuration of the whole study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Machine configuration shared by all sessions.
    pub machine: MachineConfig,
    /// Workload mix shared by all sessions.
    pub mix: WorkloadMix,
    /// Number of random-sampling sessions (9 in the study).
    pub n_random: usize,
    /// Random-session lengths in hours, cycled across sessions
    /// ("each session lasted between four and eight hours").
    pub session_hours: Vec<f64>,
    /// Number of all-active-triggered sessions (10 in the study).
    pub n_triggered: usize,
    /// Buffers captured per triggered session.
    pub captures_per_triggered: usize,
    /// Number of transition-triggered sessions (5 in the study).
    pub n_transition: usize,
    /// Buffers captured per transition session.
    pub captures_per_transition: usize,
    /// Base RNG seed; session `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Run sessions on parallel threads.
    pub parallel: bool,
}

impl StudyConfig {
    /// The study at paper scale.
    pub fn paper() -> Self {
        StudyConfig {
            machine: MachineConfig::fx8(),
            mix: WorkloadMix::csrd_production(),
            n_random: 9,
            session_hours: vec![4.0, 5.0, 6.0, 8.0, 4.5, 7.0, 5.5, 6.5, 6.0],
            n_triggered: 10,
            captures_per_triggered: 40,
            n_transition: 5,
            captures_per_transition: 40,
            base_seed: 1987,
            parallel: true,
        }
    }

    /// A scaled-down study for tests and examples (minutes, not hours).
    pub fn quick() -> Self {
        StudyConfig {
            n_random: 3,
            session_hours: vec![0.35, 0.35, 0.35],
            n_triggered: 2,
            captures_per_triggered: 6,
            n_transition: 2,
            captures_per_transition: 6,
            ..StudyConfig::paper()
        }
    }

    /// Length of random session `i`: the configured hours cycled across
    /// sessions, or [`DEFAULT_SESSION_HOURS`] when none were given. An
    /// empty `session_hours` used to panic in [`Study::run`] with an
    /// index-out-of-bounds on `session_hours[0]`.
    pub fn hours_for_session(&self, i: usize) -> f64 {
        self.session_hours
            .get(i % self.session_hours.len().max(1))
            .copied()
            .unwrap_or(DEFAULT_SESSION_HOURS)
    }

    /// Reject configurations the study cannot run: every session length
    /// must be a finite non-negative number of hours, and the per-session
    /// configuration they produce must itself validate.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (i, &h) in self.session_hours.iter().enumerate() {
            if !h.is_finite() || h < 0.0 {
                return Err(ConfigError::out_of_range(
                    "session_hours",
                    format!("{h} (index {i})"),
                    "expected a finite non-negative number of hours",
                ));
            }
        }
        self.session_cfg(0, DEFAULT_SESSION_HOURS).validate()
    }

    /// Start a builder seeded with the paper-scale configuration.
    pub fn builder() -> StudyConfigBuilder {
        StudyConfigBuilder::paper()
    }

    fn session_cfg(&self, seed_offset: u64, hours: f64) -> SessionConfig {
        SessionConfig {
            machine: self.machine.clone(),
            mix: self.mix.clone(),
            hours,
            ..SessionConfig::paper(self.base_seed + seed_offset)
        }
    }

    /// The study's full session plan, in result order: random sessions
    /// first, then triggered, then transition. This is the unit the
    /// executor schedules and the cache keys.
    pub(crate) fn session_tasks(&self) -> Vec<SessionTask> {
        let mut tasks = Vec::new();
        for i in 0..self.n_random {
            let hours = self.hours_for_session(i);
            tasks.push(SessionTask {
                kind: SessionKind::Random,
                idx: i,
                cfg: self.session_cfg(i as u64, hours),
                captures: 0,
            });
        }
        for i in 0..self.n_triggered {
            tasks.push(SessionTask {
                kind: SessionKind::Triggered,
                idx: i,
                cfg: self.session_cfg(1000 + i as u64, 1.0),
                captures: self.captures_per_triggered,
            });
        }
        for i in 0..self.n_transition {
            tasks.push(SessionTask {
                kind: SessionKind::Transition,
                idx: i,
                cfg: self.session_cfg(2000 + i as u64, 1.0),
                captures: self.captures_per_transition,
            });
        }
        tasks
    }
}

/// One schedulable session of a study: the protocol, the session's index
/// within that protocol, its full config, and (for triggered kinds) the
/// capture budget. The cache key is derived from exactly these fields.
pub(crate) struct SessionTask {
    pub(crate) kind: SessionKind,
    pub(crate) idx: usize,
    pub(crate) cfg: SessionConfig,
    pub(crate) captures: usize,
}

/// One finished session, cache-transparent: the study assembles these
/// identically whether they were computed or loaded.
pub(crate) enum SessionOut {
    Random {
        idx: usize,
        result: SessionResult,
        obs: SessionObservability,
    },
    Triggered {
        idx: usize,
        captures: Vec<Capture>,
        audit: AuditReport,
        obs: SessionObservability,
    },
    Transition {
        idx: usize,
        captures: Vec<Capture>,
        audit: AuditReport,
        obs: SessionObservability,
    },
}

impl SessionTask {
    /// Estimated session cost, for longest-task-first scheduling. Random
    /// sessions simulate one 512-record buffer per snapshot; triggered
    /// and transition captures pay an extra trigger-seek on top of each
    /// buffer (transitions seek much longer for a falling edge). Only
    /// wall time depends on this estimate — results are keyed by task
    /// index and each task owns its seeds, so order never changes output.
    pub(crate) fn weight(&self) -> f64 {
        match self.kind {
            SessionKind::Random => {
                let samples = (self.cfg.hours * 3600.0 / self.cfg.sample_interval_s).max(1.0);
                samples * self.cfg.snapshots_per_sample as f64
            }
            SessionKind::Triggered => 2.0 * self.captures as f64,
            SessionKind::Transition => 4.0 * self.captures as f64,
        }
    }

    fn label(&self) -> String {
        format!(
            "{} {}",
            match self.kind {
                SessionKind::Random => "random",
                SessionKind::Triggered => "triggered",
                SessionKind::Transition => "transition",
            },
            self.idx
        )
    }

    /// Run the session, consulting the cache first when one is given. A
    /// hit returns the memoized output bit-identical to a fresh run,
    /// under an observability slice flagged `cache_hit` (empty metrics:
    /// no cycles were stepped). A miss computes, stores, and returns.
    pub(crate) fn run(&self, cache: Option<&SessionCache>) -> SessionOut {
        let Some(cache) = cache else {
            return self.compute();
        };
        let started = std::time::Instant::now();
        let key = cache.key(self.kind, &self.cfg, self.idx, self.captures);
        if let Some(hit) = cache.lookup(&key) {
            if let Some(out) = self.unpack_cached(hit, started) {
                return out;
            }
            // Kind mismatch under an identical key can only mean a
            // fingerprint collision or a tampered store; recompute.
        }
        let out = self.compute();
        cache.store(&key, &out.to_cached());
        out
    }

    fn compute(&self) -> SessionOut {
        match self.kind {
            SessionKind::Random => {
                let (result, obs) = run_random_session_observed(&self.cfg, self.idx);
                SessionOut::Random {
                    idx: self.idx,
                    result,
                    obs,
                }
            }
            SessionKind::Triggered => {
                let (captures, audit, obs) =
                    run_triggered_session_observed(&self.cfg, self.idx, self.captures);
                SessionOut::Triggered {
                    idx: self.idx,
                    captures,
                    audit,
                    obs,
                }
            }
            SessionKind::Transition => {
                let (captures, audit, obs) =
                    run_transition_session_observed(&self.cfg, self.idx, self.captures);
                SessionOut::Transition {
                    idx: self.idx,
                    captures,
                    audit,
                    obs,
                }
            }
        }
    }

    fn unpack_cached(&self, hit: CachedSession, started: std::time::Instant) -> Option<SessionOut> {
        let obs = SessionObservability::cached(self.label(), started);
        match (self.kind, hit) {
            (SessionKind::Random, CachedSession::Random { result }) => Some(SessionOut::Random {
                idx: self.idx,
                result,
                obs,
            }),
            (SessionKind::Triggered, CachedSession::Captures { captures, audit }) => {
                Some(SessionOut::Triggered {
                    idx: self.idx,
                    captures,
                    audit,
                    obs,
                })
            }
            (SessionKind::Transition, CachedSession::Captures { captures, audit }) => {
                Some(SessionOut::Transition {
                    idx: self.idx,
                    captures,
                    audit,
                    obs,
                })
            }
            _ => None,
        }
    }
}

impl SessionOut {
    fn to_cached(&self) -> CachedSession {
        match self {
            SessionOut::Random { result, .. } => CachedSession::Random {
                result: result.clone(),
            },
            SessionOut::Triggered {
                captures, audit, ..
            }
            | SessionOut::Transition {
                captures, audit, ..
            } => CachedSession::Captures {
                captures: captures.clone(),
                audit: audit.clone(),
            },
        }
    }
}

/// Builder for [`StudyConfig`].
///
/// Starts from a preset ([`StudyConfigBuilder::paper`] or
/// [`StudyConfigBuilder::quick`]), overrides individual fields, and runs
/// the full validation chain in [`StudyConfigBuilder::build`], returning
/// [`ConfigError`] instead of panicking later inside the session runners.
#[derive(Debug, Clone)]
pub struct StudyConfigBuilder {
    cfg: StudyConfig,
}

macro_rules! study_builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, v: $ty) -> Self {
                self.cfg.$name = v;
                self
            }
        )*
    };
}

impl StudyConfigBuilder {
    /// Start from the paper-scale study ([`StudyConfig::paper`]).
    pub fn paper() -> Self {
        StudyConfigBuilder {
            cfg: StudyConfig::paper(),
        }
    }

    /// Start from the scaled-down test study ([`StudyConfig::quick`]).
    pub fn quick() -> Self {
        StudyConfigBuilder {
            cfg: StudyConfig::quick(),
        }
    }

    /// Start from an existing configuration.
    pub fn from_config(cfg: StudyConfig) -> Self {
        StudyConfigBuilder { cfg }
    }

    study_builder_setters! {
        /// Machine configuration shared by all sessions.
        machine: MachineConfig,
        /// Workload mix shared by all sessions.
        mix: WorkloadMix,
        /// Number of random-sampling sessions.
        n_random: usize,
        /// Random-session lengths in hours, cycled across sessions.
        session_hours: Vec<f64>,
        /// Number of all-active-triggered sessions.
        n_triggered: usize,
        /// Buffers captured per triggered session.
        captures_per_triggered: usize,
        /// Number of transition-triggered sessions.
        n_transition: usize,
        /// Buffers captured per transition session.
        captures_per_transition: usize,
        /// Base RNG seed; session `i` uses `base_seed + i`.
        base_seed: u64,
        /// Run sessions on parallel threads.
        parallel: bool,
    }

    /// Set the trace knobs on the shared machine configuration (the
    /// common case for observability runs: everything else stays preset).
    pub fn trace(mut self, trace: fx8_sim::TraceConfig) -> Self {
        self.cfg.machine.trace = trace;
        self
    }

    /// Validate and return the finished configuration.
    pub fn build(self) -> Result<StudyConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// The study's complete data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Study {
    /// The configuration that produced it.
    pub config: StudyConfig,
    /// Random-sampling sessions, in session order.
    pub random_sessions: Vec<SessionResult>,
    /// Per-buffer captures of the all-active-triggered sessions.
    pub triggered: Vec<Vec<Capture>>,
    /// Per-buffer captures of the transition-triggered sessions.
    pub transitions: Vec<Vec<Capture>>,
    /// Audit report of each all-active-triggered session, in session order
    /// (empty and clean unless the `audit` feature is enabled).
    pub triggered_audits: Vec<AuditReport>,
    /// Audit report of each transition-triggered session, in session order.
    pub transition_audits: Vec<AuditReport>,
}

impl Study {
    /// Run the whole study.
    pub fn run(config: StudyConfig) -> Study {
        Study::run_observed(config).0
    }

    /// Run the whole study, also returning its observability: per-session
    /// trace metrics/events and wall-clock self-profiling. The returned
    /// [`Study`] is bit-identical to [`Study::run`]'s — observation never
    /// steers, and wall time lives only in the second tuple element, so
    /// the determinism suite keeps comparing studies whole.
    pub fn run_observed(config: StudyConfig) -> (Study, StudyObservability) {
        Study::run_with_cache(config, None)
    }

    /// [`Study::run_observed`] against a session result cache: each
    /// session consults the cache before stepping a single cycle and
    /// stores its output on completion. Because the simulator is
    /// bit-deterministic, the returned [`Study`] is bit-identical whether
    /// every session hit, missed, or mixed — only wall clock and the
    /// observability's [`CacheStats`] differ.
    pub fn run_cached(config: StudyConfig, cache: &SessionCache) -> (Study, StudyObservability) {
        Study::run_with_cache(config, Some(cache))
    }

    /// The general entry point behind [`Study::run`], [`Study::run_observed`]
    /// and [`Study::run_cached`].
    pub fn run_with_cache(
        config: StudyConfig,
        cache: Option<&SessionCache>,
    ) -> (Study, StudyObservability) {
        let study_started = std::time::Instant::now();
        let tasks = config.session_tasks();
        let before = cache.map(|c| c.stats());
        // Work queue: a pool sized to the host pulls the heaviest
        // remaining session first, so total wall time is bounded by the
        // single heaviest session instead of by thread oversubscription.
        let outputs = executor::run_longest_first(
            &tasks,
            SessionTask::weight,
            |t| t.run(cache),
            config.parallel,
        );
        let (study, session_obs) = Study::assemble(config, outputs);
        let observability = StudyObservability {
            sessions: session_obs,
            study_wall_s: study_started.elapsed().as_secs_f64(),
            cache: match (cache, before) {
                (Some(c), Some(b)) => c.stats().since(&b),
                _ => CacheStats::default(),
            },
        };
        (study, observability)
    }

    /// Assemble finished session outputs (in task order: random, then
    /// triggered, then transition — exactly the session order the
    /// observability report documents) into the study's data set.
    pub(crate) fn assemble(
        config: StudyConfig,
        outputs: Vec<SessionOut>,
    ) -> (Study, Vec<SessionObservability>) {
        let mut random_sessions = vec![None; config.n_random];
        let mut triggered = vec![Vec::new(); config.n_triggered];
        let mut transitions = vec![Vec::new(); config.n_transition];
        let mut triggered_audits = vec![AuditReport::default(); config.n_triggered];
        let mut transition_audits = vec![AuditReport::default(); config.n_transition];
        let mut session_obs = Vec::with_capacity(outputs.len());
        for out in outputs {
            match out {
                SessionOut::Random { idx, result, obs } => {
                    random_sessions[idx] = Some(result);
                    session_obs.push(obs);
                }
                SessionOut::Triggered {
                    idx,
                    captures,
                    audit,
                    obs,
                } => {
                    triggered[idx] = captures;
                    triggered_audits[idx] = audit;
                    session_obs.push(obs);
                }
                SessionOut::Transition {
                    idx,
                    captures,
                    audit,
                    obs,
                } => {
                    transitions[idx] = captures;
                    transition_audits[idx] = audit;
                    session_obs.push(obs);
                }
            }
        }
        let study = Study {
            config,
            random_sessions: random_sessions
                .into_iter()
                .map(|r| r.expect("every random session ran"))
                .collect(),
            triggered,
            transitions,
            triggered_audits,
            transition_audits,
        };
        (study, session_obs)
    }

    /// Every sample of every random session, session order then time order.
    pub fn all_samples(&self) -> Vec<&Sample> {
        self.random_sessions
            .iter()
            .flat_map(|s| s.samples.iter())
            .collect()
    }

    /// Pooled `num[j]` distribution over all random sessions (Figure 3).
    /// Sized to the widest session so no high-concurrency bin is silently
    /// truncated (the old bounds check dropped records beyond
    /// `machine.n_ces` instead of widening the histogram).
    pub fn pooled_num(&self) -> Vec<u64> {
        let per: Vec<Vec<u64>> = self
            .random_sessions
            .iter()
            .map(|s| s.pooled_num())
            .collect();
        let width = per
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(self.config.machine.n_ces + 1);
        let mut num = vec![0u64; width];
        for p in &per {
            for (j, &k) in p.iter().enumerate() {
                num[j] += k;
            }
        }
        num
    }

    /// Pooled event counts over all random sessions (Table 2).
    pub fn pooled_counts(&self) -> EventCounts {
        let mut acc = EventCounts::empty(self.config.machine.n_ces);
        for s in &self.random_sessions {
            acc.merge(&s.pooled_counts());
        }
        acc
    }

    /// Overall concurrency measures (Table 2).
    pub fn overall_measures(&self) -> ConcurrencyMeasures {
        ConcurrencyMeasures::from_counts(&self.pooled_num())
    }

    /// Pooled counts over all transition-triggered buffers (Figures 6–7).
    pub fn pooled_transition_counts(&self) -> EventCounts {
        let mut acc = EventCounts::empty(self.config.machine.n_ces);
        for session in &self.transitions {
            for b in session {
                acc.merge(&b.counts);
            }
        }
        acc
    }

    /// Pooled counts over all all-active-triggered buffers.
    pub fn pooled_triggered_counts(&self) -> EventCounts {
        let mut acc = EventCounts::empty(self.config.machine.n_ces);
        for session in &self.triggered {
            for b in session {
                acc.merge(&b.counts);
            }
        }
        acc
    }

    /// Pool every session's audit report into one study-wide summary.
    pub fn audit_report(&self) -> StudyAuditReport {
        let mut out = StudyAuditReport::default();
        for (i, s) in self.random_sessions.iter().enumerate() {
            out.add_session(format!("random {i}"), &s.audit);
        }
        for (i, a) in self.triggered_audits.iter().enumerate() {
            out.add_session(format!("triggered {i}"), a);
        }
        for (i, a) in self.transition_audits.iter().enumerate() {
            out.add_session(format!("transition {i}"), a);
        }
        out
    }
}

/// One session's slice of the study-wide audit summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionAudit {
    /// Which session the report came from ("random 3", "triggered 0", ...).
    pub label: String,
    /// Cycles the per-cycle auditor checked in that session.
    pub checked_cycles: u64,
    /// The violations it recorded (capped per session; see
    /// [`fx8_sim::audit::MAX_RECORDED_VIOLATIONS`]).
    pub violations: Vec<Violation>,
}

/// All sessions' audit reports pooled, with a text rendering for the
/// `reproduce --audit` command line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StudyAuditReport {
    /// Per-session slices, in random/triggered/transition order.
    pub sessions: Vec<SessionAudit>,
    /// Total cycles checked across every session.
    pub checked_cycles: u64,
    /// Total violations recorded (excluding those dropped past the cap).
    pub violations: u64,
    /// Violations dropped once per-session caps were hit.
    pub dropped_violations: u64,
}

impl StudyAuditReport {
    fn add_session(&mut self, label: String, rep: &AuditReport) {
        self.checked_cycles += rep.checked_cycles;
        self.violations += rep.violations.len() as u64;
        self.dropped_violations += rep.dropped_violations;
        self.sessions.push(SessionAudit {
            label,
            checked_cycles: rep.checked_cycles,
            violations: rep.violations.clone(),
        });
    }

    /// No violations anywhere (including dropped ones)?
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Recorded plus dropped violations.
    pub fn total_violations(&self) -> u64 {
        self.violations + self.dropped_violations
    }

    /// Human-readable summary, one line per violation.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "audit: {} cycles checked across {} sessions",
            self.checked_cycles,
            self.sessions.len()
        );
        if self.is_clean() {
            let _ = writeln!(s, "audit: clean — zero invariant violations");
        } else {
            let _ = writeln!(
                s,
                "audit: {} violations ({} dropped past the per-session cap)",
                self.total_violations(),
                self.dropped_violations
            );
            for sess in &self.sessions {
                for v in &sess.violations {
                    let _ = writeln!(s, "  [{}] {v}", sess.label);
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> StudyConfig {
        StudyConfig {
            n_random: 2,
            session_hours: vec![0.12, 0.12],
            n_triggered: 1,
            captures_per_triggered: 2,
            n_transition: 1,
            captures_per_transition: 2,
            mix: WorkloadMix::all_concurrent(),
            ..StudyConfig::paper()
        }
    }

    #[test]
    fn study_runs_all_session_types() {
        let s = Study::run(mini());
        assert_eq!(s.random_sessions.len(), 2);
        assert_eq!(s.triggered.len(), 1);
        assert_eq!(s.transitions.len(), 1);
        assert!(s.pooled_counts().records > 0);
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let mut cfg = mini();
        cfg.parallel = true;
        let par = Study::run(cfg.clone());
        cfg.parallel = false;
        let ser = Study::run(cfg);
        assert_eq!(par.random_sessions, ser.random_sessions);
        assert_eq!(par.triggered, ser.triggered);
        assert_eq!(par.transitions, ser.transitions);
    }

    #[test]
    fn parallel_schedules_never_leak_into_results() {
        // Work-stealing makes task completion order nondeterministic;
        // results must not depend on it. Repeated parallel runs must agree
        // with each other and with the serial reference — here under the
        // production mix, which also exercises the trigger-timeout path.
        let mut cfg = mini();
        cfg.mix = WorkloadMix::csrd_production();
        cfg.parallel = true;
        let first = Study::run(cfg.clone());
        for _ in 0..2 {
            assert_eq!(
                first,
                Study::run(cfg.clone()),
                "parallel run must be reproducible"
            );
        }
        cfg.parallel = false;
        let serial = Study::run(cfg);
        assert_eq!(first.random_sessions, serial.random_sessions);
        assert_eq!(first.triggered, serial.triggered);
        assert_eq!(first.transitions, serial.transitions);
    }

    /// The fast-forward opt-out knob on `MachineConfig` flows through
    /// `StudyConfig.machine` into every session of the study; a full run
    /// with the engine on (the default) must be bit-identical to one with
    /// it off.
    #[test]
    fn fast_forward_on_and_off_studies_are_bit_identical() {
        let mut cfg = mini();
        cfg.mix = WorkloadMix::csrd_production();
        assert!(cfg.machine.fast_forward, "fast-forward is on by default");
        let on = Study::run(cfg.clone());
        cfg.machine.fast_forward = false;
        let off = Study::run(cfg);
        assert_eq!(on.random_sessions, off.random_sessions);
        assert_eq!(on.triggered, off.triggered);
        assert_eq!(on.transitions, off.transitions);
    }

    #[test]
    fn pooling_conserves_records() {
        let s = Study::run(mini());
        let pooled = s.pooled_counts();
        let by_session: u64 = s
            .random_sessions
            .iter()
            .map(|r| r.pooled_counts().records)
            .sum();
        assert_eq!(pooled.records, by_session);
        assert_eq!(s.pooled_num().iter().sum::<u64>(), pooled.records);
    }

    #[test]
    fn empty_session_hours_falls_back_to_paper_default() {
        // Regression: Study::run indexed session_hours[0] unconditionally,
        // so an empty vector panicked before the first session even ran.
        // Use the tiny machine and skip triggered/transition sessions to
        // keep the fallback 6-hour random session affordable.
        let cfg = StudyConfig {
            machine: MachineConfig::tiny(),
            n_random: 1,
            session_hours: Vec::new(),
            n_triggered: 0,
            n_transition: 0,
            parallel: false,
            ..StudyConfig::paper()
        };
        assert!((cfg.hours_for_session(0) - DEFAULT_SESSION_HOURS).abs() < 1e-12);
        assert!(cfg.validate().is_ok(), "empty session_hours is legal");
        let s = Study::run(cfg);
        assert_eq!(s.random_sessions.len(), 1);
        assert!(!s.random_sessions[0].samples.is_empty());
    }

    #[test]
    fn study_config_validate_rejects_bad_hours() {
        let mut cfg = mini();
        cfg.session_hours = vec![4.0, f64::NAN];
        assert!(cfg.validate().is_err());
        cfg.session_hours = vec![-1.0];
        assert!(cfg.validate().is_err());
        assert!(StudyConfig::paper().validate().is_ok());
        assert!(StudyConfig::quick().validate().is_ok());
    }

    #[test]
    fn observed_run_is_bit_identical_and_labeled() {
        let base = mini();
        let traced = StudyConfigBuilder::from_config(base.clone())
            .trace(fx8_sim::TraceConfig::full())
            .build()
            .expect("mini study config validates");
        let (study, obs) = Study::run_observed(traced);
        // Tracing never steers: the study equals an untraced plain run.
        let plain = Study::run(base);
        assert_eq!(study.random_sessions, plain.random_sessions);
        assert_eq!(study.triggered, plain.triggered);
        assert_eq!(study.transitions, plain.transitions);
        // One observability slice per session, in documented order.
        let labels: Vec<&str> = obs.sessions.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            ["random 0", "random 1", "triggered 0", "transition 0"]
        );
        let eng = obs.pooled_engine();
        assert!(eng.total > 0, "sessions stepped cycles");
        assert!(eng.consistent(), "engines partition the timeline");
        for s in &obs.sessions {
            assert!(s.metrics.cycles.consistent(), "{}: engine split", s.label);
            assert!(s.wall_s >= 0.0);
        }
        assert!(
            obs.sessions.iter().any(|s| !s.events.is_empty()),
            "the event trace captured something"
        );
        let json = obs.chrome_trace(study.config.machine.ns_per_cycle);
        assert!(json.contains("random 0"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn study_builder_overrides_and_validates() {
        let cfg = StudyConfig::builder()
            .n_random(1)
            .session_hours(vec![0.1])
            .n_triggered(0)
            .n_transition(0)
            .base_seed(7)
            .parallel(false)
            .build()
            .expect("overridden paper config stays valid");
        assert_eq!(cfg.n_random, 1);
        assert_eq!(cfg.base_seed, 7);
        assert_eq!(cfg.machine, MachineConfig::fx8(), "presets untouched");

        let err = StudyConfigBuilder::quick()
            .session_hours(vec![f64::NAN])
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "session_hours");
    }

    #[test]
    fn audit_report_pools_every_session() {
        let s = Study::run(mini());
        let rep = s.audit_report();
        assert_eq!(rep.sessions.len(), 2 + 1 + 1);
        // Without the audit feature the reports are empty-but-clean; with
        // it they must be clean too (the dedicated audit suite asserts the
        // stronger property on larger runs).
        assert!(rep.is_clean(), "{}", rep.render());
        if cfg!(feature = "audit") {
            assert!(rep.checked_cycles > 0, "auditor saw every stepped cycle");
        } else {
            assert_eq!(rep.checked_cycles, 0);
        }
        assert!(rep.render().contains("clean"));
    }
}
