//! # fx8-core — the study's methodology
//!
//! Everything above the machine/workload/monitor substrates: the two
//! experiment protocols of § 3.5 (random workload sampling and
//! triggered high-concurrency capture), the full multi-session study, and
//! generators for every table and figure in the thesis's evaluation.
//!
//! * [`sample`] — one five-minute sample: merged snapshot event counts,
//!   kernel counter deltas, and the derived measures (`C_w`, `P_c`,
//!   Missrate, CE Bus Busy, Page Fault Rate);
//! * [`experiment`] — session runners for the three session types;
//! * [`study`] — the complete study (9 random + 10 triggered + 5
//!   transition sessions), run in parallel across sessions;
//! * [`scale`] — the width sweep the paper couldn't run: one study per
//!   cluster width, reduced to C_w/P_c/missrate/bus-utilization curves,
//!   run incrementally against the result cache;
//! * [`cache`] — determinism-backed memoization of session results: an
//!   in-process map over an optional content-addressed on-disk store;
//! * [`executor`] — the longest-task-first work-stealing pool the study
//!   and the width sweep share;
//! * [`tables`] — Tables 1–4 and A.1;
//! * [`figures`] — Figures 3–14, A.1–A.5 and B.1–B.10;
//! * [`report`] — the full text report and the paper-vs-measured
//!   comparison behind EXPERIMENTS.md;
//! * [`observability`] — `fx8-trace` at study granularity: per-session
//!   metrics/events pooled across the run, plus wall-clock
//!   self-profiling of `Study::run`.

pub mod cache;
pub mod executor;
pub mod experiment;
pub mod figures;
pub mod observability;
pub mod report;
pub mod sample;
pub mod scale;
pub mod study;
pub mod tables;

pub use cache::{CacheStats, SessionCache};
pub use sample::Sample;
pub use scale::{ScaleConfig, ScalePoint, ScaleStudy, SweepStats};
pub use study::{SessionAudit, Study, StudyAuditReport, StudyConfig};

/// The types most programs need, importable in one line:
/// `use fx8_core::prelude::*;`.
pub mod prelude {
    pub use crate::cache::{CacheStats, CachedSession, SessionCache, SessionKind};
    pub use crate::experiment::{Capture, SessionConfig, SessionResult};
    pub use crate::observability::{
        MetricsReport, SessionMetrics, SessionObservability, StudyObservability,
    };
    pub use crate::report::{CompRow, StudyReport};
    pub use crate::sample::Sample;
    pub use crate::scale::{ScaleConfig, ScalePoint, ScaleStudy, SweepStats};
    pub use crate::study::{Study, StudyAuditReport, StudyConfig, StudyConfigBuilder};
    pub use fx8_monitor::EventCounts;
    pub use fx8_sim::{ConfigError, MachineConfig, MachineConfigBuilder, TraceConfig};
}
