//! One workload sample.
//!
//! § 3.5: "Five snapshots of the system were taken and grouped together in
//! a five-minute interval. ... Software measurements were taken
//! simultaneously with the hardware measurements." A [`Sample`] is that
//! grouped unit: the merged event counts of its snapshots, the kernel
//! counter delta over the interval, and every derived measure the analysis
//! chapters use.

use fx8_monitor::{EventCounts, KernelCounters};
use fx8_sim::Cycle;
use fx8_stats::measures::ConcurrencyMeasures;
use serde::{Deserialize, Serialize};

/// One five-minute sample of the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Session index the sample belongs to.
    pub session: usize,
    /// Machine time at the start of the sample interval.
    pub at_cycle: Cycle,
    /// Merged event counts over the sample's snapshots.
    pub counts: EventCounts,
    /// Kernel counter delta over the interval.
    pub kernel: KernelCounters,
}

impl Sample {
    /// Concurrency measures of this sample's record distribution.
    pub fn measures(&self) -> ConcurrencyMeasures {
        ConcurrencyMeasures::from_counts(&self.counts.num)
    }

    /// Workload Concurrency `C_w` (eq. 4.2).
    pub fn workload_concurrency(&self) -> f64 {
        self.measures().workload_concurrency
    }

    /// Mean Concurrency Level `P_c` (eq. 4.4), when defined.
    pub fn mean_concurrency_level(&self) -> Option<f64> {
        self.measures().mean_concurrency_level
    }

    /// Cache miss rate over the sample's records.
    pub fn missrate(&self) -> f64 {
        self.counts.missrate()
    }

    /// CE bus busy fraction over the sample's records.
    pub fn ce_bus_busy(&self) -> f64 {
        self.counts.ce_bus_busy()
    }

    /// Page Fault Rate: total CE page faults in the measurement interval
    /// (the paper reports raw per-interval counts).
    pub fn page_fault_rate(&self) -> f64 {
        self.kernel.total_faults() as f64
    }
}

/// Extract `(C_w, y)` points from samples via a selector.
pub fn points_vs_cw(samples: &[Sample], y: impl Fn(&Sample) -> f64) -> Vec<(f64, f64)> {
    samples
        .iter()
        .map(|s| (s.workload_concurrency(), y(s)))
        .collect()
}

/// Extract `(P_c, y)` points from samples (only samples where `P_c` is
/// defined, exactly as the thesis's plots drop them).
pub fn points_vs_pc(samples: &[Sample], y: impl Fn(&Sample) -> f64) -> Vec<(f64, f64)> {
    samples
        .iter()
        .filter_map(|s| s.mean_concurrency_level().map(|pc| (pc, y(s))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx8_sim::opcode::MemBusOp;

    fn sample_with(num: Vec<u64>, fetches: u64, records: u64, faults: u64) -> Sample {
        let mut counts = EventCounts::empty(8);
        counts.num = num;
        counts.records = records;
        counts.membop[MemBusOp::Fetch.index()] = fetches;
        Sample {
            session: 0,
            at_cycle: 0,
            counts,
            kernel: KernelCounters {
                page_faults_user: faults,
                page_faults_system: 0,
            },
        }
    }

    #[test]
    fn derived_measures_flow_through() {
        let s = sample_with(vec![10, 10, 0, 0, 0, 0, 0, 0, 20], 4, 40, 1234);
        assert!((s.workload_concurrency() - 0.5).abs() < 1e-12);
        assert!((s.mean_concurrency_level().unwrap() - 8.0).abs() < 1e-12);
        assert!((s.missrate() - 0.1).abs() < 1e-12);
        assert_eq!(s.page_fault_rate(), 1234.0);
    }

    #[test]
    fn pc_points_drop_undefined_samples() {
        let concurrent = sample_with(vec![0, 0, 0, 0, 0, 0, 0, 0, 10], 0, 10, 0);
        let serial = sample_with(vec![5, 5, 0, 0, 0, 0, 0, 0, 0], 0, 10, 0);
        let samples = vec![concurrent, serial];
        let pts = points_vs_pc(&samples, Sample::missrate);
        assert_eq!(pts.len(), 1, "serial sample has undefined P_c");
        let pts_cw = points_vs_cw(&samples, Sample::missrate);
        assert_eq!(pts_cw.len(), 2);
    }
}
