//! The study's work-stealing task executor.
//!
//! Extracted from `Study::run_observed` so the width sweep
//! ([`crate::scale`]) can fan its per-width session tasks through the same
//! pool. Tasks are pulled heaviest-first off a shared cursor by a pool
//! sized to the host, so total wall time is bounded by the single heaviest
//! task instead of by thread oversubscription; results are returned in
//! *task order* regardless of completion order, so parallel runs stay
//! bit-identical to serial ones (asserted by the study determinism suite).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run every task, heaviest first, on a pool sized to the host; returns
/// outputs in task order. `weight` is only a wall-time estimate — it
/// steers scheduling, never results. With `parallel` false (or a single
/// task) the tasks run serially in order on the calling thread.
pub fn run_longest_first<T, O, W, R>(tasks: &[T], weight: W, run: R, parallel: bool) -> Vec<O>
where
    T: Sync,
    O: Send,
    W: Fn(&T) -> f64,
    R: Fn(&T) -> O + Sync,
{
    if !parallel || tasks.len() <= 1 {
        return tasks.iter().map(run).collect();
    }
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        weight(&tasks[b])
            .total_cmp(&weight(&tasks[a]))
            .then(a.cmp(&b))
    });
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(tasks.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = order.get(k) else { break };
                let out = run(&tasks[idx]);
                *slots[idx].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every queued task ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn outputs_come_back_in_task_order() {
        let tasks: Vec<u64> = (0..37).collect();
        let out = run_longest_first(&tasks, |&t| t as f64, |&t| t * 2, true);
        assert_eq!(out, (0..37).map(|t| t * 2).collect::<Vec<_>>());
        let serial = run_longest_first(&tasks, |&t| t as f64, |&t| t * 2, false);
        assert_eq!(out, serial);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let tasks: Vec<usize> = (0..23).collect();
        let out = run_longest_first(
            &tasks,
            |_| 1.0,
            |&t| {
                ran.fetch_add(1, Ordering::Relaxed);
                t
            },
            true,
        );
        assert_eq!(ran.load(Ordering::Relaxed), 23);
        assert_eq!(out, tasks);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out = run_longest_first(&Vec::<u8>::new(), |_| 0.0, |&t| t, true);
        assert!(out.is_empty());
    }
}
