//! Determinism-backed session result memoization.
//!
//! PRs 1–7 proved the simulator bit-deterministic: a session's result is a
//! pure function of its validated [`SessionConfig`], its session index,
//! its capture budget, and the build's stepping semantics. That makes
//! session results *content-addressable* — this module caches them under a
//! stable fingerprint of exactly those inputs, so re-running a study, a
//! bench, or a width sweep recomputes only sessions it has never seen.
//!
//! Two layers share one key space:
//!
//! * an **in-process map**, so repeated sessions inside one process (warm
//!   bench reruns, overlapping sweep widths) hit without touching disk;
//! * an optional **on-disk store** (one JSON file per key, under
//!   `~/.cache/fx8` or an explicit `--cache-dir`), written atomically via
//!   write-then-rename so a crashed or concurrent writer can never leave a
//!   half-entry where a reader expects a whole one.
//!
//! Every disk entry carries a versioned header (format version, engine
//! version, its own key echoed back). Anything unexpected — truncated
//! file, failed parse, header mismatch, foreign key — is treated as a
//! *miss* and recomputed; the cache can degrade but never corrupt a
//! study. See DESIGN.md §13 for the full correctness argument.

use crate::experiment::{Capture, SessionConfig, SessionResult};
use fx8_sim::audit::AuditReport;
use fx8_sim::fingerprint::{CacheKeyHasher, Fingerprint, AUDIT_BUILD, ENGINE_VERSION};
use fx8_sim::TraceConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// On-disk entry layout version. Bumped when the serialized entry shape
/// changes; old-format entries then read as misses.
pub const CACHE_FORMAT: u32 = 1;

/// The three session protocols, as they appear in cache keys. Keying the
/// kind keeps a random session and a triggered session with coincidentally
/// equal configs from ever sharing an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionKind {
    /// Random workload sampling (§ 3.5 protocol 1).
    Random,
    /// All-active-triggered capture.
    Triggered,
    /// Transition-triggered capture.
    Transition,
}

impl SessionKind {
    fn tag(self) -> &'static str {
        match self {
            SessionKind::Random => "random",
            SessionKind::Triggered => "triggered",
            SessionKind::Transition => "transition",
        }
    }
}

/// One memoized session output: everything the study keeps from a session
/// run. Integer-only payloads (plus config floats serialized with
/// shortest-round-trip lexemes), so the JSON round-trip is bit-exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CachedSession {
    /// A random-sampling session's full result.
    Random {
        /// The session result, exactly as the runner returned it.
        result: SessionResult,
    },
    /// A triggered or transition session's captures plus audit report.
    Captures {
        /// Captured buffers, in capture order.
        captures: Vec<Capture>,
        /// The session's invariant-audit report.
        audit: AuditReport,
    },
}

/// Hit/miss/store counters, readable at any time and diffable across a
/// study so per-study rates can be reported from a shared cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Lookups answered from the cache (either layer).
    pub hits: u64,
    /// Lookups that fell through to a fresh computation.
    pub misses: u64,
    /// Entries stored after a miss computed.
    pub stores: u64,
    /// Disk entries rejected as corrupt, truncated, or version-mismatched
    /// (each also counts as a miss).
    pub invalid_entries: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter deltas since an earlier snapshot of the same cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            stores: self.stores.saturating_sub(earlier.stores),
            invalid_entries: self.invalid_entries.saturating_sub(earlier.invalid_entries),
        }
    }
}

/// Versioned wrapper around every on-disk entry.
#[derive(Debug, Serialize, Deserialize)]
struct DiskEntry {
    /// [`CACHE_FORMAT`] at write time.
    format: u32,
    /// Engine-version salt the entry was keyed under.
    engine: u64,
    /// The entry's own key, echoed so a renamed file cannot masquerade.
    key: String,
    /// The memoized session.
    session: CachedSession,
}

/// The content-addressed session cache: an in-process map over an
/// optional persistent directory. Shared by reference across the study
/// executor's worker threads.
#[derive(Debug)]
pub struct SessionCache {
    dir: Option<PathBuf>,
    engine_salt: u64,
    mem: Mutex<HashMap<Fingerprint, CachedSession>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalid: AtomicU64,
    tmp_seq: AtomicU64,
}

impl SessionCache {
    fn new(dir: Option<PathBuf>) -> Self {
        SessionCache {
            dir,
            engine_salt: ENGINE_VERSION,
            mem: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// A process-local cache with no disk layer: repeated sessions inside
    /// this process hit, nothing persists.
    pub fn in_memory() -> Self {
        SessionCache::new(None)
    }

    /// A cache persisted under `dir` (created on first store).
    pub fn at_dir(dir: impl Into<PathBuf>) -> Self {
        SessionCache::new(Some(dir.into()))
    }

    /// The conventional persistent location: `$XDG_CACHE_HOME/fx8`, or
    /// `$HOME/.cache/fx8`; `None` when neither variable resolves.
    pub fn default_dir() -> Option<PathBuf> {
        if let Some(x) = std::env::var_os("XDG_CACHE_HOME") {
            if !x.is_empty() {
                return Some(PathBuf::from(x).join("fx8"));
            }
        }
        let home = std::env::var_os("HOME")?;
        if home.is_empty() {
            return None;
        }
        Some(PathBuf::from(home).join(".cache").join("fx8"))
    }

    /// Override the engine-version salt (normally
    /// [`ENGINE_VERSION`]). For tests and ablations: a bumped salt must
    /// invalidate every previously stored entry.
    pub fn with_engine_salt(mut self, salt: u64) -> Self {
        self.engine_salt = salt;
        self
    }

    /// The persistent directory, when this cache has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Counter snapshot (monotonic over the cache's lifetime; diff with
    /// [`CacheStats::since`] for per-study rates).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalid_entries: self.invalid.load(Ordering::Relaxed),
        }
    }

    /// The content fingerprint of one session's full input: engine
    /// version, audit-build flag, session kind, the *canonical* session
    /// config (trace knobs zeroed — tracing is a proven pure observer, so
    /// traced and untraced runs share results), session index, and
    /// capture budget.
    pub fn key(
        &self,
        kind: SessionKind,
        cfg: &SessionConfig,
        session_idx: usize,
        captures: usize,
    ) -> Fingerprint {
        let mut canon = cfg.clone();
        // Trace knobs never steer the simulation (asserted by the PR-5
        // pure-observer suite), so they are canonicalized out of the key.
        canon.machine.trace = TraceConfig::off();
        let json = serde_json::to_string(&canon).expect("session config serializes");
        let mut h = CacheKeyHasher::new();
        h.write_str("fx8-session-cache");
        h.write_u64(CACHE_FORMAT as u64);
        h.write_u64(self.engine_salt);
        h.write_bool(AUDIT_BUILD);
        h.write_str(kind.tag());
        h.write_str(&json);
        h.write_usize(session_idx);
        h.write_usize(captures);
        h.finish()
    }

    /// Look a key up in both layers. A disk hit is promoted into the
    /// in-process map; anything unreadable on disk counts as a miss.
    pub fn lookup(&self, key: &Fingerprint) -> Option<CachedSession> {
        if let Some(hit) = self.mem.lock().expect("cache map poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit.clone());
        }
        if let Some(entry) = self.disk_lookup(key) {
            self.mem
                .lock()
                .expect("cache map poisoned")
                .insert(*key, entry.clone());
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(entry);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Store a computed session under its key in both layers. Disk I/O
    /// failures degrade the cache to in-memory silently — a cache must
    /// never fail a study.
    pub fn store(&self, key: &Fingerprint, session: &CachedSession) {
        self.mem
            .lock()
            .expect("cache map poisoned")
            .insert(*key, session.clone());
        self.stores.fetch_add(1, Ordering::Relaxed);
        let Some(dir) = &self.dir else { return };
        let entry = DiskEntry {
            format: CACHE_FORMAT,
            engine: self.engine_salt,
            key: key.to_hex(),
            session: session.clone(),
        };
        let json = serde_json::to_string(&entry).expect("cache entry serializes");
        // Atomic publish: write a unique temp file, then rename it over
        // the final path. Readers either see the whole entry or no entry;
        // concurrent writers of the same key race benignly (identical
        // contents, last rename wins).
        let _ = std::fs::create_dir_all(dir);
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".tmp-{}-{}-{}",
            key.to_hex(),
            std::process::id(),
            seq
        ));
        let written = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.sync_all()));
        if written.is_ok() {
            let _ = std::fs::rename(&tmp, self.entry_path(dir, key));
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn entry_path(&self, dir: &Path, key: &Fingerprint) -> PathBuf {
        dir.join(format!("{}.json", key.to_hex()))
    }

    fn disk_lookup(&self, key: &Fingerprint) -> Option<CachedSession> {
        let dir = self.dir.as_ref()?;
        let path = self.entry_path(dir, key);
        let bytes = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(_) => return None, // absent: a plain miss, not corruption
        };
        let entry: DiskEntry = match serde_json::from_str(&bytes) {
            Ok(e) => e,
            Err(_) => {
                self.invalid.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if entry.format != CACHE_FORMAT
            || entry.engine != self.engine_salt
            || entry.key != key.to_hex()
        {
            self.invalid.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(entry.session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SessionConfig {
        SessionConfig {
            hours: 0.01,
            ..SessionConfig::paper(42)
        }
    }

    fn sample_entry() -> CachedSession {
        CachedSession::Captures {
            captures: Vec::new(),
            audit: AuditReport::default(),
        }
    }

    #[test]
    fn in_memory_round_trip_counts_hits_and_misses() {
        let c = SessionCache::in_memory();
        let k = c.key(SessionKind::Random, &cfg(), 0, 0);
        assert!(c.lookup(&k).is_none());
        c.store(&k, &sample_entry());
        assert_eq!(c.lookup(&k), Some(sample_entry()));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kind_and_index_and_captures_reach_the_key() {
        let c = SessionCache::in_memory();
        let base = c.key(SessionKind::Random, &cfg(), 0, 0);
        assert_ne!(base, c.key(SessionKind::Triggered, &cfg(), 0, 0));
        assert_ne!(base, c.key(SessionKind::Random, &cfg(), 1, 0));
        assert_ne!(base, c.key(SessionKind::Random, &cfg(), 0, 1));
        let mut other = cfg();
        other.seed += 1;
        assert_ne!(base, c.key(SessionKind::Random, &other, 0, 0));
    }

    #[test]
    fn trace_knobs_are_canonicalized_out_of_the_key() {
        let c = SessionCache::in_memory();
        let plain = cfg();
        let mut traced = cfg();
        traced.machine.trace = TraceConfig::full();
        assert_eq!(
            c.key(SessionKind::Random, &plain, 0, 0),
            c.key(SessionKind::Random, &traced, 0, 0),
            "tracing is a pure observer and must share cache entries"
        );
    }

    #[test]
    fn stats_delta_isolates_one_study() {
        let c = SessionCache::in_memory();
        let k = c.key(SessionKind::Random, &cfg(), 0, 0);
        assert!(c.lookup(&k).is_none());
        c.store(&k, &sample_entry());
        let before = c.stats();
        assert!(c.lookup(&k).is_some());
        let d = c.stats().since(&before);
        assert_eq!((d.hits, d.misses, d.stores), (1, 0, 0));
    }

    #[test]
    fn default_dir_honors_xdg_then_home() {
        // Serialized against other env-reading tests by the env lock? No
        // such lock exists; read-only assertion instead: whatever the
        // environment, a resolved dir must end with "fx8".
        if let Some(d) = SessionCache::default_dir() {
            assert!(d.ends_with("fx8") || d.to_string_lossy().ends_with("fx8"));
        }
    }
}
