//! The three experiment protocols of § 3.5.
//!
//! * **Random sampling** — nine sessions of 4–8 hours on midweek days;
//!   every five minutes, five snapshots are captured, condensed to event
//!   counts, and stored together with the kernel counters.
//! * **All-active triggering** — ten sessions capturing buffers whenever
//!   all eight CEs were concurrent-active.
//! * **Transition triggering** — five sessions capturing buffers at the
//!   transition from eight active processors to fewer (the end of
//!   concurrent loops).

use crate::observability::SessionObservability;
use crate::sample::Sample;
use fx8_monitor::{DasConfig, DasMonitor, EventCounts, KernelStats, Trigger};
use fx8_sim::audit::AuditReport;
use fx8_sim::{Cluster, ConfigError, Cycle, MachineConfig};
use fx8_workload::arrival::arrival_times;
use fx8_workload::{SessionDriver, WorkloadMix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for one measurement session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Machine configuration (the measured FX/8 by default).
    pub machine: MachineConfig,
    /// Workload mix driving the session.
    pub mix: WorkloadMix,
    /// Session length in hours (4–8 in the study).
    pub hours: f64,
    /// Sample interval in seconds (300 = five minutes).
    pub sample_interval_s: f64,
    /// Snapshots grouped per sample (5 in the study).
    pub snapshots_per_sample: usize,
    /// Cycles of cache warm-up simulated before each capture (the machine
    /// ran continuously between the monitor's snapshots; this re-warms the
    /// caches the macro layer does not simulate).
    pub warmup_cycles: u64,
    /// Analyzer buffer depth (512 on the DAS 9100).
    pub buffer_depth: usize,
    /// RNG seed for arrivals and job parameters.
    pub seed: u64,
}

impl SessionConfig {
    /// The study's configuration: full FX/8, production mix, 6-hour
    /// session, five 512-record snapshots per 5 minutes.
    pub fn paper(seed: u64) -> Self {
        SessionConfig {
            machine: MachineConfig::fx8(),
            mix: WorkloadMix::csrd_production(),
            hours: 6.0,
            sample_interval_s: 300.0,
            snapshots_per_sample: 5,
            warmup_cycles: 20_480,
            buffer_depth: 512,
            seed,
        }
    }

    /// A scaled-down session for tests and quick runs.
    pub fn quick(seed: u64) -> Self {
        SessionConfig {
            hours: 0.5,
            ..SessionConfig::paper(seed)
        }
    }

    /// Reject configurations the session runners cannot execute sanely:
    /// a sample interval that rounds to zero cycles used to reach
    /// [`run_random_session`] as a division by zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.machine.validate()?;
        if !self.hours.is_finite() || self.hours < 0.0 {
            return Err(ConfigError::out_of_range(
                "session.hours",
                self.hours,
                "expected a finite non-negative number of hours",
            ));
        }
        if !self.sample_interval_s.is_finite() || self.sample_interval_s <= 0.0 {
            return Err(ConfigError::out_of_range(
                "session.sample_interval_s",
                self.sample_interval_s,
                "expected a finite positive number of seconds",
            ));
        }
        if self.machine.seconds_to_cycles(self.sample_interval_s) == 0 {
            return Err(ConfigError::out_of_range(
                "session.sample_interval_s",
                self.sample_interval_s,
                "rounds to zero cycles on this machine",
            ));
        }
        if self.snapshots_per_sample == 0 {
            return Err(ConfigError::Zero {
                field: "session.snapshots_per_sample",
            });
        }
        if self.buffer_depth == 0 {
            return Err(ConfigError::Zero {
                field: "session.buffer_depth",
            });
        }
        Ok(())
    }

    fn interval_cycles(&self) -> u64 {
        self.machine.seconds_to_cycles(self.sample_interval_s)
    }

    fn horizon_cycles(&self) -> u64 {
        self.machine.seconds_to_cycles(self.hours * 3600.0)
    }

    /// Build the driver: machine + arrival schedule.
    fn make_driver(&self) -> SessionDriver {
        let mut cluster = Cluster::new(self.machine.clone(), self.seed);
        cluster.set_ip_intensity(self.mix.ip_intensity);
        let mut rng = SmallRng::seed_from_u64(self.seed.wrapping_mul(0x9e37_79b9));
        let times = arrival_times(&self.mix.profile, self.horizon_cycles(), &mut rng);
        let arrivals = times
            .into_iter()
            .map(|t| (t, self.mix.sample_program(&mut rng)))
            .collect();
        SessionDriver::new(cluster, arrivals)
    }
}

/// The result of one random-sampling session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionResult {
    /// Session index (set by the caller).
    pub session: usize,
    /// The per-interval samples, in time order.
    pub samples: Vec<Sample>,
    /// Jobs completed during the session.
    pub jobs_completed: u64,
    /// The simulator's invariant-audit report for the session (empty and
    /// clean unless the `audit` feature is enabled).
    pub audit: AuditReport,
}

impl SessionResult {
    /// Pool this session's record distribution. Sized to the widest sample
    /// rather than a hardwired nine bins: a session on a machine with more
    /// CEs than the FX/8's eight used to index out of bounds here.
    pub fn pooled_num(&self) -> Vec<u64> {
        let width = self
            .samples
            .iter()
            .map(|s| s.counts.num.len())
            .max()
            .unwrap_or(9);
        let mut num = vec![0u64; width];
        for s in &self.samples {
            for (j, &k) in s.counts.num.iter().enumerate() {
                num[j] += k;
            }
        }
        num
    }

    /// Pool all event counts of the session.
    pub fn pooled_counts(&self) -> EventCounts {
        let n_ces = self.samples.first().map_or(8, |s| s.counts.n_ces);
        let mut acc = EventCounts::empty(n_ces);
        for s in &self.samples {
            acc.merge(&s.counts);
        }
        acc
    }
}

/// One captured buffer of a triggered or transition session, reduced to
/// event counts at acquisition time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Capture {
    /// Session index (set by the caller).
    pub session: usize,
    /// Cycle of the trigger record within the session.
    pub at_cycle: Cycle,
    /// Reduced counts of the captured buffer.
    pub counts: EventCounts,
}

/// Run one random-sampling session (§ 3.5, first measurement type).
pub fn run_random_session(cfg: &SessionConfig, session_idx: usize) -> SessionResult {
    run_random_session_observed(cfg, session_idx).0
}

/// [`run_random_session`], also returning the session's observability
/// slice (trace metrics, events, wall clock). The simulated trajectory is
/// bit-identical to the plain runner's: observation never steers.
pub fn run_random_session_observed(
    cfg: &SessionConfig,
    session_idx: usize,
) -> (SessionResult, SessionObservability) {
    let started = std::time::Instant::now();
    let mut driver = cfg.make_driver();
    let das = DasMonitor::new(DasConfig {
        buffer_depth: cfg.buffer_depth,
        trigger: Trigger::Immediate,
        timeout_cycles: u64::MAX,
    });
    let mut kstats = KernelStats::new(driver.cluster());
    // Floor the interval at one cycle: a sub-cycle sample_interval_s rounds
    // to zero and used to divide by zero below. `advance_to` clamps to the
    // current clock, so a one-cycle interval degenerates to back-to-back
    // snapshots rather than a backwards clock.
    let interval = cfg.interval_cycles().max(1);
    let n_samples = (cfg.horizon_cycles() / interval).max(1);
    let snap_spacing = interval / (cfg.snapshots_per_sample as u64 + 1);
    let mut samples = Vec::with_capacity(n_samples as usize);

    for k in 0..n_samples {
        let t0 = k * interval;
        let mut counts = EventCounts::empty(cfg.machine.n_ces);
        for s in 0..cfg.snapshots_per_sample {
            let t = t0 + (s as u64 + 1) * snap_spacing;
            driver.advance_to(t);
            // Re-warm the caches by running the mounted state briefly: the
            // real machine executed continuously between snapshots, which
            // the macro layer does not simulate. Phases are long relative
            // to the warm-up, so the consumed slice is negligible.
            driver.cluster_mut().run(cfg.warmup_cycles);
            // Streaming acquisition: each record folds straight into the
            // sample's accumulator; the 512-record buffer never exists.
            das.acquire_reduced_into(driver.cluster_mut(), &mut counts)
                .expect("immediate trigger cannot time out");
        }
        // Software measurements are recorded when the hardware sample is
        // stored (§ 3.5): advance to the interval end first.
        driver.advance_to(t0 + interval);
        let kernel = kstats.interval(driver.cluster());
        samples.push(Sample {
            session: session_idx,
            at_cycle: t0,
            counts,
            kernel,
        });
    }

    let obs =
        SessionObservability::capture(format!("random {session_idx}"), started, driver.cluster());
    (
        SessionResult {
            session: session_idx,
            samples,
            jobs_completed: driver.completed_jobs(),
            audit: driver.cluster().audit_report(),
        },
        obs,
    )
}

/// Run one all-active-triggered session (§ 3.5, second measurement type).
/// Returns the reduced counts of each captured buffer, tagged with the
/// session index and trigger cycle, plus the session's audit report.
pub fn run_triggered_session(
    cfg: &SessionConfig,
    session_idx: usize,
    captures: usize,
) -> (Vec<Capture>, AuditReport) {
    let (caps, audit, _) = run_triggered_session_observed(cfg, session_idx, captures);
    (caps, audit)
}

/// [`run_triggered_session`], also returning the session's observability
/// slice.
pub fn run_triggered_session_observed(
    cfg: &SessionConfig,
    session_idx: usize,
    captures: usize,
) -> (Vec<Capture>, AuditReport, SessionObservability) {
    let started = std::time::Instant::now();
    let mut driver = cfg.make_driver();
    let das = DasMonitor::new(DasConfig {
        buffer_depth: cfg.buffer_depth,
        trigger: Trigger::AllCesActive,
        timeout_cycles: 300_000,
    });
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xfeed);
    let horizon = cfg.horizon_cycles();
    let mut out = Vec::with_capacity(captures);
    // Degenerate horizons (shorter than the capture count) would give a
    // zero spacing: `t` would never advance and the jitter range below
    // would be empty. Clamp to one cycle so the loop still terminates via
    // its attempt budget.
    let spacing = (horizon / (captures as u64 + 1)).max(1);
    let mut t = spacing;
    let mut attempts = 0usize;
    while out.len() < captures && attempts < captures * 50 {
        attempts += 1;
        driver.advance_to(t);
        // Jitter so captures do not phase-lock with sample spacing.
        t += spacing / 2 + rng.gen_range(0..spacing.max(2) / 2);
        if t > horizon * 4 {
            break;
        }
        // The trigger can only fire during a concurrent loop; skip cheaply
        // (no micro simulation) when something else is mounted.
        if driver.cluster().load_kind() != fx8_sim::cluster::LoadKind::Loop {
            continue;
        }
        driver.cluster_mut().run(cfg.warmup_cycles);
        if let Ok(r) = das.acquire_reduced(driver.cluster_mut()) {
            out.push(Capture {
                session: session_idx,
                at_cycle: r.triggered_at,
                counts: r.counts,
            });
        }
    }
    let audit = driver.cluster().audit_report();
    let obs = SessionObservability::capture(
        format!("triggered {session_idx}"),
        started,
        driver.cluster(),
    );
    (out, audit, obs)
}

/// Run one transition-triggered session (§ 3.5, the 8-to-fewer trigger).
/// Returns the captures plus the session's audit report.
pub fn run_transition_session(
    cfg: &SessionConfig,
    session_idx: usize,
    captures: usize,
) -> (Vec<Capture>, AuditReport) {
    let (caps, audit, _) = run_transition_session_observed(cfg, session_idx, captures);
    (caps, audit)
}

/// [`run_transition_session`], also returning the session's observability
/// slice.
pub fn run_transition_session_observed(
    cfg: &SessionConfig,
    session_idx: usize,
    captures: usize,
) -> (Vec<Capture>, AuditReport, SessionObservability) {
    let started = std::time::Instant::now();
    let mut driver = cfg.make_driver();
    // A tight trigger timeout: if the drain slipped past during warm-up the
    // fastest recovery is rearming at the next loop end, not waiting here.
    let das = DasMonitor::new(DasConfig {
        buffer_depth: cfg.buffer_depth,
        trigger: Trigger::TransitionFromFull,
        timeout_cycles: 400_000,
    });
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xdead);
    let mut out = Vec::with_capacity(captures);
    let deadline = cfg.horizon_cycles() * 8;
    let mut attempts = 0usize;
    // Short warm-up: a drain window needs the loop's panel resident, which
    // a couple of thousand cycles of execution provides, and longer warm-up
    // risks consuming the tail before the analyzer arms.
    let warmup = cfg.warmup_cycles.min(2_048);
    while out.len() < captures && attempts < captures * 50 {
        attempts += 1;
        // Position a mounted loop close to its end so the falling edge
        // arrives within the analyzer's patience; the tail must outlive
        // the warm-up.
        let tail = rng.gen_range(24..64);
        match driver.seek_transition(tail, deadline) {
            Some(_) => {
                driver.cluster_mut().run(warmup);
                if let Ok(r) = das.acquire_reduced(driver.cluster_mut()) {
                    out.push(Capture {
                        session: session_idx,
                        at_cycle: r.triggered_at,
                        counts: r.counts,
                    });
                }
            }
            None => break,
        }
    }
    let audit = driver.cluster().audit_report();
    let obs = SessionObservability::capture(
        format!("transition {session_idx}"),
        started,
        driver.cluster(),
    );
    (out, audit, obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64) -> SessionConfig {
        SessionConfig {
            hours: 0.12,
            warmup_cycles: 1024,
            ..SessionConfig::paper(seed)
        }
    }

    #[test]
    fn random_session_produces_expected_sample_count() {
        let cfg = tiny_cfg(1);
        let r = run_random_session(&cfg, 3);
        // 0.12 h = 432 s -> 1 interval of 300 s fits once.
        assert_eq!(r.samples.len(), 1);
        let s = &r.samples[0];
        assert_eq!(s.session, 3);
        assert_eq!(
            s.counts.records,
            (cfg.buffer_depth * cfg.snapshots_per_sample) as u64
        );
        // Conservation through the whole pipeline.
        assert_eq!(s.counts.num.iter().sum::<u64>(), s.counts.records);
    }

    #[test]
    fn random_session_is_deterministic() {
        let a = run_random_session(&tiny_cfg(7), 0);
        let b = run_random_session(&tiny_cfg(7), 0);
        assert_eq!(a, b);
        let c = run_random_session(&tiny_cfg(8), 0);
        assert_ne!(a.samples[0].counts, c.samples[0].counts);
    }

    #[test]
    fn triggered_session_captures_full_concurrency() {
        let mut cfg = tiny_cfg(2);
        cfg.mix = WorkloadMix::all_concurrent();
        let (buffers, _audit) = run_triggered_session(&cfg, 7, 3);
        assert!(!buffers.is_empty(), "concurrent mix must trigger");
        let mut last_trigger = 0;
        for b in &buffers {
            // The trigger record has all 8 active; most of the buffer stays
            // at high concurrency.
            assert!(
                b.counts.num[8] > 0,
                "captured buffer contains 8-active records"
            );
            assert_eq!(b.session, 7, "captures carry the session index");
            assert!(b.at_cycle > last_trigger, "trigger cycles are increasing");
            last_trigger = b.at_cycle;
        }
    }

    #[test]
    fn transition_session_captures_drains() {
        let mut cfg = tiny_cfg(3);
        cfg.mix = WorkloadMix::all_concurrent();
        let (buffers, _audit) = run_transition_session(&cfg, 4, 3);
        assert!(!buffers.is_empty(), "loops must drain");
        assert!(
            buffers.iter().all(|b| b.session == 4),
            "captures carry the session index"
        );
        let mut pooled = EventCounts::empty(8);
        for b in &buffers {
            pooled.merge(&b.counts);
        }
        // Drain windows are dominated by sub-full concurrency records.
        let partial: u64 = (1..8).map(|j| pooled.num[j]).sum();
        assert!(
            partial > 0,
            "transition buffers show partial concurrency: {:?}",
            pooled.num
        );
    }

    #[test]
    fn triggered_session_survives_degenerate_horizon() {
        // A horizon shorter than the capture count makes the nominal
        // spacing zero; the clamp keeps the probe loop advancing so the
        // session terminates (returning whatever it managed to capture).
        let mut cfg = tiny_cfg(5);
        cfg.hours = 0.0;
        let _ = run_triggered_session(&cfg, 0, 4);
    }

    #[test]
    fn serial_mix_never_triggers_all_active() {
        let mut cfg = tiny_cfg(4);
        cfg.mix = WorkloadMix::all_serial();
        let (buffers, _audit) = run_triggered_session(&cfg, 0, 2);
        assert!(
            buffers.is_empty(),
            "serial-only workload cannot reach 8-active"
        );
    }

    #[test]
    fn pooled_num_handles_wider_than_fx8_samples() {
        // Regression: pooled_num hardwired nine bins, so a sample reduced
        // on a hypothetical machine with more than eight CEs (a 13-wide
        // `num` histogram) indexed out of bounds.
        use fx8_monitor::KernelCounters;
        let mut counts = EventCounts::empty(12);
        counts.num[12] = 5;
        counts.num[0] = 2;
        counts.records = 7;
        let r = SessionResult {
            session: 0,
            samples: vec![Sample {
                session: 0,
                at_cycle: 0,
                counts,
                kernel: KernelCounters::default(),
            }],
            jobs_completed: 0,
            audit: AuditReport::default(),
        };
        let num = r.pooled_num();
        assert_eq!(num.len(), 13);
        assert_eq!(num[12], 5);
        assert_eq!(num[0], 2);
    }

    #[test]
    fn zero_cycle_interval_is_floored_not_divided_by() {
        // Regression: a sample_interval_s that rounds to zero cycles used
        // to panic with a division by zero in run_random_session. The
        // runner floors the interval at one cycle instead.
        let mut cfg = tiny_cfg(6);
        cfg.hours = 1e-12;
        cfg.sample_interval_s = 1e-12;
        cfg.warmup_cycles = 0;
        cfg.snapshots_per_sample = 1;
        cfg.buffer_depth = 8;
        assert!(cfg.validate().is_err(), "validate flags the rounding");
        let r = run_random_session(&cfg, 0);
        assert_eq!(r.samples.len(), 1);
    }

    #[test]
    fn session_config_validate_accepts_paper_and_rejects_nonsense() {
        assert!(SessionConfig::paper(1).validate().is_ok());
        let mut bad = SessionConfig::paper(1);
        bad.hours = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = SessionConfig::paper(1);
        bad.sample_interval_s = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = SessionConfig::paper(1);
        bad.snapshots_per_sample = 0;
        assert!(bad.validate().is_err());
        let mut bad = SessionConfig::paper(1);
        bad.buffer_depth = 0;
        assert!(bad.validate().is_err());
    }
}
