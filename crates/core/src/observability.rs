//! Self-observability of a study run (`fx8-trace`, study layer).
//!
//! The simulator's trace layer ([`fx8_sim::trace`]) collects per-cluster
//! metrics and events; this module pools them across the sessions of a
//! [`crate::study::Study`] and adds the third pillar the machine cannot
//! see: wall-clock self-profiling of `Study::run`. The observed runners in
//! [`crate::experiment`] capture one [`SessionObservability`] per session;
//! [`crate::study::Study::run_observed`] assembles them into a
//! [`StudyObservability`], which renders as the `observability` section of
//! [`crate::report::StudyReport`], serializes to the `reproduce metrics`
//! JSON, and exports the `reproduce trace` Chrome `trace_event` file.

use crate::cache::CacheStats;
use fx8_sim::trace::{ChromeTraceBuilder, EngineCycles, MetricsSnapshot, TraceEvent};
use fx8_sim::Cluster;
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

/// Everything one session's cluster observed about itself, plus the wall
/// clock the session consumed. Deliberately *not* part of
/// [`crate::experiment::SessionResult`]: wall time differs run to run,
/// and the determinism suite compares results bit-for-bit.
#[derive(Debug, Clone)]
pub struct SessionObservability {
    /// Which session ("random 3", "triggered 0", "transition 1", ...).
    pub label: String,
    /// Wall-clock seconds the session took to simulate.
    pub wall_s: f64,
    /// The cluster's metrics registry at session end.
    pub metrics: MetricsSnapshot,
    /// The retained event trace (empty unless `TraceConfig::events`).
    pub events: Vec<TraceEvent>,
    /// Events evicted by the bounded ring.
    pub events_dropped: u64,
    /// Whether the session was answered by the result cache instead of
    /// being stepped (metrics are then empty: no cluster existed).
    pub cache_hit: bool,
}

impl SessionObservability {
    /// Snapshot a finished session's cluster.
    pub fn capture(label: String, started: Instant, cluster: &Cluster) -> Self {
        SessionObservability {
            label,
            wall_s: started.elapsed().as_secs_f64(),
            metrics: cluster.metrics(),
            events: cluster.trace_events(),
            events_dropped: cluster.trace_dropped_events(),
            cache_hit: false,
        }
    }

    /// The observability slice of a session answered from the result
    /// cache: no cluster ever existed, so the metrics registry is empty
    /// and only the (tiny) lookup wall clock is real.
    pub fn cached(label: String, started: Instant) -> Self {
        SessionObservability {
            label,
            wall_s: started.elapsed().as_secs_f64(),
            metrics: MetricsSnapshot::default(),
            events: Vec::new(),
            events_dropped: 0,
            cache_hit: true,
        }
    }
}

/// Observability of a whole study: one slice per session plus the study's
/// own wall clock. Session order matches [`crate::study::Study`]: random
/// sessions first, then triggered, then transition.
#[derive(Debug, Clone, Default)]
pub struct StudyObservability {
    /// Per-session slices.
    pub sessions: Vec<SessionObservability>,
    /// Wall-clock seconds for the whole study (parallel sessions overlap,
    /// so this is typically far less than the sum of session wall times).
    pub study_wall_s: f64,
    /// Result-cache counters for this study alone (all zero when the run
    /// was uncached).
    pub cache: CacheStats,
}

impl StudyObservability {
    /// Per-engine cycle split pooled over every session. The engines
    /// partition each session's timeline, so the pooled split partitions
    /// the pooled total.
    pub fn pooled_engine(&self) -> EngineCycles {
        let mut acc = EngineCycles {
            scalar: 0,
            dense: 0,
            skipped: 0,
            total: 0,
        };
        for s in &self.sessions {
            acc.add(&s.metrics.cycles);
        }
        acc
    }

    /// Total simulated cycles across every session.
    pub fn total_cycles(&self) -> u64 {
        self.pooled_engine().total
    }

    /// Export every session's event trace as one Chrome `trace_event`
    /// document: one process per session, named after its label.
    pub fn chrome_trace(&self, ns_per_cycle: u64) -> String {
        let mut b = ChromeTraceBuilder::new();
        for (pid, s) in self.sessions.iter().enumerate() {
            b.add_process(pid as u32, &s.label, &s.events, ns_per_cycle);
        }
        b.finish()
    }

    /// The serializable metrics report behind `reproduce metrics --json`.
    pub fn metrics_report(&self) -> MetricsReport {
        MetricsReport {
            study_wall_s: self.study_wall_s,
            total_cycles: self.total_cycles(),
            engine: self.pooled_engine(),
            cache: self.cache,
            sessions: self
                .sessions
                .iter()
                .map(|s| SessionMetrics {
                    label: s.label.clone(),
                    wall_s: s.wall_s,
                    cache_hit: s.cache_hit,
                    metrics: s.metrics.clone(),
                })
                .collect(),
        }
    }

    /// Human-readable summary: the `observability` section of the study
    /// report. Wall-clock figures vary run to run; everything else is
    /// deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let eng = self.pooled_engine();
        let _ = writeln!(out, "## Observability (fx8-trace)");
        let _ = writeln!(
            out,
            "study wall clock: {:.3} s over {} sessions",
            self.study_wall_s,
            self.sessions.len()
        );
        if self.cache.lookups() > 0 {
            let _ = writeln!(
                out,
                "result cache: {} hits / {} lookups ({:.0}%), {} stored, {} invalid entries skipped",
                self.cache.hits,
                self.cache.lookups(),
                100.0 * self.cache.hit_rate(),
                self.cache.stores,
                self.cache.invalid_entries,
            );
        }
        let pct = |part: u64| {
            if eng.total == 0 {
                0.0
            } else {
                100.0 * part as f64 / eng.total as f64
            }
        };
        let _ = writeln!(
            out,
            "engine residency: {} cycles total — scalar {} ({:.1}%), dense {} ({:.1}%), fast-forward {} ({:.1}%)",
            eng.total,
            eng.scalar,
            pct(eng.scalar),
            eng.dense,
            pct(eng.dense),
            eng.skipped,
            pct(eng.skipped),
        );
        for s in &self.sessions {
            let m = &s.metrics;
            let _ = writeln!(
                out,
                "  {:<14} {:>9.3} s  {:>14} cycles  {:>12} instrs  xbar {}g/{}d  faults {}u/{}s{}",
                s.label,
                s.wall_s,
                m.cycles.total,
                m.instrs,
                m.crossbar_grants,
                m.crossbar_retries,
                m.vm_user_faults,
                m.vm_system_faults,
                if s.cache_hit { "  [cached]" } else { "" },
            );
            if m.ccb_grant_latency.count > 0 {
                let _ = writeln!(
                    out,
                    "  {:<14} ccb grants {} (mean wait {:.1} cyc, max {})",
                    "",
                    m.ccb_grant_latency.count,
                    m.ccb_grant_latency.mean(),
                    m.ccb_grant_latency.max,
                );
            }
            if m.events_recorded > 0 {
                let _ = writeln!(
                    out,
                    "  {:<14} events {} recorded, {} dropped",
                    "", m.events_recorded, m.events_dropped,
                );
            }
        }
        out
    }
}

/// Serializable form of a study's metrics registry (the
/// `reproduce metrics --json` payload).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsReport {
    /// Wall-clock seconds for the whole study.
    pub study_wall_s: f64,
    /// Simulated cycles pooled over every session.
    pub total_cycles: u64,
    /// Pooled per-engine split; partitions `total_cycles`.
    pub engine: EngineCycles,
    /// Result-cache counters for this study alone.
    pub cache: CacheStats,
    /// Per-session registries.
    pub sessions: Vec<SessionMetrics>,
}

/// One session's slice of the metrics report.
#[derive(Debug, Clone, Serialize)]
pub struct SessionMetrics {
    /// Session label ("random 0", ...).
    pub label: String,
    /// Wall-clock seconds for the session.
    pub wall_s: f64,
    /// Whether the session was answered by the result cache.
    pub cache_hit: bool,
    /// The session cluster's full registry snapshot.
    pub metrics: MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(total: u64, dense: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            cycles: EngineCycles {
                scalar: total - dense,
                dense,
                skipped: 0,
                total,
            },
            instrs: 10,
            iters_completed: 2,
            crossbar_grants: 5,
            crossbar_retries: 1,
            crossbar_grants_by_bank: vec![5, 0, 0, 0],
            membus_busy_cycles: 3,
            membus_ops_by_kind: vec![1, 2],
            cache_ce_accesses: 9,
            cache_ce_misses: 1,
            ccb_grants_by_ce: vec![1; 8],
            ccb_grant_wait_cycles: 4,
            ccb_sync_wait_cycles: 0,
            ccb_grant_latency: Default::default(),
            vm_user_faults: 0,
            vm_system_faults: 0,
            events_recorded: 0,
            events_dropped: 0,
        }
    }

    fn obs() -> StudyObservability {
        StudyObservability {
            sessions: vec![
                SessionObservability {
                    label: "random 0".into(),
                    wall_s: 0.5,
                    metrics: snap(100, 40),
                    events: vec![TraceEvent::Mount {
                        at: 1,
                        kind: fx8_sim::trace::MountKind::Loop,
                    }],
                    events_dropped: 0,
                    cache_hit: false,
                },
                SessionObservability {
                    label: "triggered 0".into(),
                    wall_s: 0.25,
                    metrics: snap(50, 0),
                    events: vec![],
                    events_dropped: 0,
                    cache_hit: true,
                },
            ],
            study_wall_s: 0.6,
            cache: CacheStats {
                hits: 1,
                misses: 1,
                stores: 1,
                invalid_entries: 0,
            },
        }
    }

    #[test]
    fn pooled_engine_partitions_total() {
        let o = obs();
        let e = o.pooled_engine();
        assert_eq!(e.total, 150);
        assert_eq!(e.dense, 40);
        assert!(e.consistent());
        assert_eq!(o.total_cycles(), 150);
    }

    #[test]
    fn chrome_trace_emits_one_process_per_session() {
        let json = obs().chrome_trace(170);
        assert!(json.contains("\"name\":\"random 0\""));
        assert!(json.contains("\"name\":\"triggered 0\""));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn metrics_report_serializes() {
        let rep = obs().metrics_report();
        let json = serde_json::to_string(&rep).expect("report serializes");
        assert!(json.contains("\"total_cycles\""));
        assert!(json.contains("\"random 0\""));
        assert!(json.contains("\"engine\""));
        assert!(json.contains("\"cache\""));
        assert!(json.contains("\"cache_hit\":true"));
    }

    #[test]
    fn render_mentions_every_session() {
        let text = obs().render();
        assert!(text.contains("Observability"));
        assert!(text.contains("random 0"));
        assert!(text.contains("triggered 0"));
        assert!(text.contains("engine residency"));
        assert!(text.contains("result cache: 1 hits / 2 lookups (50%)"));
        assert!(text.contains("[cached]"));
    }
}
