//! The scaling study the measured machine could not run.
//!
//! The thesis measured concurrency on the one cluster that existed — an
//! 8-CE FX/8 — and could only speculate how its measures move with
//! cluster width. With the width-generic machine model
//! ([`MachineConfig::scaled`]) the same study protocol runs at any width
//! up to the full lane word, so this module sweeps it: one complete
//! [`Study`] per width, each reduced to a single point on the
//! C_w / P_c / Missrate / bus-utilization curves. Every width shares the
//! workload mix, session plan, and base seed, so the curves isolate the
//! machine's width from everything else.

use crate::cache::{CacheStats, SessionCache};
use crate::executor;
use crate::study::{Study, StudyConfig, StudyConfigBuilder};
use fx8_sim::{ConfigError, MachineConfig};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Widths the sweep visits by default: the measured machine (8) bracketed
/// by halvings and doublings out to the full `LaneWord`.
pub const DEFAULT_WIDTHS: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// Configuration of a width sweep: the per-width study template plus the
/// widths to visit. The template's `machine` field is replaced by
/// [`MachineConfig::scaled`] at each width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Study template every width runs (mix, session plan, seed).
    pub base: StudyConfig,
    /// Cluster widths to sweep, in curve order.
    pub widths: Vec<usize>,
}

impl ScaleConfig {
    /// The sweep at paper session scale — hours of machine time per width.
    pub fn paper() -> Self {
        ScaleConfig {
            base: StudyConfig::paper(),
            widths: DEFAULT_WIDTHS.to_vec(),
        }
    }

    /// The sweep at quick scale (minutes of machine time per width):
    /// coarse but complete curves, suitable for smoke tests.
    pub fn quick() -> Self {
        ScaleConfig {
            base: StudyConfig::quick(),
            widths: DEFAULT_WIDTHS.to_vec(),
        }
    }

    /// Validate the template at every requested width before any session
    /// runs, so a bad width fails fast instead of hours in.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.widths.is_empty() {
            return Err(ConfigError::out_of_range(
                "widths",
                "[]",
                "expected at least one cluster width",
            ));
        }
        for &w in &self.widths {
            self.study_for_width(w)?;
        }
        Ok(())
    }

    /// The complete per-width study configuration.
    fn study_for_width(&self, width: usize) -> Result<StudyConfig, ConfigError> {
        StudyConfigBuilder::from_config(self.base.clone())
            .machine(MachineConfig::scaled(width))
            .build()
    }
}

/// One point on the scaling curves: a full study's pooled measures at one
/// cluster width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Cluster width the study ran at.
    pub n_ces: usize,
    /// Workload Concurrency `C_w` (eq. 4.2) pooled over random sessions.
    pub c_w: f64,
    /// Mean Concurrency Level `P_c` (eq. 4.4); `None` when no concurrency
    /// was observed at this width.
    pub p_c: Option<f64>,
    /// Cache missrate: memory-bus `Fetch` starts per record.
    pub missrate: f64,
    /// Memory-bus utilization (non-idle fraction of records).
    pub mem_bus_busy: f64,
    /// CE-bus utilization averaged over this width's buses.
    pub ce_bus_busy: f64,
    /// Records behind the point.
    pub records: u64,
}

impl ScalePoint {
    fn from_study(n_ces: usize, study: &Study) -> Self {
        let m = study.overall_measures();
        let counts = study.pooled_counts();
        ScalePoint {
            n_ces,
            c_w: m.workload_concurrency,
            p_c: m.mean_concurrency_level,
            missrate: counts.missrate(),
            mem_bus_busy: counts.mem_bus_busy(),
            ce_bus_busy: counts.ce_bus_busy(),
            records: m.total_records,
        }
    }
}

/// The finished sweep: one [`ScalePoint`] per requested width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleStudy {
    /// Points in the configured width order.
    pub points: Vec<ScalePoint>,
}

/// Wall-clock and cache accounting of one sweep run (the sweep analogue
/// of a study's observability; never part of [`ScaleStudy`], so sweep
/// results stay bit-comparable across cached and uncached runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepStats {
    /// Wall-clock seconds for the whole sweep.
    pub sweep_wall_s: f64,
    /// Sessions scheduled across every width.
    pub sessions: usize,
    /// Result-cache counters for this sweep alone (zero when uncached).
    pub cache: CacheStats,
}

impl ScaleStudy {
    /// Run the sweep: a complete [`Study`] per width, widths in order.
    pub fn run(cfg: &ScaleConfig) -> Result<ScaleStudy, ConfigError> {
        Ok(ScaleStudy::run_cached(cfg, None)?.0)
    }

    /// Run the sweep as an *incremental* fan-out: every width's session
    /// tasks are flattened into one longest-first pool (so widths overlap
    /// on the host instead of running one study at a time), and each task
    /// consults the result cache before stepping. Re-running a sweep with
    /// one added width therefore recomputes only that width's sessions —
    /// every previously-computed (width, session) point loads.
    pub fn run_cached(
        cfg: &ScaleConfig,
        cache: Option<&SessionCache>,
    ) -> Result<(ScaleStudy, SweepStats), ConfigError> {
        cfg.validate()?;
        let started = std::time::Instant::now();
        let before = cache.map(|c| c.stats());
        let studies: Vec<StudyConfig> = cfg
            .widths
            .iter()
            .map(|&w| cfg.study_for_width(w).expect("validated above"))
            .collect();
        // Flatten (width slot, session task) pairs so the executor
        // schedules the whole sweep as one pool.
        let tasks: Vec<(usize, crate::study::SessionTask)> = studies
            .iter()
            .enumerate()
            .flat_map(|(wi, sc)| sc.session_tasks().into_iter().map(move |t| (wi, t)))
            .collect();
        let n_sessions = tasks.len();
        let outputs = executor::run_longest_first(
            &tasks,
            |(_, t)| t.weight(),
            |(_, t)| t.run(cache),
            cfg.base.parallel,
        );
        // Regroup outputs per width, preserving task order within each
        // width (the flattening enumerates widths in order, and the
        // executor returns outputs in task order).
        let mut per_width: Vec<Vec<crate::study::SessionOut>> =
            studies.iter().map(|_| Vec::new()).collect();
        for ((wi, _), out) in tasks.iter().zip(outputs) {
            per_width[*wi].push(out);
        }
        let points = studies
            .into_iter()
            .zip(per_width)
            .zip(cfg.widths.iter())
            .map(|((sc, outs), &w)| {
                let (study, _obs) = Study::assemble(sc, outs);
                ScalePoint::from_study(w, &study)
            })
            .collect();
        let stats = SweepStats {
            sweep_wall_s: started.elapsed().as_secs_f64(),
            sessions: n_sessions,
            cache: match (cache, before) {
                (Some(c), Some(b)) => c.stats().since(&b),
                _ => CacheStats::default(),
            },
        };
        Ok((ScaleStudy { points }, stats))
    }

    /// Render the curves as a text table plus an ASCII C_w curve — the
    /// scaling analogue of the thesis's Table 2.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("SCALING STUDY. Concurrency measures vs cluster width.\n");
        s.push_str("  width       C_w       P_c  Missrate  MemBusBusy  CEBusBusy    records\n");
        for p in &self.points {
            let pc = match p.p_c {
                Some(pc) => format!("{pc:>9.2}"),
                None => format!("{:>9}", "—"),
            };
            let _ = writeln!(
                s,
                "  {:>5}  {:>8.4}  {pc}  {:>8.4}  {:>10.4}  {:>9.4}  {:>9}",
                p.n_ces, p.c_w, p.missrate, p.mem_bus_busy, p.ce_bus_busy, p.records
            );
        }
        s.push_str("\n  C_w curve (fraction of records concurrent):\n");
        for p in &self.points {
            let bar = "#".repeat((p.c_w.clamp(0.0, 1.0) * 40.0).round() as usize);
            let _ = writeln!(s, "  {:>5} |{bar:<40}| {:.4}", p.n_ces, p.c_w);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_at_every_default_width() {
        assert!(ScaleConfig::quick().validate().is_ok());
        assert!(ScaleConfig::paper().validate().is_ok());
    }

    #[test]
    fn empty_width_list_is_rejected() {
        let mut cfg = ScaleConfig::quick();
        cfg.widths.clear();
        assert_eq!(cfg.validate().unwrap_err().field(), "widths");
    }

    #[test]
    fn invalid_width_fails_before_any_session_runs() {
        let mut cfg = ScaleConfig::quick();
        cfg.widths = vec![8, 65];
        assert!(cfg.validate().is_err());
        assert!(ScaleStudy::run(&cfg).is_err());
    }

    /// A two-point micro sweep end to end: points come back in width
    /// order, carry that width's record pool, and render as curves.
    #[test]
    fn micro_sweep_produces_ordered_finite_points() {
        let mut cfg = ScaleConfig::quick();
        cfg.base.n_random = 1;
        cfg.base.session_hours = vec![0.02];
        cfg.base.n_triggered = 0;
        cfg.base.n_transition = 0;
        cfg.widths = vec![2, 16];
        let s = ScaleStudy::run(&cfg).unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].n_ces, 2);
        assert_eq!(s.points[1].n_ces, 16);
        for p in &s.points {
            assert!(p.records > 0, "width {} captured no records", p.n_ces);
            assert!(p.c_w.is_finite() && (0.0..=1.0).contains(&p.c_w));
            assert!(p.missrate.is_finite());
            assert!(p.ce_bus_busy.is_finite());
        }
        let txt = s.render();
        assert!(txt.contains("SCALING STUDY"));
        assert!(txt.contains("C_w curve"));
        // JSON round-trip for the report file the CLI writes.
        let json = serde_json::to_string(&s).unwrap();
        let back: ScaleStudy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
