//! Tables 1–4 and A.1.

use crate::sample::{points_vs_cw, points_vs_pc, Sample};
use crate::study::Study;
use fx8_stats::freq::midpoints;
use fx8_stats::measures::ConcurrencyMeasures;
use fx8_stats::regression::{fit_median_model, FitError, QuadModel};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Table 1: the hardware event counts the monitor reduces buffers to.
/// Static by construction — reproduced for completeness of the index.
pub fn table1() -> String {
    let mut s = String::new();
    s.push_str("TABLE 1. Hardware Event Counts.\n");
    s.push_str("  Name      Event\n");
    s.push_str("  num_j     number of records with j processors active\n");
    s.push_str("  prof_j    number of records with processor j active\n");
    s.push_str("  ceop_j    number of records with CE bus opcode = j\n");
    s.push_str("  membop_j  number of records with mem bus opcode = j\n");
    s
}

/// Table 2: overall concurrency measures pooled over all random sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// The pooled measures (eqns 4.1–4.4).
    pub measures: ConcurrencyMeasures,
}

/// Compute Table 2 from a study.
pub fn table2(study: &Study) -> Table2 {
    Table2 {
        measures: study.overall_measures(),
    }
}

impl Table2 {
    /// Render in the thesis's layout: `c_j` row, then conditional row.
    pub fn render(&self) -> String {
        let m = &self.measures;
        let mut s = String::new();
        s.push_str("TABLE 2. Overall Concurrency Measures for All Sessions.\n");
        s.push_str("  j:        ");
        for j in 0..m.c.len() {
            let _ = write!(s, "{j:>9}");
        }
        s.push('\n');
        s.push_str("  c_j:      ");
        for c in &m.c {
            let _ = write!(s, "{c:>9.4}");
        }
        let _ = writeln!(s, "   C_w = {:.4}", m.workload_concurrency);
        s.push_str("  c_j|c:    ");
        if m.conditional.is_empty() {
            s.push_str("(undefined: no concurrency observed)");
        } else {
            for c in &m.conditional {
                let _ = write!(s, "{c:>9.4}");
            }
            match m.mean_concurrency_level {
                Some(pc) => {
                    let _ = write!(s, "   P_c = {pc:.2}");
                }
                None => s.push_str("   P_c undefined"),
            }
        }
        s.push('\n');
        let _ = writeln!(s, "  total records: {}", m.total_records);
        s
    }
}

/// One fitted model row of Tables 3/4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRow {
    /// System measure name.
    pub measure: String,
    /// The fit (or why it degenerated).
    pub model: Result<QuadModel, FitError>,
}

/// A regression table (Table 3 or 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTable {
    /// Name of the concurrency measure on the x axis.
    pub vs: String,
    /// Fitted rows.
    pub rows: Vec<ModelRow>,
}

impl RegressionTable {
    /// Fetch a row's model by measure name.
    pub fn model(&self, measure: &str) -> Option<&QuadModel> {
        self.rows
            .iter()
            .find(|r| r.measure == measure)
            .and_then(|r| r.model.as_ref().ok())
    }

    /// Render in the thesis's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Regression Models: System Measure vs. {}", self.vs);
        let _ = writeln!(
            s,
            "  {:<26} {:>12} {:>12} {:>12} {:>6}",
            "System Measure", "B1", "B2", "C", "R^2"
        );
        for row in &self.rows {
            match &row.model {
                Ok(m) => {
                    let _ = writeln!(
                        s,
                        "  {:<26} {:>12.3e} {:>12.3e} {:>12.3e} {:>6.2}",
                        row.measure, m.b1, m.b2, m.c, m.r2
                    );
                }
                Err(e) => {
                    let _ = writeln!(s, "  {:<26} (no fit: {e})", row.measure);
                }
            }
        }
        s
    }
}

/// The samples Chapter 5 analyzes: the random-sampling samples plus the
/// all-active-triggered buffers ("the combination of random sampling and
/// high concurrency measurement periods"). Triggered buffers carry no
/// kernel counters (those sessions "dealt with hardware measurements
/// only"), so they are returned separately.
pub fn analysis_samples(study: &Study) -> (Vec<Sample>, Vec<Sample>) {
    let random: Vec<Sample> = study.all_samples().into_iter().cloned().collect();
    let triggered: Vec<Sample> = study
        .triggered
        .iter()
        .flat_map(|bufs| {
            bufs.iter().map(|c| Sample {
                session: 1000 + c.session,
                at_cycle: c.at_cycle,
                counts: c.counts.clone(),
                kernel: Default::default(),
            })
        })
        .collect();
    (random, triggered)
}

/// Midpoints the thesis used for `C_w` (0.0, 0.1, ..., 1.0).
pub fn cw_midpoints() -> Vec<f64> {
    midpoints(0.0, 0.1, 11)
}

/// Midpoints the thesis used for `P_c` (2.0, 3.0, ..., 8.0).
pub fn pc_midpoints() -> Vec<f64> {
    midpoints(2.0, 1.0, 7)
}

/// Table 3: median regression models vs Workload Concurrency.
pub fn table3(study: &Study) -> RegressionTable {
    let (random, triggered) = analysis_samples(study);
    let mut hw: Vec<Sample> = random.clone();
    hw.extend(triggered);
    let mids = cw_midpoints();
    RegressionTable {
        vs: "C_w".into(),
        rows: vec![
            ModelRow {
                measure: "Median Miss Rate".into(),
                model: fit_median_model(&points_vs_cw(&hw, Sample::missrate), &mids),
            },
            ModelRow {
                measure: "Median CE Bus Busy".into(),
                model: fit_median_model(&points_vs_cw(&hw, Sample::ce_bus_busy), &mids),
            },
            ModelRow {
                measure: "Median Page Fault Rate".into(),
                // Software counters exist only for the random samples.
                model: fit_median_model(&points_vs_cw(&random, Sample::page_fault_rate), &mids),
            },
        ],
    }
}

/// Table 4: median regression models vs Mean Concurrency Level.
pub fn table4(study: &Study) -> RegressionTable {
    let (random, triggered) = analysis_samples(study);
    let mut hw: Vec<Sample> = random.clone();
    hw.extend(triggered);
    let mids = pc_midpoints();
    RegressionTable {
        vs: "P_c".into(),
        rows: vec![
            ModelRow {
                measure: "Median Miss Rate".into(),
                model: fit_median_model(&points_vs_pc(&hw, Sample::missrate), &mids),
            },
            ModelRow {
                measure: "Median CE Bus Busy".into(),
                model: fit_median_model(&points_vs_pc(&hw, Sample::ce_bus_busy), &mids),
            },
            ModelRow {
                measure: "Median Page Fault Rate".into(),
                model: fit_median_model(&points_vs_pc(&random, Sample::page_fault_rate), &mids),
            },
        ],
    }
}

/// One row of Table A.1: a session's mean concurrency measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionMeans {
    /// Session index.
    pub session: usize,
    /// Session-pooled Workload Concurrency.
    pub cw: f64,
    /// Session-pooled Mean Concurrency Level (None if never concurrent).
    pub pc: Option<f64>,
    /// Samples in the session.
    pub samples: usize,
}

/// Table A.1: per-session concurrency measures.
pub fn table_a1(study: &Study) -> Vec<SessionMeans> {
    study
        .random_sessions
        .iter()
        .map(|s| {
            let m = ConcurrencyMeasures::from_counts(&s.pooled_num());
            SessionMeans {
                session: s.session,
                cw: m.workload_concurrency,
                pc: m.mean_concurrency_level,
                samples: s.samples.len(),
            }
        })
        .collect()
}

/// Render Table A.1.
pub fn render_table_a1(rows: &[SessionMeans]) -> String {
    let mut s = String::new();
    s.push_str("Table A.1. Mean Concurrency Measures for Random Samples.\n");
    let _ = writeln!(
        s,
        "  {:>8} {:>10} {:>10} {:>9}",
        "SESSION", "C_w", "P_c", "SAMPLES"
    );
    for r in rows {
        let pc =
            r.pc.map_or("        --".to_string(), |p| format!("{p:>10.2}"));
        let _ = writeln!(
            s,
            "  {:>8} {:>10.4} {} {:>9}",
            r.session + 1,
            r.cw,
            pc,
            r.samples
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use fx8_workload::WorkloadMix;

    fn mini_study() -> Study {
        let cfg = StudyConfig {
            n_random: 2,
            session_hours: vec![0.15, 0.15],
            n_triggered: 1,
            captures_per_triggered: 3,
            n_transition: 0,
            mix: WorkloadMix::all_concurrent(),
            ..StudyConfig::paper()
        };
        Study::run(cfg)
    }

    #[test]
    fn table1_lists_all_counts() {
        let t = table1();
        for name in ["num_j", "prof_j", "ceop_j", "membop_j"] {
            assert!(t.contains(name));
        }
    }

    #[test]
    fn table2_renders_and_is_consistent() {
        let study = mini_study();
        let t = table2(&study);
        let s = t.render();
        assert!(s.contains("C_w ="));
        assert!(s.contains("total records"));
        let sum: f64 = t.measures.c.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_tables_have_three_rows_each() {
        let study = mini_study();
        for t in [table3(&study), table4(&study)] {
            assert_eq!(t.rows.len(), 3);
            let s = t.render();
            assert!(s.contains("Median Miss Rate"));
            assert!(s.contains("Median CE Bus Busy"));
            assert!(s.contains("Median Page Fault Rate"));
        }
    }

    #[test]
    fn analysis_samples_split_random_and_triggered() {
        let study = mini_study();
        let (random, triggered) = analysis_samples(&study);
        assert_eq!(random.len(), study.all_samples().len());
        assert_eq!(
            triggered.len(),
            study.triggered.iter().map(Vec::len).sum::<usize>()
        );
        // Triggered buffers are concentrated near full concurrency.
        for t in &triggered {
            assert!(
                t.workload_concurrency() > 0.5,
                "cw {}",
                t.workload_concurrency()
            );
        }
    }

    #[test]
    fn table_a1_has_one_row_per_session() {
        let study = mini_study();
        let rows = table_a1(&study);
        assert_eq!(rows.len(), 2);
        let s = render_table_a1(&rows);
        assert!(s.contains("SESSION"));
        assert_eq!(s.lines().count(), 2 + rows.len());
    }

    #[test]
    fn midpoints_match_the_paper() {
        assert_eq!(cw_midpoints().len(), 11);
        assert_eq!(pc_midpoints(), vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }
}
