//! Correctness suite for the content-addressed session result cache.
//!
//! The cache is only sound because the simulator is bit-deterministic: a
//! cached study must be **indistinguishable** from a freshly computed one.
//! These tests drive a mini study cold and warm through a real on-disk
//! store and assert bit-identity, then attack the store — corrupt entries,
//! truncated entries, foreign keys, a bumped engine-version salt — and
//! assert every attack degrades to a recompute, never to a wrong result.

use fx8_core::cache::{CachedSession, SessionCache, SessionKind};
use fx8_core::experiment::SessionConfig;
use fx8_core::study::{Study, StudyConfig};
use proptest::prelude::*;
use std::path::PathBuf;

/// A unique scratch directory under the system temp dir. Not auto-cleaned
/// (test scratch under tmp), but unique per call so tests never collide.
fn scratch_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock before epoch")
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "fx8-cache-test-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

/// A study small enough to run in a test, with all three session kinds so
/// every cache payload variant round-trips through disk.
fn mini_study() -> StudyConfig {
    let mut cfg = StudyConfig::quick();
    cfg.n_random = 2;
    cfg.session_hours = vec![0.02, 0.03];
    cfg.n_triggered = 1;
    cfg.captures_per_triggered = 2;
    cfg.n_transition = 1;
    cfg.captures_per_transition = 2;
    cfg
}

const MINI_SESSIONS: u64 = 4;

/// The tentpole guarantee: a warm run answered entirely from the on-disk
/// store is bit-identical to the cold run that populated it. The warm run
/// uses a *fresh* `SessionCache`, so every hit must come through the disk
/// layer (JSON round-trip included), not the in-process map.
#[test]
fn warm_disk_run_is_bit_identical_to_cold_run() {
    let dir = scratch_dir("warm");

    let cold_cache = SessionCache::at_dir(&dir);
    let (cold, cold_obs) = Study::run_cached(mini_study(), &cold_cache);
    assert_eq!(cold_obs.cache.hits, 0);
    assert_eq!(cold_obs.cache.misses, MINI_SESSIONS);
    assert_eq!(cold_obs.cache.stores, MINI_SESSIONS);

    let warm_cache = SessionCache::at_dir(&dir);
    let (warm, warm_obs) = Study::run_cached(mini_study(), &warm_cache);
    assert_eq!(
        warm_obs.cache.hits, MINI_SESSIONS,
        "warm run must fully hit"
    );
    assert_eq!(warm_obs.cache.misses, 0);
    assert_eq!(warm_obs.cache.invalid_entries, 0);
    assert!(warm_obs.sessions.iter().all(|s| s.cache_hit));

    assert_eq!(warm, cold, "cached study diverged from computed study");
    // Bit-identity all the way down to the serialized report payload.
    assert_eq!(
        serde_json::to_string(&warm).unwrap(),
        serde_json::to_string(&cold).unwrap()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt, truncate, and garbage every stored entry: the next run must
/// notice (counting invalid entries), fall back to recomputing, and still
/// produce the bit-identical study.
#[test]
fn corrupt_entries_recompute_identically() {
    let dir = scratch_dir("corrupt");
    let (cold, _) = Study::run_cached(mini_study(), &SessionCache::at_dir(&dir));

    let mut mangled = 0u64;
    for (i, entry) in std::fs::read_dir(&dir)
        .expect("cache dir lists")
        .enumerate()
    {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        match i % 3 {
            0 => std::fs::write(&path, "{not json").unwrap(), // parse failure
            1 => {
                // Truncate mid-entry: syntactically broken JSON.
                let text = std::fs::read_to_string(&path).unwrap();
                std::fs::write(&path, &text[..text.len() / 2]).unwrap();
            }
            _ => std::fs::write(&path, "").unwrap(), // empty file
        }
        mangled += 1;
    }
    assert_eq!(mangled, MINI_SESSIONS, "expected one entry per session");

    let cache = SessionCache::at_dir(&dir);
    let (redone, obs) = Study::run_cached(mini_study(), &cache);
    assert_eq!(redone, cold, "recompute after corruption diverged");
    assert_eq!(obs.cache.hits, 0);
    assert_eq!(obs.cache.misses, MINI_SESSIONS);
    assert_eq!(
        obs.cache.invalid_entries, MINI_SESSIONS,
        "every mangled entry must be counted, not silently missed"
    );
    // And the recompute rewrote good entries: a third run fully hits.
    let (again, obs) = Study::run_cached(mini_study(), &SessionCache::at_dir(&dir));
    assert_eq!(again, cold);
    assert_eq!(obs.cache.hits, MINI_SESSIONS);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A bumped engine-version salt must invalidate everything: new keys see
/// an empty store, and even a file renamed onto the new key's path is
/// rejected by its header echo.
#[test]
fn engine_salt_bump_invalidates_stored_entries() {
    let dir = scratch_dir("salt");
    let cfg = SessionConfig {
        hours: 0.01,
        ..SessionConfig::paper(7)
    };

    let v1 = SessionCache::at_dir(&dir);
    let k1 = v1.key(SessionKind::Triggered, &cfg, 0, 2);
    v1.store(
        &k1,
        &CachedSession::Captures {
            captures: Vec::new(),
            audit: Default::default(),
        },
    );
    assert!(v1.lookup(&k1).is_some());

    // The salt reaches the key, so the v2 cache looks elsewhere entirely.
    let v2 = SessionCache::at_dir(&dir).with_engine_salt(u64::MAX);
    let k2 = v2.key(SessionKind::Triggered, &cfg, 0, 2);
    assert_ne!(k1, k2, "engine salt must reach the fingerprint");
    assert!(v2.lookup(&k2).is_none());

    // Adversarial rename: masquerade the v1 entry as the v2 key. The
    // header (engine version + echoed key) must reject it as invalid.
    std::fs::rename(
        dir.join(format!("{}.json", k1.to_hex())),
        dir.join(format!("{}.json", k2.to_hex())),
    )
    .expect("rename stored entry");
    assert!(v2.lookup(&k2).is_none(), "stale-engine entry must not load");
    assert_eq!(v2.stats().invalid_entries, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Key sensitivity: every input that can steer a session result must
    /// reach the fingerprint. Perturbing any one of seed, session length,
    /// sampling cadence, machine width, kind, index, or capture budget
    /// must produce a different key; identical inputs must collide.
    #[test]
    fn every_steering_input_reaches_the_key(
        seed in 0u64..1_000_000,
        idx in 0usize..32,
        captures in 0usize..16,
        width_shift in 1usize..6,
    ) {
        let cache = SessionCache::in_memory();
        let cfg = SessionConfig { hours: 0.01, ..SessionConfig::paper(seed) };
        let base = cache.key(SessionKind::Random, &cfg, idx, captures);

        // Same inputs, fresh key computation: stable.
        prop_assert_eq!(base, cache.key(SessionKind::Random, &cfg, idx, captures));

        // Seed.
        let mut c = cfg.clone();
        c.seed = seed.wrapping_add(1);
        prop_assert_ne!(base, cache.key(SessionKind::Random, &c, idx, captures));

        // Session length.
        let mut c = cfg.clone();
        c.hours += 0.01;
        prop_assert_ne!(base, cache.key(SessionKind::Random, &c, idx, captures));

        // Sampling cadence.
        let mut c = cfg.clone();
        c.sample_interval_s += 1.0;
        prop_assert_ne!(base, cache.key(SessionKind::Random, &c, idx, captures));

        // Machine width.
        let mut c = cfg.clone();
        c.machine = fx8_sim::MachineConfig::scaled(1 << width_shift);
        if c.machine != cfg.machine {
            prop_assert_ne!(base, cache.key(SessionKind::Random, &c, idx, captures));
        }

        // Kind, index, capture budget.
        prop_assert_ne!(base, cache.key(SessionKind::Transition, &cfg, idx, captures));
        prop_assert_ne!(base, cache.key(SessionKind::Random, &cfg, idx + 1, captures));
        prop_assert_ne!(base, cache.key(SessionKind::Random, &cfg, idx, captures + 1));
    }
}
