//! Differential tests for the dense SoA batch stepper.
//!
//! The `dense_stepping` knob must be a pure performance switch: with it on
//! the simulator takes the lane-packed fast path through fully-concurrent
//! loop windows, with it off every cycle goes through the scalar stepper —
//! and the two trajectories must be **bit-identical**: same machine-state
//! digest, same probe-word stream, same RNG draw order, and therefore the
//! same study results across all three measurement protocols of § 3.5.

use fx8_core::experiment::{
    run_random_session, run_transition_session, run_triggered_session, SessionConfig,
};
use fx8_sim::addr::VAddr;
use fx8_sim::stream::{CodeRegion, LoopBody, SerialCode, StridedLoop, StridedSerial};
use fx8_sim::{Cluster, MachineConfig};

fn serial_code(asid: fx8_sim::Asid) -> Box<dyn SerialCode> {
    Box::new(StridedSerial::new(
        CodeRegion {
            base: VAddr::new(asid, 0),
            footprint_bytes: 512,
            bytes_per_instr: 4,
        },
        VAddr::new(asid, 0x10_0000),
        8,
        4096,
        3,
    ))
}

fn loop_body(asid: fx8_sim::Asid) -> Box<dyn LoopBody> {
    Box::new(StridedLoop {
        region: CodeRegion {
            base: VAddr::new(asid, 0x1000),
            footprint_bytes: 256,
            bytes_per_instr: 4,
        },
        src: VAddr::new(asid, 0x20_0000),
        dst: VAddr::new(asid, 0x30_0000),
        elem: 8,
        compute: 120,
    })
}

fn machine(dense: bool) -> MachineConfig {
    let mut cfg = MachineConfig::fx8();
    cfg.dense_stepping = dense;
    cfg
}

/// Drive a loop workload with dense stepping on and off through an
/// interleaved run/capture schedule and assert the trajectories are
/// bit-identical. Returns the dense-stepped cycle count of the on-run.
fn assert_dense_identical(run_cycles: u64) -> u64 {
    let drive = |cfg: MachineConfig| {
        let mut c = Cluster::new(cfg, 42);
        c.set_ip_intensity(0.12);
        c.mount_loop(loop_body(1), 0, 50_000, serial_code(1), 1);
        let mut words = Vec::new();
        // Interleave quiet runs with captures so dense windows both open
        // (run) and get cut short by probe deadlines (capture).
        for _ in 0..4 {
            c.run(run_cycles / 4);
            words.extend(c.capture(100));
        }
        let dense = c.dense_counters().0;
        (c.state_digest(), words, dense)
    };
    let (d_on, w_on, dense_on) = drive(machine(true));
    let (d_off, w_off, dense_off) = drive(machine(false));
    assert_eq!(dense_off, 0, "knob off must never dense-step");
    assert_eq!(d_on, d_off, "dense stepping diverged the machine state");
    assert_eq!(w_on, w_off, "dense stepping diverged the probe stream");
    dense_on
}

#[test]
fn cluster_trajectory_bit_identical_with_dense_stepping() {
    let dense = assert_dense_identical(40_000);
    if cfg!(feature = "audit") {
        assert_eq!(dense, 0, "audit builds never dense-step");
    } else {
        assert!(dense > 20_000, "loop barely dense-stepped: {dense}");
    }
}

/// Same differential under bank contention: a slow cache service time
/// makes denied CEs spin in retry windows the dense kernel must hand back
/// to the fast-forward engine without consuming them.
#[test]
fn cluster_trajectory_bit_identical_under_contention() {
    let drive = |dense: bool| {
        let mut cfg = machine(dense);
        cfg.cache_hit_cycles = 9;
        let mut c = Cluster::new(cfg, 7);
        c.set_ip_intensity(0.12);
        c.mount_loop(loop_body(1), 0, 5_000, serial_code(1), 1);
        c.run(60_000);
        (c.state_digest(), c.capture(200))
    };
    assert_eq!(drive(true), drive(false));
}

/// Sweep every crossbar arbitration discipline under bank contention.
/// The SWAR arbiter resolves winners through the same policy scan but
/// defers denial accounting to a window-exit flush, so each discipline's
/// rotor movement and counter totals must match the scalar per-cycle path
/// exactly — and the denial path must actually fire, or the flush is
/// untested.
#[test]
fn dense_stepping_identical_across_arbitration_disciplines() {
    use fx8_sim::config::Arbitration;
    for arb in [
        Arbitration::FixedLowFirst,
        Arbitration::EndsFirst,
        Arbitration::CenterFirst,
        Arbitration::RoundRobin,
    ] {
        let drive = |dense: bool| {
            let mut cfg = machine(dense);
            cfg.crossbar_arbitration = arb;
            // Slow banks + a tight loop body: many lanes collide on the
            // same bank, so the deferred-denial flush carries real weight.
            cfg.cache_hit_cycles = 6;
            let mut c = Cluster::new(cfg, 21);
            c.set_ip_intensity(0.12);
            let body = Box::new(StridedLoop {
                region: CodeRegion {
                    base: VAddr::new(1, 0x1000),
                    footprint_bytes: 256,
                    bytes_per_instr: 4,
                },
                src: VAddr::new(1, 0x20_0000),
                dst: VAddr::new(1, 0x30_0000),
                elem: 8,
                compute: 6,
            });
            c.mount_loop(body, 0, 20_000, serial_code(1), 1);
            c.run(50_000);
            (c.state_digest(), c.crossbar_stats().clone())
        };
        let (d_on, x_on) = drive(true);
        let (d_off, x_off) = drive(false);
        assert_eq!(d_on, d_off, "{arb:?}: dense stepping diverged the state");
        assert_eq!(x_on, x_off, "{arb:?}: crossbar counters diverged");
        assert!(
            x_on.denials > 0,
            "{arb:?}: contention run recorded no denials — flush untested"
        );
    }
}

/// The width-generic tentpole: the dense SoA, fast-forward, and scalar
/// engines must stay bit-identical at every scaling-study width, not just
/// on the measured 8-CE machine. Each width runs the scaled preset with a
/// little bank contention so the packed-counter group chunking (one SWAR
/// word per 8 lanes) carries real weight above width 8.
#[test]
fn cluster_trajectory_bit_identical_at_sampled_widths() {
    for width in [2usize, 8, 16, 32, 64] {
        let drive = |dense: bool, ff: bool| {
            let mut cfg = MachineConfig::scaled(width);
            cfg.dense_stepping = dense;
            cfg.fast_forward = ff;
            cfg.cache_hit_cycles = 3;
            let mut c = Cluster::new(cfg, 42 + width as u64);
            c.set_ip_intensity(0.12);
            c.mount_loop(loop_body(1), 0, 20_000, serial_code(1), 1);
            let mut words = Vec::new();
            for _ in 0..3 {
                c.run(12_000);
                words.extend(c.capture(100));
            }
            (c.state_digest(), words)
        };
        let all_on = drive(true, true);
        let scalar = drive(false, false);
        assert_eq!(
            all_on, scalar,
            "width {width}: dense+fast-forward diverged from scalar"
        );
        let ff_only = drive(false, true);
        assert_eq!(ff_only, scalar, "width {width}: fast-forward diverged");
        let dense_only = drive(true, false);
        assert_eq!(dense_only, scalar, "width {width}: dense diverged");
    }
}

fn quick_cfg(seed: u64, dense: bool) -> SessionConfig {
    SessionConfig {
        machine: machine(dense),
        ..SessionConfig::quick(seed)
    }
}

#[test]
fn random_sessions_bit_identical_with_dense_stepping() {
    let on = run_random_session(&quick_cfg(11, true), 0);
    let off = run_random_session(&quick_cfg(11, false), 0);
    assert_eq!(on, off, "random-sampling protocol diverged");
}

#[test]
fn triggered_sessions_bit_identical_with_dense_stepping() {
    let (on, _) = run_triggered_session(&quick_cfg(12, true), 0, 3);
    let (off, _) = run_triggered_session(&quick_cfg(12, false), 0, 3);
    assert!(!on.is_empty(), "triggered session captured nothing");
    assert_eq!(on, off, "all-active-triggered protocol diverged");
}

#[test]
fn transition_sessions_bit_identical_with_dense_stepping() {
    let (on, _) = run_transition_session(&quick_cfg(13, true), 0, 3);
    let (off, _) = run_transition_session(&quick_cfg(13, false), 0, 3);
    assert!(!on.is_empty(), "transition session captured nothing");
    assert_eq!(on, off, "transition-triggered protocol diverged");
}

/// Audit builds force the scalar stepper regardless of the knob; a session
/// run with `dense_stepping` left on must still audit clean, proving the
/// knob cannot smuggle the fast path past the invariant checks.
#[cfg(feature = "audit")]
#[test]
fn audited_session_with_dense_stepping_on_is_clean() {
    let r = run_random_session(&quick_cfg(14, true), 0);
    assert!(
        r.audit.is_clean(),
        "audited session reported violations: {:?}",
        r.audit
    );
}

/// The invariant auditor at a width the real machine never had: a full
/// quick session on a scaled 32-CE cluster must audit clean, so the
/// width-generic model satisfies the same probe/CCB/crossbar invariants
/// the 8-CE machine does.
#[cfg(feature = "audit")]
#[test]
fn audited_session_at_width_32_is_clean() {
    let cfg = SessionConfig {
        machine: MachineConfig::scaled(32),
        ..SessionConfig::quick(15)
    };
    let r = run_random_session(&cfg, 0);
    assert!(
        r.audit.is_clean(),
        "audited 32-CE session reported violations: {:?}",
        r.audit
    );
}
