//! Shared fixtures for the benchmark suite and the reproduce harness.

use fx8_core::study::{Study, StudyConfig};
use fx8_sim::stream::{LoopBody, SerialCode};
use fx8_sim::{Cluster, MachineConfig};
use fx8_workload::{kernels, WorkloadMix};
use std::sync::OnceLock;

/// A small study shared by data-shaping benches (built once).
pub fn shared_quick_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| {
        let cfg = StudyConfig {
            n_random: 3,
            session_hours: vec![0.25, 0.25, 0.25],
            n_triggered: 2,
            captures_per_triggered: 8,
            n_transition: 2,
            captures_per_transition: 8,
            ..StudyConfig::paper()
        };
        Study::run(cfg)
    })
}

/// A cluster with a long concurrent loop mounted and warmed.
pub fn warm_loop_cluster(seed: u64) -> Cluster {
    let mut c = Cluster::new(MachineConfig::fx8(), seed);
    c.set_ip_intensity(WorkloadMix::csrd_production().ip_intensity);
    let k = kernels::sor_sweep(1026);
    c.mount_loop(loop_body(&k), 0, 1_000_000, glue(), 1);
    c.run(20_000);
    c
}

/// Instantiate a loop kernel for ASID 1.
pub fn loop_body(k: &kernels::LoopKernel) -> Box<dyn LoopBody> {
    k.instantiate(1)
}

/// The standard glue serial stream for ASID 1.
pub fn glue() -> Box<dyn SerialCode> {
    kernels::glue_serial().instantiate(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_cluster_is_fully_concurrent() {
        let mut c = warm_loop_cluster(3);
        let words = c.capture(256);
        let full = words.iter().filter(|w| w.active_count() == 8).count();
        assert!(full > 200, "{full}/256 records full");
    }
}
