//! # fx8-bench — benchmark fixtures and the reproduce harness
//!
//! The Criterion benches under `benches/` regenerate (and time) the data
//! pipeline behind every table and figure; the `reproduce` binary prints
//! them at paper scale. [`helpers`] holds the shared fixtures.

pub mod helpers;
pub mod throughput;
