//! Simulation-throughput measurement: cycles simulated per wall-clock
//! second for the machine states the workload alternates between (plus a
//! skip-heavy join-wait loop that showcases event-horizon fast-forward),
//! each state's `cycles_skipped / cycles_total` skip ratio, and the wall
//! time of a full quick study.
//!
//! This is the perf trajectory of the repository: `reproduce --bench-json`
//! writes the numbers to `BENCH_throughput.json` at the repo root under a
//! `current` key, preserving the committed `baseline` so speedups and
//! regressions stay visible across PRs (`--as-baseline` rewrites the
//! baseline too). The `throughput` bench prints the same measurements.

use fx8_core::study::{Study, StudyConfig};
use fx8_sim::{Cluster, MachineConfig};
use fx8_workload::{kernels, WorkloadMix};
use serde::Serialize;
use std::time::Instant;

/// One set of throughput measurements.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ThroughputNumbers {
    /// Cycles/sec with no process mounted (IP background traffic only).
    pub idle_cycles_per_sec: f64,
    /// Cycles/sec with a serial process on CE 0.
    pub serial_cycles_per_sec: f64,
    /// Cycles/sec with a full-width concurrent loop running.
    pub loop_cycles_per_sec: f64,
    /// Cycles/sec with the dependence-bound join-wait loop running — the
    /// fast-forward engine's best case among mounted workloads, where one
    /// CE computes the critical section while seven wait on the CCB.
    pub ff_loop_cycles_per_sec: f64,
    /// `cycles_skipped / cycles_total` for the idle measurement.
    pub idle_skip_ratio: f64,
    /// `cycles_skipped / cycles_total` for the serial measurement.
    pub serial_skip_ratio: f64,
    /// `cycles_skipped / cycles_total` for the full-width loop measurement.
    pub loop_skip_ratio: f64,
    /// `cycles_skipped / cycles_total` for the join-wait loop measurement.
    pub ff_loop_skip_ratio: f64,
    /// `cycles_dense / cycles_total` for the full-width loop measurement:
    /// the fraction of the busy loop regime that ran through the dense SoA
    /// batch stepper instead of the scalar per-cycle stepper.
    pub dense_ratio: f64,
    /// Wall time of `Study::run(StudyConfig::quick())`, seconds.
    pub quick_study_wall_s: f64,
}

// Hand-written so files from before the fast-forward engine still load:
// the vendored serde errors on any missing field, so the fields this PR
// added deserialize as 0.0 ("not measured") when a stored file lacks them.
impl serde::Deserialize for ThroughputNumbers {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let req = |name: &str| -> Result<f64, serde::Error> {
            serde::Deserialize::from_value(
                v.get(name)
                    .ok_or_else(|| serde::Error::missing_field(name))?,
            )
        };
        let opt = |name: &str| -> Result<f64, serde::Error> {
            match v.get(name) {
                Some(x) => serde::Deserialize::from_value(x),
                None => Ok(0.0),
            }
        };
        Ok(ThroughputNumbers {
            idle_cycles_per_sec: req("idle_cycles_per_sec")?,
            serial_cycles_per_sec: req("serial_cycles_per_sec")?,
            loop_cycles_per_sec: req("loop_cycles_per_sec")?,
            ff_loop_cycles_per_sec: opt("ff_loop_cycles_per_sec")?,
            idle_skip_ratio: opt("idle_skip_ratio")?,
            serial_skip_ratio: opt("serial_skip_ratio")?,
            loop_skip_ratio: opt("loop_skip_ratio")?,
            ff_loop_skip_ratio: opt("ff_loop_skip_ratio")?,
            dense_ratio: opt("dense_ratio")?,
            quick_study_wall_s: req("quick_study_wall_s")?,
        })
    }
}

/// The persisted `BENCH_throughput.json` contents.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchFile {
    /// Measurement taken before the zero-allocation stepper landed.
    pub baseline: ThroughputNumbers,
    /// Measurement for the current tree.
    pub current: ThroughputNumbers,
    /// `current.loop_cycles_per_sec / baseline.loop_cycles_per_sec`.
    pub loop_speedup: f64,
    /// Measurement with the `audit` feature compiled in, if one has been
    /// taken — the overhead record that shows feature-off throughput is
    /// untouched by the invariant auditor.
    pub audited: Option<ThroughputNumbers>,
}

// Hand-written so files from before the `audited` field still load: the
// vendored serde errors on any missing field, and it has no `default`
// attribute to say otherwise.
impl serde::Deserialize for BenchFile {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| v.get(name).ok_or_else(|| serde::Error::missing_field(name));
        Ok(BenchFile {
            baseline: serde::Deserialize::from_value(field("baseline")?)?,
            current: serde::Deserialize::from_value(field("current")?)?,
            loop_speedup: serde::Deserialize::from_value(field("loop_speedup")?)?,
            audited: match v.get("audited") {
                Some(a) => serde::Deserialize::from_value(a)?,
                None => None,
            },
        })
    }
}

/// A cluster with only IP background traffic.
pub fn idle_cluster(seed: u64) -> Cluster {
    let mut c = Cluster::new(MachineConfig::fx8(), seed);
    c.set_ip_intensity(WorkloadMix::csrd_production().ip_intensity);
    c
}

/// A cluster running a detached serial process on CE 0.
pub fn serial_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    c.mount_serial(kernels::scalar_serial().instantiate(1), 1, None);
    c.run(5_000);
    c
}

/// A cluster with a long full-width concurrent loop mounted and warmed.
pub fn loop_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    let k = kernels::sor_sweep(1026);
    c.mount_loop(
        k.instantiate(1),
        0,
        1_000_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    c.run(20_000);
    c
}

/// A cluster running a dependence-bound "join-wait" loop: nearly the whole
/// iteration body sits inside the iteration-carried critical section, so
/// at any instant one CE computes while the other seven block on the CCB
/// sync register — the fast-forward engine's best mounted-workload case.
pub fn join_wait_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    let k = kernels::LoopKernel {
        name: "join-wait".into(),
        iters: 1_000_000_000,
        panel_lines: 16,
        panel_refs: 2,
        stream_lines: 1,
        store_lines: 1,
        compute: 400,
        code_bytes: 512,
        dependence: Some(0.95),
        variance: 0.0,
    };
    c.mount_loop(
        k.instantiate(1),
        0,
        1_000_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    c.run(20_000);
    c
}

/// `cycles_skipped / cycles_total` over everything `cluster` has run.
pub fn skip_ratio(cluster: &Cluster) -> f64 {
    let (skipped, total) = cluster.skip_counters();
    if total == 0 {
        0.0
    } else {
        skipped as f64 / total as f64
    }
}

/// `cycles_dense / cycles_total` over everything `cluster` has run.
pub fn dense_ratio(cluster: &Cluster) -> f64 {
    let (dense, total) = cluster.dense_counters();
    if total == 0 {
        0.0
    } else {
        dense as f64 / total as f64
    }
}

/// Independent timing repetitions per mounted state. The rate reported is
/// the **maximum** over the repetitions: on a shared (single-vCPU CI)
/// machine any window can lose an arbitrary slice of wall clock to
/// preemption, which only ever *lowers* a measured rate, so the fastest
/// repetition is the least-contaminated estimate of the simulator's
/// actual speed. Three windows of `min_wall_s / 3` keep total bench time
/// unchanged while making it likely one window lands in quiet time.
const MEASURE_REPS: u32 = 3;

/// Cycles/sec of `Cluster::run` on `cluster`: best of `MEASURE_REPS`
/// timing windows totalling at least `min_wall_s` of wall clock, each
/// stepped in `chunk`-cycle slices.
pub fn measure_run(cluster: &mut Cluster, chunk: u64, min_wall_s: f64) -> f64 {
    // Warm the caches and branch predictors before timing.
    cluster.run(chunk.min(10_000));
    let window_s = min_wall_s / MEASURE_REPS as f64;
    let mut best = 0.0f64;
    for _ in 0..MEASURE_REPS {
        let start = Instant::now();
        let mut cycles = 0u64;
        let rate = loop {
            cluster.run(chunk);
            cycles += chunk;
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= window_s {
                break cycles as f64 / elapsed;
            }
        };
        best = best.max(rate);
    }
    best
}

/// Measure every throughput number, including each mounted state's
/// fast-forward skip ratio. `min_wall_s` bounds the timing window per
/// machine state; `study_cfg` is the study timed for the last number
/// (`StudyConfig::quick()` for the persisted measurements — smoke tests
/// pass something smaller).
pub fn measure(min_wall_s: f64, study_cfg: StudyConfig) -> ThroughputNumbers {
    const CHUNK: u64 = 100_000;
    let mut idle = idle_cluster(1);
    let mut serial = serial_cluster(2);
    let mut looped = loop_cluster(3);
    let mut ff_loop = join_wait_cluster(4);
    let idle_rate = measure_run(&mut idle, CHUNK, min_wall_s);
    let serial_rate = measure_run(&mut serial, CHUNK, min_wall_s);
    let loop_rate = measure_run(&mut looped, CHUNK, min_wall_s);
    let ff_loop_rate = measure_run(&mut ff_loop, CHUNK, min_wall_s);
    let t0 = Instant::now();
    let study = Study::run(study_cfg);
    let quick_wall = t0.elapsed().as_secs_f64();
    assert!(study.pooled_counts().records > 0, "study produced no data");
    ThroughputNumbers {
        idle_cycles_per_sec: idle_rate,
        serial_cycles_per_sec: serial_rate,
        loop_cycles_per_sec: loop_rate,
        ff_loop_cycles_per_sec: ff_loop_rate,
        idle_skip_ratio: skip_ratio(&idle),
        serial_skip_ratio: skip_ratio(&serial),
        loop_skip_ratio: skip_ratio(&looped),
        ff_loop_skip_ratio: skip_ratio(&ff_loop),
        dense_ratio: dense_ratio(&looped),
        quick_study_wall_s: quick_wall,
    }
}

/// Render one measurement as an aligned text block.
pub fn render(label: &str, n: &ThroughputNumbers) -> String {
    format!(
        "{label}:\n  idle:    {:>12.0} cycles/s  (skip {:.1}%)\n  serial:  {:>12.0} cycles/s  (skip {:.1}%)\n  loop:    {:>12.0} cycles/s  (skip {:.1}%, dense {:.1}%)\n  ff loop: {:>12.0} cycles/s  (skip {:.1}%)\n  quick study: {:.2} s\n",
        n.idle_cycles_per_sec,
        n.idle_skip_ratio * 100.0,
        n.serial_cycles_per_sec,
        n.serial_skip_ratio * 100.0,
        n.loop_cycles_per_sec,
        n.loop_skip_ratio * 100.0,
        n.dense_ratio * 100.0,
        n.ff_loop_cycles_per_sec,
        n.ff_loop_skip_ratio * 100.0,
        n.quick_study_wall_s
    )
}

/// Merge a fresh measurement into the bench file: keep the stored baseline
/// unless `as_baseline` (or no previous file) makes this run the baseline.
///
/// An `audited_run` (built with the `audit` feature) records under the
/// `audited` key and leaves the feature-off trajectory untouched, so the
/// committed baseline/current numbers always describe the unaudited
/// stepper; conversely a feature-off run preserves any stored `audited`
/// measurement.
pub fn merge(
    previous: Option<BenchFile>,
    measured: ThroughputNumbers,
    as_baseline: bool,
    audited_run: bool,
) -> BenchFile {
    if audited_run {
        return match previous {
            Some(prev) => BenchFile {
                audited: Some(measured),
                ..prev
            },
            // Nothing to preserve: the audited numbers stand in everywhere
            // until a feature-off run replaces baseline/current.
            None => BenchFile {
                baseline: measured.clone(),
                current: measured.clone(),
                loop_speedup: 1.0,
                audited: Some(measured),
            },
        };
    }
    let audited = previous.as_ref().and_then(|p| p.audited.clone());
    let baseline = match previous {
        Some(prev) if !as_baseline => prev.baseline,
        _ => measured.clone(),
    };
    let loop_speedup = measured.loop_cycles_per_sec / baseline.loop_cycles_per_sec;
    BenchFile {
        baseline,
        current: measured,
        loop_speedup,
        audited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbers(loop_rate: f64) -> ThroughputNumbers {
        ThroughputNumbers {
            idle_cycles_per_sec: 1.0,
            serial_cycles_per_sec: 2.0,
            loop_cycles_per_sec: loop_rate,
            ff_loop_cycles_per_sec: 4.0,
            idle_skip_ratio: 0.9,
            serial_skip_ratio: 0.5,
            loop_skip_ratio: 0.1,
            ff_loop_skip_ratio: 0.8,
            dense_ratio: 0.7,
            quick_study_wall_s: 3.0,
        }
    }

    #[test]
    fn merge_keeps_previous_baseline() {
        let first = merge(None, numbers(100.0), false, false);
        assert_eq!(first.baseline, first.current);
        assert!((first.loop_speedup - 1.0).abs() < 1e-12);
        let second = merge(Some(first.clone()), numbers(250.0), false, false);
        assert_eq!(second.baseline, numbers(100.0));
        assert_eq!(second.current, numbers(250.0));
        assert!((second.loop_speedup - 2.5).abs() < 1e-12);
        let rebased = merge(Some(second), numbers(300.0), true, false);
        assert_eq!(rebased.baseline, numbers(300.0));
    }

    #[test]
    fn audited_runs_never_touch_the_unaudited_trajectory() {
        let base = merge(None, numbers(100.0), false, false);
        let with_audit = merge(Some(base.clone()), numbers(60.0), false, true);
        assert_eq!(with_audit.baseline, base.baseline);
        assert_eq!(with_audit.current, base.current);
        assert_eq!(with_audit.loop_speedup, base.loop_speedup);
        assert_eq!(with_audit.audited, Some(numbers(60.0)));
        // ...and a later feature-off run preserves the audited record.
        let later = merge(Some(with_audit), numbers(120.0), false, false);
        assert_eq!(later.current, numbers(120.0));
        assert_eq!(later.audited, Some(numbers(60.0)));
    }

    #[test]
    fn bench_file_round_trips_as_json() {
        let f = merge(None, numbers(42.0), true, false);
        let json = serde_json::to_string(&f).unwrap();
        let back: BenchFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        let with_audit = merge(Some(f), numbers(30.0), false, true);
        let json = serde_json::to_string(&with_audit).unwrap();
        let back: BenchFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with_audit);
    }

    #[test]
    fn bench_file_without_audited_key_still_loads() {
        // Files written before the `audited` field must deserialize: the
        // vendored serde errors on missing fields unless handled by hand.
        let f = merge(None, numbers(10.0), true, false);
        let json = serde_json::to_string(&f).unwrap();
        let stripped = json
            .replace(",\"audited\":null", "")
            .replace("\"audited\":null,", "");
        assert!(
            !stripped.contains("audited"),
            "test strips the new key: {stripped}"
        );
        let back: BenchFile = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.baseline, f.baseline);
        assert_eq!(back.audited, None);
    }

    #[test]
    fn measure_run_reports_positive_rate() {
        let rate = measure_run(&mut idle_cluster(9), 2_000, 0.01);
        assert!(rate > 0.0);
    }

    #[test]
    fn numbers_without_fast_forward_fields_still_load() {
        // BENCH files written before the fast-forward engine carry only the
        // original four fields; they must load with the new ones at 0.0.
        let json = r#"{
            "idle_cycles_per_sec": 5.0,
            "serial_cycles_per_sec": 6.0,
            "loop_cycles_per_sec": 7.0,
            "quick_study_wall_s": 8.0
        }"#;
        let n: ThroughputNumbers = serde_json::from_str(json).unwrap();
        assert_eq!(n.idle_cycles_per_sec, 5.0);
        assert_eq!(n.quick_study_wall_s, 8.0);
        assert_eq!(n.ff_loop_cycles_per_sec, 0.0);
        assert_eq!(n.idle_skip_ratio, 0.0);
        assert_eq!(n.ff_loop_skip_ratio, 0.0);
        assert_eq!(n.dense_ratio, 0.0, "pre-dense-stepper files default to 0");
    }

    #[test]
    fn full_loop_cluster_is_dense_heavy() {
        // The full-width loop keeps every CE busy, which is exactly the
        // dense SoA stepper's domain.
        let mut c = loop_cluster(7);
        c.run(200_000);
        let ratio = dense_ratio(&c);
        if cfg!(feature = "audit") {
            assert_eq!(ratio, 0.0, "audit builds never dense-step");
        } else {
            assert!(ratio > 0.9, "loop dense ratio too low: {ratio}");
        }
    }

    #[test]
    fn numbers_round_trip_with_fast_forward_fields() {
        let n = numbers(42.0);
        let json = serde_json::to_string(&n).unwrap();
        let back: ThroughputNumbers = serde_json::from_str(&json).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn join_wait_cluster_is_skip_heavy() {
        // The join-wait kernel serializes its iterations, so fast-forward
        // should skip most cycles; the full-width loop should skip fewer.
        let mut ff = join_wait_cluster(5);
        ff.run(200_000);
        let ratio = skip_ratio(&ff);
        if cfg!(feature = "audit") {
            assert_eq!(ratio, 0.0, "audit builds never skip");
        } else {
            assert!(ratio > 0.5, "join-wait skip ratio too low: {ratio}");
        }
    }
}
