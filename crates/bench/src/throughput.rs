//! Simulation-throughput measurement: cycles simulated per wall-clock
//! second for the machine states the workload alternates between (plus a
//! skip-heavy join-wait loop that showcases event-horizon fast-forward),
//! each state's `cycles_skipped / cycles_total` skip ratio, and the wall
//! time of a full quick study.
//!
//! This is the perf trajectory of the repository: `reproduce --bench-json`
//! writes the numbers to `BENCH_throughput.json` at the repo root under a
//! `current` key, preserving the committed `baseline` so speedups and
//! regressions stay visible across PRs (`--as-baseline` rewrites the
//! baseline too). The `throughput` bench prints the same measurements.

use fx8_core::cache::SessionCache;
use fx8_core::scale::{ScaleConfig, ScaleStudy};
use fx8_core::study::{Study, StudyConfig};
use fx8_sim::{Cluster, ConfigError, MachineConfig};
use fx8_workload::{kernels, WorkloadMix};
use serde::Serialize;
use std::time::Instant;

/// One set of throughput measurements.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ThroughputNumbers {
    /// Cycles/sec with no process mounted (IP background traffic only).
    pub idle_cycles_per_sec: f64,
    /// Cycles/sec with a serial process on CE 0.
    pub serial_cycles_per_sec: f64,
    /// Cycles/sec with a full-width concurrent loop running.
    pub loop_cycles_per_sec: f64,
    /// Cycles/sec with the dependence-bound join-wait loop running — the
    /// fast-forward engine's best case among mounted workloads, where one
    /// CE computes the critical section while seven wait on the CCB.
    pub ff_loop_cycles_per_sec: f64,
    /// `cycles_skipped / cycles_total` for the idle measurement.
    pub idle_skip_ratio: f64,
    /// `cycles_skipped / cycles_total` for the serial measurement.
    pub serial_skip_ratio: f64,
    /// `cycles_skipped / cycles_total` for the full-width loop measurement.
    pub loop_skip_ratio: f64,
    /// `cycles_skipped / cycles_total` for the join-wait loop measurement.
    pub ff_loop_skip_ratio: f64,
    /// `cycles_dense / cycles_total` for the full-width loop measurement:
    /// the fraction of the busy loop regime that ran through the dense SoA
    /// batch stepper instead of the scalar per-cycle stepper.
    pub dense_ratio: f64,
    /// Coefficient of variation (stddev/mean) across the idle timing
    /// windows — how noisy the runner was while this number was taken.
    /// `0.0` in files written before the CoV-adaptive harness.
    pub idle_cov: f64,
    /// CoV across the serial timing windows.
    pub serial_cov: f64,
    /// CoV across the full-width loop timing windows.
    pub loop_cov: f64,
    /// CoV across the join-wait loop timing windows.
    pub ff_loop_cov: f64,
    /// Total timing windows the adaptive harness ran across the four
    /// mounted states (minimum [`MIN_WINDOWS`] each; more when the rates
    /// would not settle under the CoV threshold). `0` in older files.
    pub bench_windows: u64,
    /// Wall time of `Study::run(StudyConfig::quick())`, seconds.
    pub quick_study_wall_s: f64,
    /// Wall time of an *identical* quick study rerun against a warm
    /// session result cache, seconds: every session hits, so this is the
    /// cache's assembly-and-lookup floor. `0.0` in files from before the
    /// session cache.
    pub quick_study_warm_wall_s: f64,
    /// Wall time of an incremental width sweep ({2, base width}) against
    /// the same warm cache, seconds: the base width's sessions all hit and
    /// only width 2 computes, so this approximates the cost of *adding one
    /// width* to an already-swept grid. `0.0` in older files.
    pub scale_sweep_wall_s: f64,
}

// Hand-written so files from before the fast-forward engine still load:
// the vendored serde errors on any missing field, so the fields this PR
// added deserialize as 0.0 ("not measured") when a stored file lacks them.
impl serde::Deserialize for ThroughputNumbers {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let req = |name: &str| -> Result<f64, serde::Error> {
            serde::Deserialize::from_value(
                v.get(name)
                    .ok_or_else(|| serde::Error::missing_field(name))?,
            )
        };
        let opt = |name: &str| -> Result<f64, serde::Error> {
            match v.get(name) {
                Some(x) => serde::Deserialize::from_value(x),
                None => Ok(0.0),
            }
        };
        Ok(ThroughputNumbers {
            idle_cycles_per_sec: req("idle_cycles_per_sec")?,
            serial_cycles_per_sec: req("serial_cycles_per_sec")?,
            loop_cycles_per_sec: req("loop_cycles_per_sec")?,
            ff_loop_cycles_per_sec: opt("ff_loop_cycles_per_sec")?,
            idle_skip_ratio: opt("idle_skip_ratio")?,
            serial_skip_ratio: opt("serial_skip_ratio")?,
            loop_skip_ratio: opt("loop_skip_ratio")?,
            ff_loop_skip_ratio: opt("ff_loop_skip_ratio")?,
            dense_ratio: opt("dense_ratio")?,
            idle_cov: opt("idle_cov")?,
            serial_cov: opt("serial_cov")?,
            loop_cov: opt("loop_cov")?,
            ff_loop_cov: opt("ff_loop_cov")?,
            bench_windows: match v.get("bench_windows") {
                Some(x) => serde::Deserialize::from_value(x)?,
                None => 0,
            },
            quick_study_wall_s: req("quick_study_wall_s")?,
            quick_study_warm_wall_s: opt("quick_study_warm_wall_s")?,
            scale_sweep_wall_s: opt("scale_sweep_wall_s")?,
        })
    }
}

/// The persisted `BENCH_throughput.json` contents.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchFile {
    /// Measurement taken before the zero-allocation stepper landed.
    pub baseline: ThroughputNumbers,
    /// Measurement for the current tree.
    pub current: ThroughputNumbers,
    /// `current.loop_cycles_per_sec / baseline.loop_cycles_per_sec`.
    pub loop_speedup: f64,
    /// Measurement with the `audit` feature compiled in, if one has been
    /// taken — the overhead record that shows feature-off throughput is
    /// untouched by the invariant auditor.
    pub audited: Option<ThroughputNumbers>,
}

// Hand-written so files from before the `audited` field still load: the
// vendored serde errors on any missing field, and it has no `default`
// attribute to say otherwise.
impl serde::Deserialize for BenchFile {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| v.get(name).ok_or_else(|| serde::Error::missing_field(name));
        Ok(BenchFile {
            baseline: serde::Deserialize::from_value(field("baseline")?)?,
            current: serde::Deserialize::from_value(field("current")?)?,
            loop_speedup: serde::Deserialize::from_value(field("loop_speedup")?)?,
            audited: match v.get("audited") {
                Some(a) => serde::Deserialize::from_value(a)?,
                None => None,
            },
        })
    }
}

/// Why a committed `BENCH_throughput.json` could not be loaded: the file
/// is absent/unreadable, or it read fine but does not parse as a bench
/// file (malformed JSON, or a kernel entry missing — the deserializer
/// names the absent field). The regression gate reports these as ordinary
/// diagnostics instead of panicking.
#[derive(Debug)]
pub enum BenchLoadError {
    /// The file could not be read at all.
    Io {
        /// Path the gate tried to read.
        path: String,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// The file read but is not a valid bench file.
    Parse {
        /// Path the gate read.
        path: String,
        /// What the parser rejected (e.g. `missing field loop_cycles_per_sec`).
        detail: String,
    },
}

impl std::fmt::Display for BenchLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchLoadError::Io { path, source } => {
                write!(f, "cannot read {path}: {source}")
            }
            BenchLoadError::Parse { path, detail } => {
                write!(f, "{path} is not a valid bench file: {detail}")
            }
        }
    }
}

impl std::error::Error for BenchLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchLoadError::Io { source, .. } => Some(source),
            BenchLoadError::Parse { .. } => None,
        }
    }
}

/// Load a committed bench file, distinguishing a missing/unreadable file
/// from one that is present but malformed or lacks a kernel entry.
pub fn load(path: &str) -> Result<BenchFile, BenchLoadError> {
    let text = std::fs::read_to_string(path).map_err(|source| BenchLoadError::Io {
        path: path.to_string(),
        source,
    })?;
    serde_json::from_str::<BenchFile>(&text).map_err(|e| BenchLoadError::Parse {
        path: path.to_string(),
        detail: e.to_string(),
    })
}

/// A cluster with only IP background traffic.
pub fn idle_cluster(seed: u64) -> Cluster {
    let mut c = Cluster::new(MachineConfig::fx8(), seed);
    c.set_ip_intensity(WorkloadMix::csrd_production().ip_intensity);
    c
}

/// A cluster running a detached serial process on CE 0.
pub fn serial_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    c.mount_serial(kernels::scalar_serial().instantiate(1), 1, None);
    c.run(5_000);
    c
}

/// A cluster with a long full-width concurrent loop mounted and warmed.
pub fn loop_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    let k = kernels::sor_sweep(1026);
    c.mount_loop(
        k.instantiate(1),
        0,
        1_000_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    c.run(20_000);
    c
}

/// A cluster running a dependence-bound "join-wait" loop: nearly the whole
/// iteration body sits inside the iteration-carried critical section, so
/// at any instant one CE computes while the other seven block on the CCB
/// sync register — the fast-forward engine's best mounted-workload case.
pub fn join_wait_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    let k = kernels::LoopKernel {
        name: "join-wait".into(),
        iters: 1_000_000_000,
        panel_lines: 16,
        panel_refs: 2,
        stream_lines: 1,
        store_lines: 1,
        compute: 400,
        code_bytes: 512,
        dependence: Some(0.95),
        variance: 0.0,
    };
    c.mount_loop(
        k.instantiate(1),
        0,
        1_000_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    c.run(20_000);
    c
}

/// `cycles_skipped / cycles_total` over everything `cluster` has run.
pub fn skip_ratio(cluster: &Cluster) -> f64 {
    let (skipped, total) = cluster.skip_counters();
    if total == 0 {
        0.0
    } else {
        skipped as f64 / total as f64
    }
}

/// `cycles_dense / cycles_total` over everything `cluster` has run.
pub fn dense_ratio(cluster: &Cluster) -> f64 {
    let (dense, total) = cluster.dense_counters();
    if total == 0 {
        0.0
    } else {
        dense as f64 / total as f64
    }
}

/// Minimum timing windows per mounted state. The rate reported is the
/// **maximum** over the windows: on a shared (single-vCPU CI) machine any
/// window can lose an arbitrary slice of wall clock to preemption, which
/// only ever *lowers* a measured rate, so the fastest window is the
/// least-contaminated estimate of the simulator's actual speed. Windows
/// of `min_wall_s / MIN_WINDOWS` keep the quiet-machine bench time at the
/// pre-adaptive cost; the harness only runs longer when the windows
/// disagree.
pub const MIN_WINDOWS: u32 = 3;

/// Default coefficient-of-variation target: windows are re-run until the
/// spread of rates falls under 3% of their mean (or the window cap bites),
/// so a committed number carries a quantified noise bound instead of
/// hoping three windows happened to land in quiet time.
pub const DEFAULT_COV_THRESHOLD: f64 = 0.03;

/// Default cap on timing windows per mounted state: 4x the minimum bench
/// time bounds the worst case on a hopelessly noisy runner, where the
/// recorded CoV (still above threshold) tells the consumer not to trust a
/// tight comparison.
pub const DEFAULT_MAX_WINDOWS: u32 = 12;

/// Mixed-regime detection band. A kernel whose warmup slice skipped a
/// fraction of cycles strictly inside `(SKIP_MIX_LO, SKIP_MIX_HI)`
/// alternates between fast-forwarded quiescent stretches and stepped
/// bursts. Its blended cycles-per-second then swings with whatever
/// skip/step blend each timing window happens to sample — stepping is
/// ~30-60x slower per cycle than fast-forwarding, so a few percent of
/// blend drift moves the window rate by double digits (the committed
/// `serial_cov` sat at ~15% for two PRs without ever reflecting host
/// noise). Mixed-regime kernels are therefore timed on their **stepped**
/// cycles per wall second — the quantity host speed actually governs —
/// and the best stepped rate is rescaled once by the overall skip mix of
/// the whole timed run, so the reported number is still the blended
/// cycles/s but its CoV no longer includes blend drift. Homogeneous
/// kernels — the always-stepping loop below the band, the ~fully-skipped
/// idle state above it — keep the direct measurement.
pub const SKIP_MIX_LO: f64 = 0.05;
/// Upper edge of the mixed-regime band (see [`SKIP_MIX_LO`]).
pub const SKIP_MIX_HI: f64 = 0.98;
/// Window-length multiplier for mixed-regime kernels: longer windows
/// average more skip/step alternations into the rescaling mix.
pub const SKIP_MIX_WINDOW_SCALE: f64 = 4.0;

/// Knobs for the CoV-adaptive measurement harness, validated through the
/// same typed error chain as the machine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchOptions {
    /// Stop re-running windows once their rates' CoV falls below this.
    pub cov_threshold: f64,
    /// Hard cap on windows per mounted state.
    pub max_windows: u32,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            cov_threshold: DEFAULT_COV_THRESHOLD,
            max_windows: DEFAULT_MAX_WINDOWS,
        }
    }
}

impl BenchOptions {
    /// Check the knobs are usable: the threshold must be a fraction in
    /// `(0, 1)` and the cap must leave room for the minimum windows.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.cov_threshold > 0.0 && self.cov_threshold < 1.0) {
            return Err(ConfigError::out_of_range(
                "bench.cov_threshold",
                self.cov_threshold,
                "must be a fraction in (0, 1), e.g. 0.03 for 3%",
            ));
        }
        if self.max_windows < MIN_WINDOWS {
            return Err(ConfigError::out_of_range(
                "bench.max_windows",
                self.max_windows,
                format!("must be at least the minimum window count {MIN_WINDOWS}"),
            ));
        }
        Ok(())
    }
}

/// One adaptive rate measurement: the best window's rate plus how noisy
/// the windows were and how many it took to get there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMeasurement {
    /// Best window's cycles/sec.
    pub rate: f64,
    /// Coefficient of variation (population stddev / mean) of all windows.
    pub cov: f64,
    /// Windows actually run (`MIN_WINDOWS ..= max_windows`).
    pub windows: u32,
}

/// Coefficient of variation of a window-rate sample; 0 for degenerate
/// inputs (fewer than two windows, or a zero mean).
fn cov_of(rates: &[f64]) -> f64 {
    if rates.len() < 2 {
        return 0.0;
    }
    let n = rates.len() as f64;
    let mean = rates.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Cycles/sec of `Cluster::run` on `cluster`, CoV-adaptive: at least
/// [`MIN_WINDOWS`] timing windows of `min_wall_s / MIN_WINDOWS` seconds
/// each (stepped in `chunk`-cycle slices), re-running until the windows'
/// rates agree to within `opts.cov_threshold` or `opts.max_windows` is
/// reached. Reports the best rate (see [`MIN_WINDOWS`] for why max, not
/// mean) alongside the achieved CoV and window count.
pub fn measure_run_adaptive(
    cluster: &mut Cluster,
    chunk: u64,
    min_wall_s: f64,
    opts: &BenchOptions,
) -> RunMeasurement {
    let base_window_s = min_wall_s / MIN_WINDOWS as f64;
    // Untimed warmup window: warms the host caches and branch predictors
    // *and* runs the cluster long enough to observe which stepping regime
    // mix this kernel actually settles into (the first few thousand cycles
    // after a mount are unrepresentative).
    let (skip_before, total_before) = cluster.skip_counters();
    let warm_start = Instant::now();
    loop {
        cluster.run(chunk);
        if warm_start.elapsed().as_secs_f64() >= base_window_s {
            break;
        }
    }
    let (skip_after, total_after) = cluster.skip_counters();
    let warm_skip = (skip_after - skip_before) as f64 / (total_after - total_before).max(1) as f64;
    // Mixed-regime kernels: longer windows, and rates taken over stepped
    // cycles only; see SKIP_MIX_LO for why direct blended rates cannot be
    // timed stably.
    let mixed = warm_skip > SKIP_MIX_LO && warm_skip < SKIP_MIX_HI;
    let window_s = if mixed {
        base_window_s * SKIP_MIX_WINDOW_SCALE
    } else {
        base_window_s
    };
    let mut rates: Vec<f64> = Vec::new();
    let (timed_skip_0, timed_total_0) = cluster.skip_counters();
    loop {
        let (skip_0, total_0) = cluster.skip_counters();
        let start = Instant::now();
        let mut cycles = 0u64;
        let rate = loop {
            cluster.run(chunk);
            cycles += chunk;
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= window_s {
                break if mixed {
                    let (skip_1, total_1) = cluster.skip_counters();
                    let stepped = (total_1 - total_0) - (skip_1 - skip_0);
                    stepped as f64 / elapsed
                } else {
                    cycles as f64 / elapsed
                };
            }
        };
        rates.push(rate);
        let n = rates.len() as u32;
        if n >= opts.max_windows || (n >= MIN_WINDOWS && cov_of(&rates) < opts.cov_threshold) {
            break;
        }
    }
    // Rescale the best stepped rate by the skip mix of the whole timed run
    // (the mix is common to every window, so it shifts the level, not the
    // CoV): stepped / (1 - skip) = blended cycles per stepped-second, and
    // skipped cycles cost ~no wall clock next to stepped ones.
    let best = rates.iter().cloned().fold(0.0, f64::max);
    let rate = if mixed {
        let (timed_skip_1, timed_total_1) = cluster.skip_counters();
        let skipped = timed_skip_1 - timed_skip_0;
        let total = (timed_total_1 - timed_total_0).max(1);
        let stepped_frac = (total - skipped) as f64 / total as f64;
        best / stepped_frac.max(f64::EPSILON)
    } else {
        best
    };
    RunMeasurement {
        rate,
        cov: cov_of(&rates),
        windows: rates.len() as u32,
    }
}

/// Cycles/sec of `Cluster::run` on `cluster` under the default
/// [`BenchOptions`] — the rate alone, for callers that don't need the
/// noise bound.
pub fn measure_run(cluster: &mut Cluster, chunk: u64, min_wall_s: f64) -> f64 {
    measure_run_adaptive(cluster, chunk, min_wall_s, &BenchOptions::default()).rate
}

/// Measure every throughput number, including each mounted state's
/// fast-forward skip ratio. `min_wall_s` bounds the timing window per
/// machine state; `study_cfg` is the study timed for the last number
/// (`StudyConfig::quick()` for the persisted measurements — smoke tests
/// pass something smaller).
pub fn measure(min_wall_s: f64, study_cfg: StudyConfig) -> ThroughputNumbers {
    measure_with(min_wall_s, study_cfg, &BenchOptions::default())
}

/// [`measure`] with explicit CoV-harness knobs (`reproduce bench
/// --cov-threshold / --max-windows` end up here).
pub fn measure_with(
    min_wall_s: f64,
    study_cfg: StudyConfig,
    opts: &BenchOptions,
) -> ThroughputNumbers {
    const CHUNK: u64 = 100_000;
    let mut idle = idle_cluster(1);
    let mut serial = serial_cluster(2);
    let mut looped = loop_cluster(3);
    let mut ff_loop = join_wait_cluster(4);
    let idle_m = measure_run_adaptive(&mut idle, CHUNK, min_wall_s, opts);
    let serial_m = measure_run_adaptive(&mut serial, CHUNK, min_wall_s, opts);
    let loop_m = measure_run_adaptive(&mut looped, CHUNK, min_wall_s, opts);
    let ff_loop_m = measure_run_adaptive(&mut ff_loop, CHUNK, min_wall_s, opts);
    let t0 = Instant::now();
    let study = Study::run(study_cfg.clone());
    let quick_wall = t0.elapsed().as_secs_f64();
    assert!(study.pooled_counts().records > 0, "study produced no data");

    // Cold vs warm against the session result cache: populate a fresh
    // in-memory cache (untimed), then time the all-hits rerun. Both runs
    // must reproduce the uncached study bit-for-bit — that determinism is
    // the cache's entire correctness argument, so the bench asserts it on
    // every measurement.
    let cache = SessionCache::in_memory();
    let (populated, _) = Study::run_cached(study_cfg.clone(), &cache);
    assert_eq!(populated, study, "cache-populating run diverged");
    let t1 = Instant::now();
    let (warm, warm_obs) = Study::run_cached(study_cfg.clone(), &cache);
    let warm_wall = t1.elapsed().as_secs_f64();
    assert_eq!(warm, study, "warm-cache run diverged");
    assert_eq!(
        warm_obs.cache.misses, 0,
        "an identical study must hit on every session"
    );

    // Incremental sweep against the same warm cache: the base width's
    // sessions all hit (when the study runs the stock scaled geometry),
    // so the sweep's cost approximates adding one new width (2) to an
    // already-swept grid.
    let base_width = study_cfg.machine.n_ces;
    let mut widths = vec![2];
    if base_width != 2 {
        widths.push(base_width);
    }
    let sweep_cfg = ScaleConfig {
        base: study_cfg,
        widths,
    };
    let t2 = Instant::now();
    let (_sweep, _stats) =
        ScaleStudy::run_cached(&sweep_cfg, Some(&cache)).expect("sweep of a validated study");
    let sweep_wall = t2.elapsed().as_secs_f64();

    ThroughputNumbers {
        idle_cycles_per_sec: idle_m.rate,
        serial_cycles_per_sec: serial_m.rate,
        loop_cycles_per_sec: loop_m.rate,
        ff_loop_cycles_per_sec: ff_loop_m.rate,
        idle_skip_ratio: skip_ratio(&idle),
        serial_skip_ratio: skip_ratio(&serial),
        loop_skip_ratio: skip_ratio(&looped),
        ff_loop_skip_ratio: skip_ratio(&ff_loop),
        dense_ratio: dense_ratio(&looped),
        idle_cov: idle_m.cov,
        serial_cov: serial_m.cov,
        loop_cov: loop_m.cov,
        ff_loop_cov: ff_loop_m.cov,
        bench_windows: u64::from(
            idle_m.windows + serial_m.windows + loop_m.windows + ff_loop_m.windows,
        ),
        quick_study_wall_s: quick_wall,
        quick_study_warm_wall_s: warm_wall,
        scale_sweep_wall_s: sweep_wall,
    }
}

/// Render one measurement as an aligned text block.
pub fn render(label: &str, n: &ThroughputNumbers) -> String {
    let mut windows = if n.bench_windows > 0 {
        format!("  windows: {}\n", n.bench_windows)
    } else {
        String::new()
    };
    if n.quick_study_warm_wall_s > 0.0 {
        let _ = std::fmt::Write::write_fmt(
            &mut windows,
            format_args!(
                "  warm study (cache): {:.3} s\n  incr sweep (cache): {:.2} s\n",
                n.quick_study_warm_wall_s, n.scale_sweep_wall_s
            ),
        );
    }
    format!(
        "{label}:\n  idle:    {:>12.0} cycles/s  (skip {:.1}%, cov {:.1}%)\n  serial:  {:>12.0} cycles/s  (skip {:.1}%, cov {:.1}%)\n  loop:    {:>12.0} cycles/s  (skip {:.1}%, dense {:.1}%, cov {:.1}%)\n  ff loop: {:>12.0} cycles/s  (skip {:.1}%, cov {:.1}%)\n{windows}  quick study: {:.2} s\n",
        n.idle_cycles_per_sec,
        n.idle_skip_ratio * 100.0,
        n.idle_cov * 100.0,
        n.serial_cycles_per_sec,
        n.serial_skip_ratio * 100.0,
        n.serial_cov * 100.0,
        n.loop_cycles_per_sec,
        n.loop_skip_ratio * 100.0,
        n.dense_ratio * 100.0,
        n.loop_cov * 100.0,
        n.ff_loop_cycles_per_sec,
        n.ff_loop_skip_ratio * 100.0,
        n.ff_loop_cov * 100.0,
        n.quick_study_wall_s
    )
}

/// Merge a fresh measurement into the bench file: keep the stored baseline
/// unless `as_baseline` (or no previous file) makes this run the baseline.
///
/// An `audited_run` (built with the `audit` feature) records under the
/// `audited` key and leaves the feature-off trajectory untouched, so the
/// committed baseline/current numbers always describe the unaudited
/// stepper; conversely a feature-off run preserves any stored `audited`
/// measurement.
pub fn merge(
    previous: Option<BenchFile>,
    measured: ThroughputNumbers,
    as_baseline: bool,
    audited_run: bool,
) -> BenchFile {
    if audited_run {
        return match previous {
            Some(prev) => BenchFile {
                audited: Some(measured),
                ..prev
            },
            // Nothing to preserve: the audited numbers stand in everywhere
            // until a feature-off run replaces baseline/current.
            None => BenchFile {
                baseline: measured.clone(),
                current: measured.clone(),
                loop_speedup: 1.0,
                audited: Some(measured),
            },
        };
    }
    let audited = previous.as_ref().and_then(|p| p.audited.clone());
    let baseline = match previous {
        Some(prev) if !as_baseline => prev.baseline,
        _ => measured.clone(),
    };
    // A zero/absent baseline loop rate (a hand-edited or pre-loop-kernel
    // file) has no meaningful ratio; record 1.0 instead of inf/NaN.
    let loop_speedup = if baseline.loop_cycles_per_sec > 0.0 {
        measured.loop_cycles_per_sec / baseline.loop_cycles_per_sec
    } else {
        1.0
    };
    BenchFile {
        baseline,
        current: measured,
        loop_speedup,
        audited,
    }
}

/// Allowed shortfall of a fresh measurement against the committed rate
/// before the regression gate fails. Uniform across mounted states and
/// much tighter than the old 15%/35% split: the CoV-adaptive harness
/// re-times each state until its windows agree (and skips the gate
/// entirely when they won't), so the tolerance only has to absorb
/// sub-threshold jitter, not worst-case scheduler noise.
pub const REGRESSION_TOLERANCE: f64 = 0.08;

/// What the regression gate decided about one mounted state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// The fresh rate is within tolerance of the committed rate.
    Ok,
    /// The fresh rate fell below the tolerance floor.
    Regressed,
    /// Fresh windows never settled under the CoV threshold: the runner is
    /// too noisy for the comparison to mean anything, so no gate applies.
    SkippedNoisy,
    /// The committed rate is zero or non-finite — nothing to gate
    /// against. A pre-fast-forward file, for example, carries
    /// `ff_loop_cycles_per_sec: 0.0` ("not measured"), which naively
    /// divides/anchors the gate at zero; an absent baseline must read as
    /// "no gate", not "any rate passes/fails".
    SkippedNoBaseline,
}

/// One mounted state's gate decision, with everything a caller needs to
/// print or assert on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateOutcome {
    /// Mounted-state name ("loop", "idle", "serial", "ff_loop").
    pub kernel: &'static str,
    /// Committed `current` rate from `BENCH_throughput.json`.
    pub committed_rate: f64,
    /// Freshly measured rate.
    pub fresh_rate: f64,
    /// CoV of the fresh measurement's windows.
    pub fresh_cov: f64,
    /// The failure floor, `committed * (1 - REGRESSION_TOLERANCE)`
    /// (0 when the gate was skipped).
    pub floor: f64,
    /// The decision.
    pub verdict: GateVerdict,
}

/// Gate every mounted state's fresh rate against the committed entry.
/// Pure and typed so the zero-baseline and noisy-runner paths are unit
/// testable without timing anything; `reproduce bench --check-regression`
/// renders the outcomes and maps any [`GateVerdict::Regressed`] to a
/// failing exit code.
pub fn regression_outcomes(
    committed: &ThroughputNumbers,
    fresh: &ThroughputNumbers,
    cov_threshold: f64,
) -> Vec<GateOutcome> {
    let checks = [
        (
            "loop",
            committed.loop_cycles_per_sec,
            fresh.loop_cycles_per_sec,
            fresh.loop_cov,
        ),
        (
            "idle",
            committed.idle_cycles_per_sec,
            fresh.idle_cycles_per_sec,
            fresh.idle_cov,
        ),
        (
            "serial",
            committed.serial_cycles_per_sec,
            fresh.serial_cycles_per_sec,
            fresh.serial_cov,
        ),
        (
            "ff_loop",
            committed.ff_loop_cycles_per_sec,
            fresh.ff_loop_cycles_per_sec,
            fresh.ff_loop_cov,
        ),
    ];
    checks
        .into_iter()
        .map(|(kernel, committed_rate, fresh_rate, fresh_cov)| {
            let (floor, verdict) = if !(committed_rate > 0.0 && committed_rate.is_finite()) {
                (0.0, GateVerdict::SkippedNoBaseline)
            } else if fresh_cov >= cov_threshold {
                (0.0, GateVerdict::SkippedNoisy)
            } else {
                let floor = committed_rate * (1.0 - REGRESSION_TOLERANCE);
                if fresh_rate < floor {
                    (floor, GateVerdict::Regressed)
                } else {
                    (floor, GateVerdict::Ok)
                }
            };
            GateOutcome {
                kernel,
                committed_rate,
                fresh_rate,
                fresh_cov,
                floor,
                verdict,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbers(loop_rate: f64) -> ThroughputNumbers {
        ThroughputNumbers {
            idle_cycles_per_sec: 1.0,
            serial_cycles_per_sec: 2.0,
            loop_cycles_per_sec: loop_rate,
            ff_loop_cycles_per_sec: 4.0,
            idle_skip_ratio: 0.9,
            serial_skip_ratio: 0.5,
            loop_skip_ratio: 0.1,
            ff_loop_skip_ratio: 0.8,
            dense_ratio: 0.7,
            idle_cov: 0.01,
            serial_cov: 0.02,
            loop_cov: 0.015,
            ff_loop_cov: 0.025,
            bench_windows: 12,
            quick_study_wall_s: 3.0,
            quick_study_warm_wall_s: 0.05,
            scale_sweep_wall_s: 1.5,
        }
    }

    #[test]
    fn zero_baseline_kernel_is_skipped_not_gated() {
        // The committed file really carried ff_loop_cycles_per_sec: 0.0
        // (written before the fast-forward engine); the old gate computed
        // floor = 0 and "passed" every fresh rate against it, and a
        // speedup ratio against it divides by zero.
        let mut committed = numbers(100.0);
        committed.ff_loop_cycles_per_sec = 0.0;
        let fresh = numbers(100.0);
        let outcomes = regression_outcomes(&committed, &fresh, 0.03);
        let ff = outcomes.iter().find(|o| o.kernel == "ff_loop").unwrap();
        assert_eq!(ff.verdict, GateVerdict::SkippedNoBaseline);
        assert_eq!(ff.floor, 0.0);
        // NaN/inf committed rates are equally ungateable.
        committed.ff_loop_cycles_per_sec = f64::NAN;
        let outcomes = regression_outcomes(&committed, &fresh, 0.03);
        assert_eq!(
            outcomes
                .iter()
                .find(|o| o.kernel == "ff_loop")
                .unwrap()
                .verdict,
            GateVerdict::SkippedNoBaseline
        );
        // The other kernels still gate normally.
        assert!(outcomes
            .iter()
            .filter(|o| o.kernel != "ff_loop")
            .all(|o| o.verdict == GateVerdict::Ok));
    }

    #[test]
    fn gate_verdicts_cover_regressed_noisy_and_ok() {
        let committed = numbers(100.0);
        let mut fresh = numbers(100.0);
        // 8% tolerance: 91.9 < 92.0 floor fails, 92.1 passes.
        fresh.loop_cycles_per_sec = 91.9;
        let o = regression_outcomes(&committed, &fresh, 0.03);
        let l = o.iter().find(|o| o.kernel == "loop").unwrap();
        assert_eq!(l.verdict, GateVerdict::Regressed);
        assert!((l.floor - 92.0).abs() < 1e-9);
        fresh.loop_cycles_per_sec = 92.1;
        let o = regression_outcomes(&committed, &fresh, 0.03);
        assert_eq!(
            o.iter().find(|o| o.kernel == "loop").unwrap().verdict,
            GateVerdict::Ok
        );
        // A noisy fresh measurement is skipped even if the rate dropped.
        fresh.loop_cycles_per_sec = 10.0;
        fresh.loop_cov = 0.25;
        let o = regression_outcomes(&committed, &fresh, 0.03);
        assert_eq!(
            o.iter().find(|o| o.kernel == "loop").unwrap().verdict,
            GateVerdict::SkippedNoisy
        );
    }

    #[test]
    fn zero_baseline_loop_rate_does_not_poison_speedup() {
        let mut zeroed = numbers(0.0);
        zeroed.loop_cycles_per_sec = 0.0;
        let prev = BenchFile {
            baseline: zeroed.clone(),
            current: zeroed,
            loop_speedup: 1.0,
            audited: None,
        };
        let f = merge(Some(prev), numbers(50.0), false, false);
        assert!(f.loop_speedup.is_finite());
        assert_eq!(f.loop_speedup, 1.0);
    }

    #[test]
    fn merge_keeps_previous_baseline() {
        let first = merge(None, numbers(100.0), false, false);
        assert_eq!(first.baseline, first.current);
        assert!((first.loop_speedup - 1.0).abs() < 1e-12);
        let second = merge(Some(first.clone()), numbers(250.0), false, false);
        assert_eq!(second.baseline, numbers(100.0));
        assert_eq!(second.current, numbers(250.0));
        assert!((second.loop_speedup - 2.5).abs() < 1e-12);
        let rebased = merge(Some(second), numbers(300.0), true, false);
        assert_eq!(rebased.baseline, numbers(300.0));
    }

    #[test]
    fn audited_runs_never_touch_the_unaudited_trajectory() {
        let base = merge(None, numbers(100.0), false, false);
        let with_audit = merge(Some(base.clone()), numbers(60.0), false, true);
        assert_eq!(with_audit.baseline, base.baseline);
        assert_eq!(with_audit.current, base.current);
        assert_eq!(with_audit.loop_speedup, base.loop_speedup);
        assert_eq!(with_audit.audited, Some(numbers(60.0)));
        // ...and a later feature-off run preserves the audited record.
        let later = merge(Some(with_audit), numbers(120.0), false, false);
        assert_eq!(later.current, numbers(120.0));
        assert_eq!(later.audited, Some(numbers(60.0)));
    }

    #[test]
    fn bench_file_round_trips_as_json() {
        let f = merge(None, numbers(42.0), true, false);
        let json = serde_json::to_string(&f).unwrap();
        let back: BenchFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        let with_audit = merge(Some(f), numbers(30.0), false, true);
        let json = serde_json::to_string(&with_audit).unwrap();
        let back: BenchFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with_audit);
    }

    #[test]
    fn bench_file_without_audited_key_still_loads() {
        // Files written before the `audited` field must deserialize: the
        // vendored serde errors on missing fields unless handled by hand.
        let f = merge(None, numbers(10.0), true, false);
        let json = serde_json::to_string(&f).unwrap();
        let stripped = json
            .replace(",\"audited\":null", "")
            .replace("\"audited\":null,", "");
        assert!(
            !stripped.contains("audited"),
            "test strips the new key: {stripped}"
        );
        let back: BenchFile = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.baseline, f.baseline);
        assert_eq!(back.audited, None);
    }

    #[test]
    fn measure_run_reports_positive_rate() {
        let rate = measure_run(&mut idle_cluster(9), 2_000, 0.01);
        assert!(rate > 0.0);
    }

    #[test]
    fn adaptive_harness_respects_window_bounds() {
        let opts = BenchOptions {
            cov_threshold: 0.99, // always satisfied after MIN_WINDOWS
            max_windows: 7,
        };
        let m = measure_run_adaptive(&mut idle_cluster(11), 2_000, 0.01, &opts);
        assert_eq!(m.windows, MIN_WINDOWS, "a loose threshold stops early");
        assert!(m.rate > 0.0);
        let strict = BenchOptions {
            cov_threshold: 1e-12, // never satisfied in practice
            max_windows: 4,
        };
        let m = measure_run_adaptive(&mut idle_cluster(12), 2_000, 0.01, &strict);
        assert_eq!(m.windows, 4, "an unreachable threshold runs to the cap");
        assert!(m.cov >= 0.0);
    }

    #[test]
    fn bench_options_validate_their_ranges() {
        assert!(BenchOptions::default().validate().is_ok());
        let bad_cov = BenchOptions {
            cov_threshold: 0.0,
            ..BenchOptions::default()
        };
        let err = bad_cov.validate().unwrap_err();
        assert_eq!(err.field(), "bench.cov_threshold");
        let bad_cap = BenchOptions {
            max_windows: MIN_WINDOWS - 1,
            ..BenchOptions::default()
        };
        let err = bad_cap.validate().unwrap_err();
        assert_eq!(err.field(), "bench.max_windows");
    }

    #[test]
    fn cov_of_known_samples() {
        assert_eq!(cov_of(&[]), 0.0);
        assert_eq!(cov_of(&[5.0]), 0.0);
        assert_eq!(cov_of(&[3.0, 3.0, 3.0]), 0.0);
        // {2, 4}: mean 3, population stddev 1 → CoV = 1/3.
        let c = cov_of(&[2.0, 4.0]);
        assert!((c - 1.0 / 3.0).abs() < 1e-12, "cov {c}");
    }

    #[test]
    fn committed_bench_file_parses_with_cov_fields() {
        // The checked-in BENCH_throughput.json must stay loadable by the
        // harness that maintains it — this is the regression test for the
        // hand-written back-compat deserializer against the real artifact.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
        let text = std::fs::read_to_string(path).expect("committed bench file exists");
        let f: BenchFile = serde_json::from_str(&text).expect("committed bench file parses");
        assert!(f.current.loop_cycles_per_sec > 0.0);
        assert!(f.baseline.loop_cycles_per_sec > 0.0);
        assert!(f.loop_speedup > 0.0);
        // The current entry is written by the CoV-adaptive harness: its
        // window count and per-kernel CoV fields must have round-tripped.
        assert!(f.current.bench_windows >= u64::from(4 * MIN_WINDOWS));
        for cov in [
            f.current.idle_cov,
            f.current.serial_cov,
            f.current.loop_cov,
            f.current.ff_loop_cov,
        ] {
            assert!((0.0..1.0).contains(&cov), "cov out of range: {cov}");
        }
    }

    #[test]
    fn numbers_without_fast_forward_fields_still_load() {
        // BENCH files written before the fast-forward engine carry only the
        // original four fields; they must load with the new ones at 0.0.
        let json = r#"{
            "idle_cycles_per_sec": 5.0,
            "serial_cycles_per_sec": 6.0,
            "loop_cycles_per_sec": 7.0,
            "quick_study_wall_s": 8.0
        }"#;
        let n: ThroughputNumbers = serde_json::from_str(json).unwrap();
        assert_eq!(n.idle_cycles_per_sec, 5.0);
        assert_eq!(n.quick_study_wall_s, 8.0);
        assert_eq!(n.ff_loop_cycles_per_sec, 0.0);
        assert_eq!(n.idle_skip_ratio, 0.0);
        assert_eq!(n.ff_loop_skip_ratio, 0.0);
        assert_eq!(n.dense_ratio, 0.0, "pre-dense-stepper files default to 0");
        assert_eq!(n.loop_cov, 0.0, "pre-CoV-harness files default to 0");
        assert_eq!(n.bench_windows, 0, "pre-CoV-harness files default to 0");
    }

    #[test]
    fn full_loop_cluster_is_dense_heavy() {
        // The full-width loop keeps every CE busy, which is exactly the
        // dense SoA stepper's domain.
        let mut c = loop_cluster(7);
        c.run(200_000);
        let ratio = dense_ratio(&c);
        if cfg!(feature = "audit") {
            assert_eq!(ratio, 0.0, "audit builds never dense-step");
        } else {
            assert!(ratio > 0.9, "loop dense ratio too low: {ratio}");
        }
    }

    #[test]
    fn numbers_round_trip_with_fast_forward_fields() {
        let n = numbers(42.0);
        let json = serde_json::to_string(&n).unwrap();
        let back: ThroughputNumbers = serde_json::from_str(&json).unwrap();
        assert_eq!(back, n);
    }

    /// The regression gate must surface "file missing" and "file present
    /// but lacking a kernel entry" as typed, printable errors — not a
    /// panic and not one indistinguishable `None`.
    #[test]
    fn load_distinguishes_missing_file_from_missing_kernel_entry() {
        let dir = std::env::temp_dir().join("fx8_bench_load_test");
        std::fs::create_dir_all(&dir).unwrap();

        let missing = dir.join("nonexistent.json");
        let e = load(missing.to_str().unwrap()).unwrap_err();
        assert!(matches!(e, BenchLoadError::Io { .. }), "got {e}");
        assert!(e.to_string().contains("cannot read"));

        // Valid JSON whose `current` entry lacks the loop kernel rate.
        let partial = dir.join("partial.json");
        std::fs::write(
            &partial,
            r#"{"baseline": {"idle_cycles_per_sec": 1.0}, "loop_speedup": 1.0}"#,
        )
        .unwrap();
        let e = load(partial.to_str().unwrap()).unwrap_err();
        match &e {
            BenchLoadError::Parse { detail, .. } => {
                assert!(detail.contains("missing field"), "detail: {detail}");
            }
            other => panic!("expected Parse error, got {other}"),
        }

        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json at all").unwrap();
        assert!(matches!(
            load(garbage.to_str().unwrap()).unwrap_err(),
            BenchLoadError::Parse { .. }
        ));
    }

    #[test]
    fn join_wait_cluster_is_skip_heavy() {
        // The join-wait kernel serializes its iterations, so fast-forward
        // should skip most cycles; the full-width loop should skip fewer.
        let mut ff = join_wait_cluster(5);
        ff.run(200_000);
        let ratio = skip_ratio(&ff);
        if cfg!(feature = "audit") {
            assert_eq!(ratio, 0.0, "audit builds never skip");
        } else {
            assert!(ratio > 0.5, "join-wait skip ratio too low: {ratio}");
        }
    }
}
