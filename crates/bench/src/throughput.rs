//! Simulation-throughput measurement: cycles simulated per wall-clock
//! second for the three machine states the workload alternates between,
//! plus the wall time of a full quick study.
//!
//! This is the perf trajectory of the repository: `reproduce --bench-json`
//! writes the numbers to `BENCH_throughput.json` at the repo root under a
//! `current` key, preserving the committed `baseline` so speedups and
//! regressions stay visible across PRs (`--as-baseline` rewrites the
//! baseline too). The `throughput` bench prints the same measurements.

use fx8_core::study::{Study, StudyConfig};
use fx8_sim::{Cluster, MachineConfig};
use fx8_workload::{kernels, WorkloadMix};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One set of throughput measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputNumbers {
    /// Cycles/sec with no process mounted (IP background traffic only).
    pub idle_cycles_per_sec: f64,
    /// Cycles/sec with a serial process on CE 0.
    pub serial_cycles_per_sec: f64,
    /// Cycles/sec with a full-width concurrent loop running.
    pub loop_cycles_per_sec: f64,
    /// Wall time of `Study::run(StudyConfig::quick())`, seconds.
    pub quick_study_wall_s: f64,
}

/// The persisted `BENCH_throughput.json` contents.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchFile {
    /// Measurement taken before the zero-allocation stepper landed.
    pub baseline: ThroughputNumbers,
    /// Measurement for the current tree.
    pub current: ThroughputNumbers,
    /// `current.loop_cycles_per_sec / baseline.loop_cycles_per_sec`.
    pub loop_speedup: f64,
    /// Measurement with the `audit` feature compiled in, if one has been
    /// taken — the overhead record that shows feature-off throughput is
    /// untouched by the invariant auditor.
    pub audited: Option<ThroughputNumbers>,
}

// Hand-written so files from before the `audited` field still load: the
// vendored serde errors on any missing field, and it has no `default`
// attribute to say otherwise.
impl serde::Deserialize for BenchFile {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| v.get(name).ok_or_else(|| serde::Error::missing_field(name));
        Ok(BenchFile {
            baseline: serde::Deserialize::from_value(field("baseline")?)?,
            current: serde::Deserialize::from_value(field("current")?)?,
            loop_speedup: serde::Deserialize::from_value(field("loop_speedup")?)?,
            audited: match v.get("audited") {
                Some(a) => serde::Deserialize::from_value(a)?,
                None => None,
            },
        })
    }
}

/// A cluster with only IP background traffic.
pub fn idle_cluster(seed: u64) -> Cluster {
    let mut c = Cluster::new(MachineConfig::fx8(), seed);
    c.set_ip_intensity(WorkloadMix::csrd_production().ip_intensity);
    c
}

/// A cluster running a detached serial process on CE 0.
pub fn serial_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    c.mount_serial(kernels::scalar_serial().instantiate(1), 1, None);
    c.run(5_000);
    c
}

/// A cluster with a long full-width concurrent loop mounted and warmed.
pub fn loop_cluster(seed: u64) -> Cluster {
    let mut c = idle_cluster(seed);
    let k = kernels::sor_sweep(1026);
    c.mount_loop(
        k.instantiate(1),
        0,
        1_000_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    c.run(20_000);
    c
}

/// Cycles/sec of `Cluster::run` on `cluster`, timed over at least
/// `min_wall_s` of wall clock in `chunk`-cycle slices.
pub fn measure_run(cluster: &mut Cluster, chunk: u64, min_wall_s: f64) -> f64 {
    // Warm the caches and branch predictors before timing.
    cluster.run(chunk.min(10_000));
    let start = Instant::now();
    let mut cycles = 0u64;
    loop {
        cluster.run(chunk);
        cycles += chunk;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_wall_s {
            return cycles as f64 / elapsed;
        }
    }
}

/// Measure all four numbers. `min_wall_s` bounds the timing window per
/// machine state; `study_cfg` is the study timed for the last number
/// (`StudyConfig::quick()` for the persisted measurements — smoke tests
/// pass something smaller).
pub fn measure(min_wall_s: f64, study_cfg: StudyConfig) -> ThroughputNumbers {
    const CHUNK: u64 = 100_000;
    let idle = measure_run(&mut idle_cluster(1), CHUNK, min_wall_s);
    let serial = measure_run(&mut serial_cluster(2), CHUNK, min_wall_s);
    let looped = measure_run(&mut loop_cluster(3), CHUNK, min_wall_s);
    let t0 = Instant::now();
    let study = Study::run(study_cfg);
    let quick_wall = t0.elapsed().as_secs_f64();
    assert!(study.pooled_counts().records > 0, "study produced no data");
    ThroughputNumbers {
        idle_cycles_per_sec: idle,
        serial_cycles_per_sec: serial,
        loop_cycles_per_sec: looped,
        quick_study_wall_s: quick_wall,
    }
}

/// Render one measurement as an aligned text block.
pub fn render(label: &str, n: &ThroughputNumbers) -> String {
    format!(
        "{label}:\n  idle:   {:>12.0} cycles/s\n  serial: {:>12.0} cycles/s\n  loop:   {:>12.0} cycles/s\n  quick study: {:.2} s\n",
        n.idle_cycles_per_sec, n.serial_cycles_per_sec, n.loop_cycles_per_sec, n.quick_study_wall_s
    )
}

/// Merge a fresh measurement into the bench file: keep the stored baseline
/// unless `as_baseline` (or no previous file) makes this run the baseline.
///
/// An `audited_run` (built with the `audit` feature) records under the
/// `audited` key and leaves the feature-off trajectory untouched, so the
/// committed baseline/current numbers always describe the unaudited
/// stepper; conversely a feature-off run preserves any stored `audited`
/// measurement.
pub fn merge(
    previous: Option<BenchFile>,
    measured: ThroughputNumbers,
    as_baseline: bool,
    audited_run: bool,
) -> BenchFile {
    if audited_run {
        return match previous {
            Some(prev) => BenchFile {
                audited: Some(measured),
                ..prev
            },
            // Nothing to preserve: the audited numbers stand in everywhere
            // until a feature-off run replaces baseline/current.
            None => BenchFile {
                baseline: measured.clone(),
                current: measured.clone(),
                loop_speedup: 1.0,
                audited: Some(measured),
            },
        };
    }
    let audited = previous.as_ref().and_then(|p| p.audited.clone());
    let baseline = match previous {
        Some(prev) if !as_baseline => prev.baseline,
        _ => measured.clone(),
    };
    let loop_speedup = measured.loop_cycles_per_sec / baseline.loop_cycles_per_sec;
    BenchFile {
        baseline,
        current: measured,
        loop_speedup,
        audited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbers(loop_rate: f64) -> ThroughputNumbers {
        ThroughputNumbers {
            idle_cycles_per_sec: 1.0,
            serial_cycles_per_sec: 2.0,
            loop_cycles_per_sec: loop_rate,
            quick_study_wall_s: 3.0,
        }
    }

    #[test]
    fn merge_keeps_previous_baseline() {
        let first = merge(None, numbers(100.0), false, false);
        assert_eq!(first.baseline, first.current);
        assert!((first.loop_speedup - 1.0).abs() < 1e-12);
        let second = merge(Some(first.clone()), numbers(250.0), false, false);
        assert_eq!(second.baseline, numbers(100.0));
        assert_eq!(second.current, numbers(250.0));
        assert!((second.loop_speedup - 2.5).abs() < 1e-12);
        let rebased = merge(Some(second), numbers(300.0), true, false);
        assert_eq!(rebased.baseline, numbers(300.0));
    }

    #[test]
    fn audited_runs_never_touch_the_unaudited_trajectory() {
        let base = merge(None, numbers(100.0), false, false);
        let with_audit = merge(Some(base.clone()), numbers(60.0), false, true);
        assert_eq!(with_audit.baseline, base.baseline);
        assert_eq!(with_audit.current, base.current);
        assert_eq!(with_audit.loop_speedup, base.loop_speedup);
        assert_eq!(with_audit.audited, Some(numbers(60.0)));
        // ...and a later feature-off run preserves the audited record.
        let later = merge(Some(with_audit), numbers(120.0), false, false);
        assert_eq!(later.current, numbers(120.0));
        assert_eq!(later.audited, Some(numbers(60.0)));
    }

    #[test]
    fn bench_file_round_trips_as_json() {
        let f = merge(None, numbers(42.0), true, false);
        let json = serde_json::to_string(&f).unwrap();
        let back: BenchFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        let with_audit = merge(Some(f), numbers(30.0), false, true);
        let json = serde_json::to_string(&with_audit).unwrap();
        let back: BenchFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with_audit);
    }

    #[test]
    fn bench_file_without_audited_key_still_loads() {
        // Files written before the `audited` field must deserialize: the
        // vendored serde errors on missing fields unless handled by hand.
        let f = merge(None, numbers(10.0), true, false);
        let json = serde_json::to_string(&f).unwrap();
        let stripped = json
            .replace(",\"audited\":null", "")
            .replace("\"audited\":null,", "");
        assert!(
            !stripped.contains("audited"),
            "test strips the new key: {stripped}"
        );
        let back: BenchFile = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.baseline, f.baseline);
        assert_eq!(back.audited, None);
    }

    #[test]
    fn measure_run_reports_positive_rate() {
        let rate = measure_run(&mut idle_cluster(9), 2_000, 0.01);
        assert!(rate > 0.0);
    }
}
