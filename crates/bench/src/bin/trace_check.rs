//! Validate a Chrome `trace_event` file produced by `reproduce trace`:
//! parse it, require a non-empty `traceEvents` array, and require `name`,
//! `ph`, `pid` on every record (and `ts` on every non-metadata record).
//! CI's trace-smoke step runs this on a quick study's export.

use serde::Value;
use std::process::ExitCode;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "study.trace.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc: Value = match serde_json::from_str(text.trim_end()) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{path}: invalid JSON: {e:?}")),
    };
    let Some(Value::Array(events)) = doc.get("traceEvents") else {
        return fail(&format!("{path}: no traceEvents array"));
    };
    if events.is_empty() {
        return fail(&format!("{path}: traceEvents is empty"));
    }
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "ph", "pid"] {
            if ev.get(key).is_none() {
                return fail(&format!("{path}: event {i} lacks \"{key}\""));
            }
        }
        let is_meta = matches!(ev.get("ph"), Some(Value::Str(s)) if s == "M");
        if !is_meta && ev.get("ts").is_none() {
            return fail(&format!("{path}: event {i} lacks \"ts\""));
        }
    }
    println!("{path}: ok ({} events)", events.len());
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    ExitCode::FAILURE
}
