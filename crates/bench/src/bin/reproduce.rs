//! Regenerate every table and figure of the thesis's evaluation.
//!
//! ```text
//! reproduce run     [--quick] [--audit] [--out DIR] [cache flags] [IDS...]
//! reproduce scale   [--quick] [--widths LIST] [--json FILE] [cache flags]
//! reproduce bench   [--as-baseline | --check-regression]
//! reproduce audit   [--quick] [--width N]
//! reproduce metrics [--quick] [--json FILE]
//! reproduce trace   [--quick] [--out FILE] [--event-capacity N]
//!
//! cache flags: [--cache-dir DIR] [--no-cache] [--cache-stats]
//! ```
//!
//! * `run` — run the study and print tables/figures. With no IDS,
//!   everything is regenerated; IDS are case-insensitive names (`table1
//!   table2 table3 table4 tableA1 fig3 .. fig14 figA1 .. figA5 figB1 ..
//!   figB10 comparison observability`). `--quick` runs a scaled-down study
//!   (seconds instead of minutes); `--audit` prints the invariant-audit
//!   report and exits nonzero on violations; `--out DIR` additionally
//!   writes `report.txt`, `comparison.md` and `study.json` under DIR.
//! * `bench` — measure simulation throughput and update
//!   `BENCH_throughput.json` at the repo root (`current` key;
//!   `--as-baseline` rewrites `baseline` too; a binary built with
//!   `--features audit` records under the `audited` key instead).
//!   The harness is CoV-adaptive: each mounted state is re-timed until the
//!   windows' rates agree to within `--cov-threshold` (default 0.03, i.e.
//!   3%) or `--max-windows` (default 12) windows have run; the JSON gains
//!   per-kernel `*_cov` fields and a total `bench_windows` count alongside
//!   the rates, so every committed number carries its own noise bound.
//!   `--check-regression` measures but does **not** rewrite the file: it
//!   exits nonzero if a mounted-state rate fell below its tolerance,
//!   skipping (with a warning) any state whose fresh measurement never
//!   settled under the CoV threshold — a noisy runner must not fail the
//!   canary spuriously. CI's `bench-smoke` job runs this to catch
//!   throughput regressions.
//! * `scale` — the scaling study the paper couldn't run: one complete
//!   study per cluster width (default widths 2 4 8 16 32 64, override with
//!   `--widths 2,8,64`), printed as C_w/P_c/missrate/bus-utilization
//!   curves; `--json FILE` writes the full
//!   [`fx8_core::scale::ScaleStudy`]; `--quick` sweeps the scaled-down
//!   study per width. The sweep is *incremental*: every width's sessions
//!   fan out through one shared pool and consult the result cache, so
//!   re-running with one added width recomputes only that width's
//!   sessions.
//!
//! `run` and `scale` memoize session results in a content-addressed cache
//! (the simulator is bit-deterministic, so a session result is a pure
//! function of its validated config, seed, session index, and engine
//! version — see DESIGN.md §13). By default entries persist under
//! `$XDG_CACHE_HOME/fx8` (or `~/.cache/fx8`); `--cache-dir DIR` redirects
//! the store, `--no-cache` disables caching entirely, and `--cache-stats`
//! prints a machine-greppable `cache-stats: hits=.. misses=.. stores=..
//! invalid=..` line on stdout. Audit, metrics, and trace runs never read
//! or write the cache: the auditor and the trace ring only exist on a
//! freshly stepped cluster.
//! * `audit` — run the study with the auditor's report only (no tables);
//!   meaningful when built with `--features audit`. `--width N` audits a
//!   scaled hypothetical cluster instead of the measured 8-CE machine.
//! * `metrics` — run the study with the `fx8-trace` metrics registry armed
//!   and print per-session/per-engine counters; `--json FILE` writes the
//!   full [`fx8_core::observability::MetricsReport`].
//! * `trace` — run the study with the event trace armed and export Chrome
//!   `trace_event` JSON (Perfetto-loadable), default `study.trace.json`.
//!
//! Invalid configurations (e.g. `--event-capacity 0`) exit with code 2 and
//! a one-line diagnostic naming the offending field.
//!
//! The pre-subcommand spelling (`reproduce --quick --audit`, `reproduce
//! --bench-json --check-regression`, ...) still works as a hidden alias
//! for one release and prints a deprecation note on stderr.

use fx8_bench::throughput;
use fx8_core::cache::{CacheStats, SessionCache};
use fx8_core::observability::StudyObservability;
use fx8_core::report::StudyReport;
use fx8_core::scale::{ScaleConfig, ScaleStudy};
use fx8_core::study::{Study, StudyConfig, StudyConfigBuilder};
use fx8_core::{figures, report, tables};
use fx8_sim::{ConfigError, MachineConfig, TraceConfig};
use std::collections::BTreeSet;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: reproduce <run|scale|bench|audit|metrics|trace> [options]\n\
     \n\
     reproduce run     [--quick] [--audit] [--out DIR] [cache flags] [IDS...]\n\
     reproduce scale   [--quick] [--widths LIST] [--json FILE] [cache flags]\n\
     reproduce bench   [--as-baseline | --check-regression] \
     [--cov-threshold F] [--max-windows N]\n\
     reproduce audit   [--quick] [--width N]\n\
     reproduce metrics [--quick] [--json FILE]\n\
     reproduce trace   [--quick] [--out FILE] [--event-capacity N]\n\
     \n\
     cache flags: [--cache-dir DIR] [--no-cache] [--cache-stats] — session \
     results\n\
     memoize under --cache-dir (default ~/.cache/fx8); --no-cache disables, \
     \n\
     --cache-stats prints a greppable counter line\n\
     \n\
     IDS: table1 table2 table3 table4 tableA1 fig3..fig14 figA1..figA5 \
     figB1..figB10 comparison observability"
}

/// The session-result-cache flags shared by `run` and `scale`.
#[derive(Default)]
struct CacheOpts {
    /// Explicit persistent directory (`--cache-dir DIR`).
    dir: Option<String>,
    /// `--no-cache`: run every session fresh, store nothing.
    no_cache: bool,
    /// `--cache-stats`: print the greppable counter line on stdout.
    stats: bool,
}

impl CacheOpts {
    /// Try to consume one flag; true if it was a cache flag.
    fn parse_flag(
        &mut self,
        flag: &str,
        argv: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        match flag {
            "--cache-dir" => {
                self.dir = Some(argv.next().ok_or("--cache-dir requires a directory")?);
                Ok(true)
            }
            "--no-cache" => {
                self.no_cache = true;
                Ok(true)
            }
            "--cache-stats" => {
                self.stats = true;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Resolve the flags to a cache. `--no-cache` wins; an explicit dir is
    /// used as given; otherwise the conventional `~/.cache/fx8` location,
    /// degrading to an in-process-only cache when no home resolves.
    fn build(&self) -> Option<SessionCache> {
        if self.no_cache {
            return None;
        }
        Some(match (&self.dir, SessionCache::default_dir()) {
            (Some(d), _) => SessionCache::at_dir(d),
            (None, Some(d)) => SessionCache::at_dir(d),
            (None, None) => SessionCache::in_memory(),
        })
    }

    /// Narrate where results memoize (stderr) and, under `--cache-stats`,
    /// print the machine-greppable counter line (stdout) CI parses.
    fn report(&self, cache: Option<&SessionCache>, delta: &CacheStats) {
        let Some(cache) = cache else {
            if self.stats {
                println!("cache-stats: disabled");
            }
            return;
        };
        match cache.dir() {
            Some(d) => eprintln!(
                "result cache: {} ({} hits / {} lookups)",
                d.display(),
                delta.hits,
                delta.lookups()
            ),
            None => eprintln!(
                "result cache: in-memory only, no cache dir resolved \
                 ({} hits / {} lookups)",
                delta.hits,
                delta.lookups()
            ),
        }
        if self.stats {
            println!(
                "cache-stats: hits={} misses={} stores={} invalid={}",
                delta.hits, delta.misses, delta.stores, delta.invalid_entries
            );
        }
    }
}

struct RunArgs {
    quick: bool,
    audit: bool,
    out: Option<String>,
    cache: CacheOpts,
    ids: BTreeSet<String>,
}

enum Cmd {
    Run(RunArgs),
    Bench {
        as_baseline: bool,
        check_regression: bool,
        opts: throughput::BenchOptions,
    },
    Scale {
        quick: bool,
        widths: Option<Vec<usize>>,
        json: Option<String>,
        cache: CacheOpts,
    },
    Audit {
        quick: bool,
        width: Option<usize>,
    },
    Metrics {
        quick: bool,
        json: Option<String>,
    },
    Trace {
        quick: bool,
        out: String,
        event_capacity: Option<usize>,
    },
}

fn parse_run(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut args = RunArgs {
        quick: false,
        audit: false,
        out: None,
        cache: CacheOpts::default(),
        ids: BTreeSet::new(),
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--audit" => args.audit = true,
            "--out" => args.out = Some(argv.next().ok_or("--out requires a directory")?),
            "--help" | "-h" => return Err(usage().to_string()),
            flag if args.cache.parse_flag(flag, &mut argv)? => {}
            id if !id.starts_with('-') => {
                args.ids.insert(id.to_ascii_lowercase());
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Cmd::Run(args))
}

fn parse_bench(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut as_baseline = false;
    let mut check_regression = false;
    let mut opts = throughput::BenchOptions::default();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--as-baseline" => as_baseline = true,
            "--check-regression" => check_regression = true,
            "--cov-threshold" => {
                let v = argv.next().ok_or("--cov-threshold requires a fraction")?;
                opts.cov_threshold = v
                    .parse::<f64>()
                    .map_err(|_| format!("--cov-threshold: not a number: {v}"))?;
            }
            "--max-windows" => {
                let v = argv.next().ok_or("--max-windows requires a number")?;
                opts.max_windows = v
                    .parse::<u32>()
                    .map_err(|_| format!("--max-windows: not a number: {v}"))?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if check_regression && as_baseline {
        return Err(format!(
            "--check-regression and --as-baseline are mutually exclusive\n{}",
            usage()
        ));
    }
    Ok(Cmd::Bench {
        as_baseline,
        check_regression,
        opts,
    })
}

fn parse_scale(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut quick = false;
    let mut widths = None;
    let mut json = None;
    let mut cache = CacheOpts::default();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--widths" => {
                let v = argv
                    .next()
                    .ok_or("--widths requires a comma-separated list")?;
                let parsed: Result<Vec<usize>, _> =
                    v.split(',').map(|w| w.trim().parse::<usize>()).collect();
                widths = Some(parsed.map_err(|_| format!("--widths: not a width list: {v}"))?);
            }
            "--json" => json = Some(argv.next().ok_or("--json requires a file path")?),
            "--help" | "-h" => return Err(usage().to_string()),
            flag if cache.parse_flag(flag, &mut argv)? => {}
            other => return Err(format!("unknown flag {other} for scale\n{}", usage())),
        }
    }
    Ok(Cmd::Scale {
        quick,
        widths,
        json,
        cache,
    })
}

fn parse_audit(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut quick = false;
    let mut width = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--width" => {
                let v = argv.next().ok_or("--width requires a number")?;
                width = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--width: not a number: {v}"))?,
                );
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other} for audit\n{}", usage())),
        }
    }
    Ok(Cmd::Audit { quick, width })
}

fn parse_metrics(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut quick = false;
    let mut json = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = Some(argv.next().ok_or("--json requires a file path")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other} for metrics\n{}", usage())),
        }
    }
    Ok(Cmd::Metrics { quick, json })
}

fn parse_trace(mut argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut quick = false;
    let mut out = String::from("study.trace.json");
    let mut event_capacity = None;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = argv.next().ok_or("--out requires a file path")?,
            "--event-capacity" => {
                let v = argv.next().ok_or("--event-capacity requires a number")?;
                event_capacity = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--event-capacity: not a number: {v}"))?,
                );
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other} for trace\n{}", usage())),
        }
    }
    Ok(Cmd::Trace {
        quick,
        out,
        event_capacity,
    })
}

/// The pre-subcommand flag spelling, kept as a hidden alias for one
/// release: `--bench-json [--as-baseline|--check-regression]` maps to
/// `bench`, everything else maps to `run`.
fn parse_legacy(argv: impl Iterator<Item = String>) -> Result<Cmd, String> {
    let mut quick = false;
    let mut audit = false;
    let mut out = None;
    let mut bench_json = false;
    let mut as_baseline = false;
    let mut check_regression = false;
    let mut ids = BTreeSet::new();
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--audit" => audit = true,
            "--out" => {
                out = Some(argv.next().ok_or("--out requires a directory")?);
            }
            "--bench-json" => bench_json = true,
            "--as-baseline" => as_baseline = true,
            "--check-regression" => check_regression = true,
            "--help" | "-h" => return Err(usage().to_string()),
            id if !id.starts_with('-') => {
                ids.insert(id.to_ascii_lowercase());
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if as_baseline && !bench_json {
        return Err(format!("--as-baseline requires --bench-json\n{}", usage()));
    }
    if check_regression && !bench_json {
        return Err(format!(
            "--check-regression requires --bench-json\n{}",
            usage()
        ));
    }
    if check_regression && as_baseline {
        return Err(format!(
            "--check-regression and --as-baseline are mutually exclusive\n{}",
            usage()
        ));
    }
    let (new_form, cmd) = if bench_json {
        let mut form = String::from("reproduce bench");
        if as_baseline {
            form.push_str(" --as-baseline");
        }
        if check_regression {
            form.push_str(" --check-regression");
        }
        (
            form,
            Cmd::Bench {
                as_baseline,
                check_regression,
                opts: throughput::BenchOptions::default(),
            },
        )
    } else {
        let mut form = String::from("reproduce run");
        if quick {
            form.push_str(" --quick");
        }
        if audit {
            form.push_str(" --audit");
        }
        (
            form,
            Cmd::Run(RunArgs {
                quick,
                audit,
                out,
                cache: CacheOpts::default(),
                ids,
            }),
        )
    };
    eprintln!(
        "note: bare flags are deprecated and will be removed next release; \
         use `{new_form}` instead"
    );
    Ok(cmd)
}

fn parse_cmd() -> Result<Cmd, String> {
    let mut argv = std::env::args().skip(1);
    match argv.next() {
        None => Ok(Cmd::Run(RunArgs {
            quick: false,
            audit: false,
            out: None,
            cache: CacheOpts::default(),
            ids: BTreeSet::new(),
        })),
        Some(first) => match first.as_str() {
            "run" => parse_run(argv),
            "scale" => parse_scale(argv),
            "bench" => parse_bench(argv),
            "audit" => parse_audit(argv),
            "metrics" => parse_metrics(argv),
            "trace" => parse_trace(argv),
            "--help" | "-h" => Err(usage().to_string()),
            _ => parse_legacy(std::iter::once(first).chain(argv)),
        },
    }
}

/// Measure throughput against the committed `current` entry without
/// rewriting the file. Fails if any mounted-state rate dropped below its
/// tolerance: the loop rate guards the dense stepper, the idle / serial /
/// join-wait rates guard the fast-forward engine. The verdicts come from
/// [`throughput::regression_outcomes`]; this function only narrates them.
/// Two kinds of state are reported but never gated: a fresh measurement
/// that never settled under the CoV threshold (windows disagree too much
/// for an 8% comparison to mean anything), and a committed rate that is
/// zero or non-finite (a file written before that kernel's engine existed
/// carries no baseline — gating against a 0.0 floor would vacuously pass
/// everything and hide the missing number).
fn run_check_regression(path: &str, opts: &throughput::BenchOptions) -> ExitCode {
    let committed = match throughput::load(path) {
        Ok(f) => f.current,
        Err(e) => {
            eprintln!("reproduce: {e}; nothing to check against");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("measuring simulation throughput for regression check...");
    let fresh = throughput::measure_with(1.0, StudyConfig::quick(), opts);
    print!("{}", throughput::render("committed", &committed));
    print!("{}", throughput::render("fresh", &fresh));
    let tol_pct = (throughput::REGRESSION_TOLERANCE * 100.0) as u32;
    let mut regressed = false;
    for o in throughput::regression_outcomes(&committed, &fresh, opts.cov_threshold) {
        let name = o.kernel;
        match o.verdict {
            throughput::GateVerdict::SkippedNoBaseline => {
                eprintln!(
                    "NOTE: no regression gate for {name}: committed rate is {} — \
                     the committed file predates this kernel's measurement; \
                     re-run `reproduce bench` to record a baseline",
                    o.committed_rate,
                );
            }
            throughput::GateVerdict::SkippedNoisy => {
                eprintln!(
                    "WARNING: skipping {name} regression gate: windows never settled \
                     (CoV {:.1}% >= threshold {:.1}%) — runner too noisy for a {tol_pct}% \
                     comparison",
                    o.fresh_cov * 100.0,
                    opts.cov_threshold * 100.0,
                );
            }
            throughput::GateVerdict::Regressed => {
                eprintln!(
                    "REGRESSION: {name} throughput {:.0} cycles/s fell below \
                     {:.0} ({tol_pct}% under the committed {:.0})",
                    o.fresh_rate, o.floor, o.committed_rate,
                );
                regressed = true;
            }
            throughput::GateVerdict::Ok => {
                eprintln!(
                    "ok: {name} throughput {:.0} cycles/s within {tol_pct}% of \
                     committed {:.0} (CoV {:.1}%)",
                    o.fresh_rate,
                    o.committed_rate,
                    o.fresh_cov * 100.0,
                );
            }
        }
    }
    if regressed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Measure throughput and merge into `BENCH_throughput.json` at the repo root.
fn run_bench_json(as_baseline: bool, opts: &throughput::BenchOptions) -> ExitCode {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    eprintln!("measuring simulation throughput (idle / serial / loop / ff loop / quick study)...");
    let current = throughput::measure_with(1.0, StudyConfig::quick(), opts);
    let previous = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<throughput::BenchFile>(&s).ok());
    let file = throughput::merge(previous, current, as_baseline, cfg!(feature = "audit"));
    print!("{}", throughput::render("baseline", &file.baseline));
    print!("{}", throughput::render("current", &file.current));
    if let Some(aud) = &file.audited {
        print!("{}", throughput::render("audited", aud));
    }
    println!("loop speedup over baseline: {:.2}x", file.loop_speedup);
    let json = serde_json::to_string(&file).expect("bench file serializes");
    if let Err(e) = std::fs::write(path, json + "\n") {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {path}");
    ExitCode::SUCCESS
}

/// Map an invalid configuration to the documented exit code 2 with a
/// one-line diagnostic naming the field.
fn config_error(e: ConfigError) -> ExitCode {
    eprintln!("reproduce: {e}");
    ExitCode::from(2)
}

/// Build the study configuration for a subcommand, with the given trace
/// knobs, through the validated builder.
fn study_cfg(quick: bool, trace: TraceConfig) -> Result<StudyConfig, ConfigError> {
    let builder = if quick {
        StudyConfigBuilder::quick()
    } else {
        StudyConfigBuilder::paper()
    };
    builder.trace(trace).build()
}

/// Run the study, narrating scale and timing on stderr.
fn run_study_observed(cfg: StudyConfig, quick: bool) -> (Study, StudyObservability) {
    run_study_cached(cfg, quick, None)
}

/// Run the study against an optional result cache, narrating scale and
/// timing on stderr.
fn run_study_cached(
    cfg: StudyConfig,
    quick: bool,
    cache: Option<&SessionCache>,
) -> (Study, StudyObservability) {
    eprintln!(
        "running study: {} random sessions, {} triggered, {} transition ({} mode)...",
        cfg.n_random,
        cfg.n_triggered,
        cfg.n_transition,
        if quick { "quick" } else { "paper" }
    );
    let (study, obs) = Study::run_with_cache(cfg, cache);
    eprintln!(
        "study complete in {:.1}s: {} samples, {} records",
        obs.study_wall_s,
        study.all_samples().len(),
        study.pooled_counts().records
    );
    (study, obs)
}

/// Print the audit report; false if violations were recorded.
fn print_audit(study: &Study) -> bool {
    if !cfg!(feature = "audit") {
        eprintln!(
            "warning: reproduce was built without the `audit` feature; \
             the auditor did not run and the report below is vacuous \
             (rebuild with `cargo run --features audit --bin reproduce`)"
        );
    }
    let audit = study.audit_report();
    eprint!("{}", audit.render());
    if !audit.is_clean() {
        eprintln!(
            "audit FAILED: {} invariant violations",
            audit.total_violations()
        );
        return false;
    }
    true
}

fn cmd_run(args: RunArgs) -> ExitCode {
    let cfg = match study_cfg(args.quick, TraceConfig::metrics_only()) {
        Ok(c) => c,
        Err(e) => return config_error(e),
    };
    let cache = args.cache.build();
    let (study, obs) = run_study_cached(cfg, args.quick, cache.as_ref());
    args.cache.report(cache.as_ref(), &obs.cache);

    if args.audit && !print_audit(&study) {
        return ExitCode::FAILURE;
    }

    let wanted = |id: &str| args.ids.is_empty() || args.ids.contains(&id.to_ascii_lowercase());
    let mut printed = String::new();
    let mut emit = |id: &str, text: String| {
        if wanted(id) {
            println!("==================== {id} ====================");
            println!("{text}");
        }
        printed.push_str(&format!("==================== {id} ====================\n"));
        printed.push_str(&text);
        printed.push('\n');
    };

    emit("table1", tables::table1());
    emit("table2", tables::table2(&study).render());
    emit("table3", tables::table3(&study).render());
    emit("table4", tables::table4(&study).render());
    emit(
        "tableA1",
        tables::render_table_a1(&tables::table_a1(&study)),
    );
    emit("fig3", figures::fig3(&study));
    emit("fig4", figures::fig4(&study));
    emit("fig5", figures::fig5(&study));
    emit("fig6", figures::fig6(&study));
    emit("fig7", figures::fig7(&study));
    emit("fig8", figures::fig8(&study));
    emit("fig9", figures::fig9(&study));
    emit("fig10", figures::fig10(&study));
    emit("fig11", figures::fig11(&study));
    emit("fig12", figures::fig12(&study));
    emit("fig13", figures::fig13(&study));
    emit("fig14", figures::fig14(&study));
    emit("figA1", figures::fig_a1_a2(&study, 0));
    emit(
        "figA2",
        figures::fig_a1_a2(&study, study.random_sessions.len() - 1),
    );
    emit("figA3", figures::fig_a3(&study));
    emit("figA4", figures::fig_a4(&study));
    emit("figA5", figures::fig_a5(&study));
    emit("figB1", figures::fig_b1(&study));
    emit("figB2", figures::fig_b2(&study));
    emit("figB3", figures::fig_b3(&study));
    emit("figB4", figures::fig_b4(&study));
    emit("figB5", figures::fig_b5(&study));
    emit("figB6", figures::fig_b6(&study));
    emit("figB7", figures::fig_b7(&study));
    emit("figB8", figures::fig_b8(&study));
    emit("figB9", figures::fig_b9(&study));
    emit("figB10", figures::fig_b10(&study));

    let study_report = StudyReport::new(&study, obs);
    emit(
        "comparison",
        report::render_comparison(&study_report.comparison),
    );
    emit("observability", study_report.observability.render());

    if let Some(dir) = &args.out {
        if let Err(e) = write_outputs(dir, &study, &printed, &study_report) {
            eprintln!("failed to write outputs to {dir}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote report.txt, comparison.md and study.json to {dir}/");
    }
    ExitCode::SUCCESS
}

fn cmd_audit(quick: bool, width: Option<usize>) -> ExitCode {
    let cfg = match study_cfg(quick, TraceConfig::off()).and_then(|c| match width {
        Some(w) => StudyConfigBuilder::from_config(c)
            .machine(MachineConfig::scaled(w))
            .build(),
        None => Ok(c),
    }) {
        Ok(c) => c,
        Err(e) => return config_error(e),
    };
    if let Some(w) = width {
        eprintln!("auditing a scaled {w}-CE cluster");
    }
    let (study, _) = run_study_observed(cfg, quick);
    if print_audit(&study) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_scale(
    quick: bool,
    widths: Option<Vec<usize>>,
    json: Option<String>,
    cache_opts: CacheOpts,
) -> ExitCode {
    let mut cfg = if quick {
        ScaleConfig::quick()
    } else {
        ScaleConfig::paper()
    };
    if let Some(w) = widths {
        cfg.widths = w;
    }
    eprintln!(
        "running scaling study across widths {:?} ({} mode)...",
        cfg.widths,
        if quick { "quick" } else { "paper" }
    );
    let cache = cache_opts.build();
    let (study, stats) = match ScaleStudy::run_cached(&cfg, cache.as_ref()) {
        Ok(s) => s,
        Err(e) => return config_error(e),
    };
    eprintln!(
        "sweep complete in {:.1}s: {} sessions across {} widths",
        stats.sweep_wall_s,
        stats.sessions,
        cfg.widths.len()
    );
    cache_opts.report(cache.as_ref(), &stats.cache);
    print!("{}", study.render());
    if let Some(path) = json {
        let payload = serde_json::to_string(&study).expect("scale study serializes");
        if let Err(e) = std::fs::write(&path, payload + "\n") {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_metrics(quick: bool, json: Option<String>) -> ExitCode {
    let cfg = match study_cfg(quick, TraceConfig::metrics_only()) {
        Ok(c) => c,
        Err(e) => return config_error(e),
    };
    let (_study, obs) = run_study_observed(cfg, quick);
    print!("{}", obs.render());
    if let Some(path) = json {
        let payload =
            serde_json::to_string(&obs.metrics_report()).expect("metrics report serializes");
        if let Err(e) = std::fs::write(&path, payload + "\n") {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_trace(quick: bool, out: String, event_capacity: Option<usize>) -> ExitCode {
    let mut trace = TraceConfig::full();
    if let Some(cap) = event_capacity {
        trace.event_capacity = cap;
    }
    let cfg = match study_cfg(quick, trace) {
        Ok(c) => c,
        Err(e) => return config_error(e),
    };
    let ns_per_cycle = cfg.machine.ns_per_cycle;
    let (_study, obs) = run_study_observed(cfg, quick);
    let recorded: u64 = obs.sessions.iter().map(|s| s.metrics.events_recorded).sum();
    let dropped: u64 = obs.sessions.iter().map(|s| s.events_dropped).sum();
    let json = obs.chrome_trace(ns_per_cycle);
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {out}: {} sessions, {recorded} events recorded ({dropped} dropped by the ring); \
         open in Perfetto or chrome://tracing",
        obs.sessions.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let cmd = match parse_cmd() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        Cmd::Run(args) => cmd_run(args),
        Cmd::Bench {
            as_baseline,
            check_regression,
            opts,
        } => {
            // The typed validation path: bad knob values exit 2 with a
            // one-line diagnostic naming the field, like any other
            // configuration error.
            if let Err(e) = opts.validate() {
                return config_error(e);
            }
            if check_regression {
                let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
                run_check_regression(path, &opts)
            } else {
                run_bench_json(as_baseline, &opts)
            }
        }
        Cmd::Scale {
            quick,
            widths,
            json,
            cache,
        } => cmd_scale(quick, widths, json, cache),
        Cmd::Audit { quick, width } => cmd_audit(quick, width),
        Cmd::Metrics { quick, json } => cmd_metrics(quick, json),
        Cmd::Trace {
            quick,
            out,
            event_capacity,
        } => cmd_trace(quick, out, event_capacity),
    }
}

fn write_outputs(
    dir: &str,
    study: &Study,
    report_text: &str,
    study_report: &StudyReport,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(format!("{dir}/report.txt"), report_text)?;
    std::fs::write(
        format!("{dir}/comparison.md"),
        report::render_comparison(&study_report.comparison),
    )?;
    let json = serde_json::to_string(study).expect("study serializes");
    std::fs::write(format!("{dir}/study.json"), json)?;
    Ok(())
}
