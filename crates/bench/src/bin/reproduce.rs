//! Regenerate every table and figure of the thesis's evaluation.
//!
//! ```text
//! reproduce [--quick] [--out DIR] [IDS...]
//! ```
//!
//! With no IDS, everything is regenerated. IDS are case-insensitive table
//! and figure names: `table1 table2 table3 table4 tableA1 fig3 .. fig14
//! figA1 .. figA5 figB1 .. figB10 comparison`.
//!
//! `--quick` runs a scaled-down study (seconds instead of minutes);
//! `--out DIR` additionally writes `report.txt`, `comparison.md` and
//! `study.json` under DIR.
//!
//! `--bench-json` skips the tables and instead measures simulation
//! throughput, updating `BENCH_throughput.json` at the repo root
//! (`current` key; `--as-baseline` rewrites `baseline` too; a binary built
//! with `--features audit` records under the `audited` key instead).
//!
//! `--bench-json --check-regression` measures but does **not** rewrite the
//! file: it exits nonzero if the fresh `loop_cycles_per_sec` falls more
//! than 15% below the committed `current` entry. CI's `bench-smoke` job
//! runs this to catch throughput regressions before they merge.
//!
//! `--audit` prints the study's invariant-audit report after the run and
//! exits nonzero if any violation was recorded. Meaningful only when built
//! with `--features audit`; otherwise the report is vacuous and a warning
//! says so.

use fx8_bench::throughput;
use fx8_core::study::{Study, StudyConfig};
use fx8_core::{figures, report, tables};
use std::collections::BTreeSet;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: reproduce [--quick] [--audit] [--out DIR] [--bench-json [--as-baseline | --check-regression]] [IDS...]\n\
     IDS: table1 table2 table3 table4 tableA1 fig3..fig14 figA1..figA5 figB1..figB10 comparison"
}

struct Args {
    quick: bool,
    audit: bool,
    out: Option<String>,
    bench_json: bool,
    as_baseline: bool,
    check_regression: bool,
    ids: BTreeSet<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut quick = false;
    let mut audit = false;
    let mut out = None;
    let mut bench_json = false;
    let mut as_baseline = false;
    let mut check_regression = false;
    let mut ids = BTreeSet::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--audit" => audit = true,
            "--out" => {
                out = Some(argv.next().ok_or("--out requires a directory")?);
            }
            "--bench-json" => bench_json = true,
            "--as-baseline" => as_baseline = true,
            "--check-regression" => check_regression = true,
            "--help" | "-h" => return Err(usage().to_string()),
            id if !id.starts_with('-') => {
                ids.insert(id.to_ascii_lowercase());
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if as_baseline && !bench_json {
        return Err(format!("--as-baseline requires --bench-json\n{}", usage()));
    }
    if check_regression && !bench_json {
        return Err(format!(
            "--check-regression requires --bench-json\n{}",
            usage()
        ));
    }
    if check_regression && as_baseline {
        return Err(format!(
            "--check-regression and --as-baseline are mutually exclusive\n{}",
            usage()
        ));
    }
    Ok(Args {
        quick,
        audit,
        out,
        bench_json,
        as_baseline,
        check_regression,
        ids,
    })
}

/// Allowed shortfall of a fresh measurement against the committed rate
/// before `--check-regression` fails: benchmarks on shared CI runners
/// jitter, a real regression from a code change does not hide inside 15%.
const REGRESSION_TOLERANCE: f64 = 0.15;

/// Looser floor for the wait-dominated states (idle, serial, join-wait):
/// their wall time per simulated cycle is dominated by bulk-skip
/// bookkeeping, so a handful of scheduler hiccups moves the rate far more
/// than it moves the compute-bound loop measurement.
const WAIT_STATE_TOLERANCE: f64 = 0.35;

/// Measure throughput against the committed `current` entry without
/// rewriting the file. Fails if any mounted-state rate dropped below its
/// tolerance: the loop rate guards the dense stepper, the idle / serial /
/// join-wait rates guard the fast-forward engine.
fn run_check_regression(path: &str) -> ExitCode {
    let committed = match std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<throughput::BenchFile>(&s).ok())
    {
        Some(f) => f.current,
        None => {
            eprintln!("cannot load committed {path}; nothing to check against");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("measuring simulation throughput for regression check...");
    let fresh = throughput::measure(1.0, StudyConfig::quick());
    print!("{}", throughput::render("committed", &committed));
    print!("{}", throughput::render("fresh", &fresh));
    let checks = [
        (
            "loop",
            committed.loop_cycles_per_sec,
            fresh.loop_cycles_per_sec,
            REGRESSION_TOLERANCE,
        ),
        (
            "idle",
            committed.idle_cycles_per_sec,
            fresh.idle_cycles_per_sec,
            WAIT_STATE_TOLERANCE,
        ),
        (
            "serial",
            committed.serial_cycles_per_sec,
            fresh.serial_cycles_per_sec,
            WAIT_STATE_TOLERANCE,
        ),
        (
            "ff_loop",
            committed.ff_loop_cycles_per_sec,
            fresh.ff_loop_cycles_per_sec,
            WAIT_STATE_TOLERANCE,
        ),
    ];
    let mut regressed = false;
    for (name, committed_rate, fresh_rate, tol) in checks {
        let floor = committed_rate * (1.0 - tol);
        if fresh_rate < floor {
            eprintln!(
                "REGRESSION: {name} throughput {fresh_rate:.0} cycles/s fell below \
                 {floor:.0} ({}% under the committed {committed_rate:.0})",
                (tol * 100.0) as u32,
            );
            regressed = true;
        } else {
            eprintln!(
                "ok: {name} throughput {fresh_rate:.0} cycles/s within {}% of \
                 committed {committed_rate:.0}",
                (tol * 100.0) as u32,
            );
        }
    }
    if regressed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Measure throughput and merge into `BENCH_throughput.json` at the repo root.
fn run_bench_json(as_baseline: bool) -> ExitCode {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    eprintln!("measuring simulation throughput (idle / serial / loop / ff loop / quick study)...");
    let current = throughput::measure(1.0, StudyConfig::quick());
    let previous = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<throughput::BenchFile>(&s).ok());
    let file = throughput::merge(previous, current, as_baseline, cfg!(feature = "audit"));
    print!("{}", throughput::render("baseline", &file.baseline));
    print!("{}", throughput::render("current", &file.current));
    if let Some(aud) = &file.audited {
        print!("{}", throughput::render("audited", aud));
    }
    println!("loop speedup over baseline: {:.2}x", file.loop_speedup);
    let json = serde_json::to_string(&file).expect("bench file serializes");
    if let Err(e) = std::fs::write(path, json + "\n") {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if args.bench_json {
        if args.check_regression {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
            return run_check_regression(path);
        }
        return run_bench_json(args.as_baseline);
    }

    let cfg = if args.quick {
        StudyConfig::quick()
    } else {
        StudyConfig::paper()
    };
    eprintln!(
        "running study: {} random sessions, {} triggered, {} transition ({} mode)...",
        cfg.n_random,
        cfg.n_triggered,
        cfg.n_transition,
        if args.quick { "quick" } else { "paper" }
    );
    let t0 = std::time::Instant::now();
    let study = Study::run(cfg);
    eprintln!(
        "study complete in {:.1}s: {} samples, {} records",
        t0.elapsed().as_secs_f64(),
        study.all_samples().len(),
        study.pooled_counts().records
    );

    if args.audit {
        if !cfg!(feature = "audit") {
            eprintln!(
                "warning: reproduce was built without the `audit` feature; \
                 the auditor did not run and the report below is vacuous \
                 (rebuild with `cargo run --features audit --bin reproduce`)"
            );
        }
        let audit = study.audit_report();
        eprint!("{}", audit.render());
        if !audit.is_clean() {
            eprintln!(
                "audit FAILED: {} invariant violations",
                audit.total_violations()
            );
            return ExitCode::FAILURE;
        }
    }

    let wanted = |id: &str| args.ids.is_empty() || args.ids.contains(&id.to_ascii_lowercase());
    let mut printed = String::new();
    let mut emit = |id: &str, text: String| {
        if wanted(id) {
            println!("==================== {id} ====================");
            println!("{text}");
        }
        printed.push_str(&format!("==================== {id} ====================\n"));
        printed.push_str(&text);
        printed.push('\n');
    };

    emit("table1", tables::table1());
    emit("table2", tables::table2(&study).render());
    emit("table3", tables::table3(&study).render());
    emit("table4", tables::table4(&study).render());
    emit(
        "tableA1",
        tables::render_table_a1(&tables::table_a1(&study)),
    );
    emit("fig3", figures::fig3(&study));
    emit("fig4", figures::fig4(&study));
    emit("fig5", figures::fig5(&study));
    emit("fig6", figures::fig6(&study));
    emit("fig7", figures::fig7(&study));
    emit("fig8", figures::fig8(&study));
    emit("fig9", figures::fig9(&study));
    emit("fig10", figures::fig10(&study));
    emit("fig11", figures::fig11(&study));
    emit("fig12", figures::fig12(&study));
    emit("fig13", figures::fig13(&study));
    emit("fig14", figures::fig14(&study));
    emit("figA1", figures::fig_a1_a2(&study, 0));
    emit(
        "figA2",
        figures::fig_a1_a2(&study, study.random_sessions.len() - 1),
    );
    emit("figA3", figures::fig_a3(&study));
    emit("figA4", figures::fig_a4(&study));
    emit("figA5", figures::fig_a5(&study));
    emit("figB1", figures::fig_b1(&study));
    emit("figB2", figures::fig_b2(&study));
    emit("figB3", figures::fig_b3(&study));
    emit("figB4", figures::fig_b4(&study));
    emit("figB5", figures::fig_b5(&study));
    emit("figB6", figures::fig_b6(&study));
    emit("figB7", figures::fig_b7(&study));
    emit("figB8", figures::fig_b8(&study));
    emit("figB9", figures::fig_b9(&study));
    emit("figB10", figures::fig_b10(&study));

    let rows = report::comparison(&study);
    emit("comparison", report::render_comparison(&rows));

    if let Some(dir) = &args.out {
        if let Err(e) = write_outputs(dir, &study, &printed, &rows) {
            eprintln!("failed to write outputs to {dir}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote report.txt, comparison.md and study.json to {dir}/");
    }
    ExitCode::SUCCESS
}

fn write_outputs(
    dir: &str,
    study: &Study,
    report_text: &str,
    rows: &[report::CompRow],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(format!("{dir}/report.txt"), report_text)?;
    std::fs::write(
        format!("{dir}/comparison.md"),
        report::render_comparison(rows),
    )?;
    let json = serde_json::to_string(study).expect("study serializes");
    std::fs::write(format!("{dir}/study.json"), json)?;
    Ok(())
}
