//! One benchmark group per table: regenerates Tables 1–4 and A.1 from the
//! shared study and times the analysis pipeline behind each.

use criterion::{criterion_group, criterion_main, Criterion};
use fx8_bench::helpers::shared_quick_study;
use fx8_core::tables;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_event_count_definitions", |b| {
        b.iter(|| black_box(tables::table1()))
    });
}

fn bench_table2(c: &mut Criterion) {
    let study = shared_quick_study();
    let mut g = c.benchmark_group("table2_concurrency_measures");
    g.bench_function("pool_and_measure", |b| {
        b.iter(|| {
            let t = tables::table2(black_box(study));
            black_box(t.measures.workload_concurrency)
        })
    });
    g.bench_function("render", |b| {
        let t = tables::table2(study);
        b.iter(|| black_box(t.render()))
    });
    g.finish();
    // Document the regenerated values once per bench run.
    let t = tables::table2(study);
    eprintln!("{}", t.render());
}

fn bench_table3(c: &mut Criterion) {
    let study = shared_quick_study();
    c.bench_function("table3_regression_cw", |b| {
        b.iter(|| black_box(tables::table3(black_box(study))))
    });
    eprintln!("{}", tables::table3(study).render());
}

fn bench_table4(c: &mut Criterion) {
    let study = shared_quick_study();
    c.bench_function("table4_regression_pc", |b| {
        b.iter(|| black_box(tables::table4(black_box(study))))
    });
    eprintln!("{}", tables::table4(study).render());
}

fn bench_table_a1(c: &mut Criterion) {
    let study = shared_quick_study();
    c.bench_function("tableA1_session_means", |b| {
        b.iter(|| black_box(tables::table_a1(black_box(study))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1, bench_table2, bench_table3, bench_table4, bench_table_a1
}
criterion_main!(benches);
