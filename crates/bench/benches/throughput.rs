//! Simulation-throughput bench: cycles simulated per wall-clock second
//! for each machine state, plus the quick-study wall time. Prints the
//! same numbers that `reproduce --bench-json` persists.
//!
//! Like the other benches this is `harness = false`, so `cargo test`
//! runs it too; without `--bench` it only smoke-tests a short window.

use fx8_core::study::StudyConfig;

fn main() {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    // Under `cargo test` keep the window tiny so the suite stays fast.
    let (min_wall_s, study_cfg) = if bench_mode {
        (1.0, StudyConfig::quick())
    } else {
        let cfg = StudyConfig {
            n_random: 1,
            session_hours: vec![0.05],
            n_triggered: 1,
            captures_per_triggered: 1,
            n_transition: 1,
            captures_per_transition: 1,
            ..StudyConfig::quick()
        };
        (0.02, cfg)
    };
    let n = fx8_bench::throughput::measure(min_wall_s, study_cfg);
    print!("{}", fx8_bench::throughput::render("throughput", &n));
}
