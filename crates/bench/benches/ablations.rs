//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation runs the affected experiment under the default and the
//! ablated configuration, prints the resulting statistic (the scientific
//! payload), and times the default path. The printed comparisons document
//! *why* the machine model is wired the way it is:
//!
//! * `ablation_priority` — CCB grant daisy chain: ends-first vs fair
//!   round-robin. Ends-first reproduces Figure 7's CE0/CE7-heavy
//!   transition activity; round-robin flattens it.
//! * `ablation_locality` — cross-CE panel sharing on vs off. Shared panels
//!   make Missrate insensitive to the number of active CEs (§ 5.1); private
//!   panels make it grow with width.
//! * `ablation_variance` — per-iteration body variance on vs off. Variance
//!   stretches the intermediate (3..7-active) transition states.
//! * `ablation_iters` — iteration counts ≡ 2 (mod 8) vs multiples of 8.
//!   The residue drives Figure 6's 2-active dominance.

use criterion::{criterion_group, criterion_main, Criterion};
use fx8_monitor::{DasConfig, DasMonitor, EventCounts, Trigger};
use fx8_sim::config::Arbitration;
use fx8_sim::stream::{CodeRegion, LoopBody, Op, SerialCode};
use fx8_sim::{CeId, Cluster, MachineConfig};
use fx8_workload::kernels::{self, LoopKernel};
use std::hint::black_box;

/// A detached placeholder that occupies a CE without bus traffic.
struct QuietSerial(CodeRegion);

impl SerialCode for QuietSerial {
    fn code(&self) -> CodeRegion {
        self.0
    }
    fn gen_block(&mut self, _ce: CeId, out: &mut Vec<Op>) {
        out.push(Op::Compute(64));
    }
}

/// Wraps a kernel body, relocating panel references per CE so no line is
/// shared across processors (the "locality off" machine).
struct PrivatePanels {
    inner: Box<dyn LoopBody>,
}

impl LoopBody for PrivatePanels {
    fn code(&self) -> CodeRegion {
        self.inner.code()
    }
    fn gen_iteration(&mut self, iter: u64, ce: CeId, out: &mut Vec<Op>) {
        let mut ops = Vec::new();
        self.inner.gen_iteration(iter, ce, &mut ops);
        // Panel region sits below the streaming region; shift it into a
        // per-CE window so CEs never reuse each other's lines.
        const STREAM_BASE: u64 = 0x2000_0000;
        const CE_SHIFT: u64 = 0x0040_0000;
        for op in &mut ops {
            if let Op::Load(a) | Op::Store(a) = op {
                if a.offset() < STREAM_BASE {
                    *a = a.wrapping_add(ce as u64 * CE_SHIFT);
                }
            }
        }
        out.extend(ops);
    }
}

/// Capture `n` transition buffers for a loop of `iters` iterations under
/// the given CCB arbitration; returns pooled counts.
fn transition_counts(arb: Arbitration, kernel: &LoopKernel, iters: u64, n: usize) -> EventCounts {
    let mut cfg = MachineConfig::fx8();
    cfg.ccb_arbitration = arb;
    let das = DasMonitor::new(DasConfig {
        buffer_depth: 512,
        trigger: Trigger::TransitionFromFull,
        timeout_cycles: 5_000_000,
    });
    let mut pooled = EventCounts::empty(cfg.n_ces);
    for seed in 0..n as u64 {
        let mut cl = Cluster::new(cfg.clone(), seed);
        cl.set_ip_intensity(0.01);
        // Warm the caches on a long run of the same kernel first (a cold
        // panel desynchronizes the iteration lockstep and smears the
        // drain), then remount the tail: cache contents persist across
        // mounts, and the remount restores the loop's leftover structure
        // (remaining ≡ iters mod 8 on a dispatch-round boundary).
        cl.mount_loop(
            kernel.instantiate(1),
            0,
            1_000_000,
            kernels::glue_serial().instantiate(1),
            1,
        );
        cl.run(60_000);
        let first = iters.saturating_sub(48) & !7;
        cl.mount_loop(
            kernel.instantiate(1),
            first,
            iters,
            kernels::glue_serial().instantiate(1),
            1,
        );
        if let Ok(acq) = das.acquire(&mut cl) {
            pooled.accumulate(&acq.records);
        }
    }
    pooled
}

fn ends_to_middle_ratio(counts: &EventCounts) -> f64 {
    let ends = (counts.prof[0] + counts.prof[7]) as f64 / 2.0;
    let middle: f64 = (1..7).map(|j| counts.prof[j] as f64).sum::<f64>() / 6.0;
    ends / middle.max(1.0)
}

fn two_active_share(counts: &EventCounts) -> f64 {
    let transition: u64 = (2..8).map(|j| counts.num[j]).sum();
    counts.num[2] as f64 / transition.max(1) as f64
}

fn middle_state_share(counts: &EventCounts) -> f64 {
    let transition: u64 = (2..8).map(|j| counts.num[j]).sum();
    (3..8).map(|j| counts.num[j]).sum::<u64>() as f64 / transition.max(1) as f64
}

fn ablation_priority(c: &mut Criterion) {
    let kernel = kernels::sor_sweep(258);
    let ends = transition_counts(Arbitration::EndsFirst, &kernel, 258, 8);
    let fair = transition_counts(Arbitration::RoundRobin, &kernel, 258, 8);
    eprintln!(
        "ablation_priority: ends/middle activity ratio — ends-first {:.2}, round-robin {:.2}",
        ends_to_middle_ratio(&ends),
        ends_to_middle_ratio(&fair)
    );
    c.bench_function("ablation_priority_endsfirst_capture", |b| {
        b.iter(|| black_box(transition_counts(Arbitration::EndsFirst, &kernel, 258, 1)))
    });
}

/// Missrate of a width-limited run (detached quiet jobs pin down CEs).
fn missrate_at_width(kernel_body: Box<dyn LoopBody>, width: usize, seed: u64) -> f64 {
    let mut cl = Cluster::new(MachineConfig::fx8(), seed);
    cl.set_ip_intensity(0.0);
    let region = CodeRegion::test_region(9);
    for ce in width..8 {
        cl.mount_detached(ce, Box::new(QuietSerial(region)), 9);
    }
    cl.mount_loop(
        kernel_body,
        0,
        1_000_000,
        kernels::glue_serial().instantiate(1),
        1,
    );
    cl.run(30_000);
    let words = cl.capture(4_096);
    EventCounts::reduce(&words, 8).missrate() / width as f64
}

fn ablation_locality(c: &mut Criterion) {
    let kernel = kernels::matmul(258);
    let shared_wide = missrate_at_width(kernel.instantiate(1), 8, 1) * 8.0;
    let shared_narrow = missrate_at_width(kernel.instantiate(1), 2, 1) * 2.0;
    let private_wide = missrate_at_width(
        Box::new(PrivatePanels {
            inner: kernel.instantiate(1),
        }),
        8,
        1,
    ) * 8.0;
    let private_narrow = missrate_at_width(
        Box::new(PrivatePanels {
            inner: kernel.instantiate(1),
        }),
        2,
        1,
    ) * 2.0;
    eprintln!(
        "ablation_locality: missrate growth 2->8 CEs — shared panels {:.2}x, private panels {:.2}x",
        shared_wide / shared_narrow.max(1e-9),
        private_wide / private_narrow.max(1e-9),
    );
    c.bench_function("ablation_locality_shared_capture", |b| {
        b.iter(|| black_box(missrate_at_width(kernel.instantiate(1), 8, 2)))
    });
}

fn ablation_variance(c: &mut Criterion) {
    let mut smooth = kernels::sor_sweep(258);
    smooth.variance = 0.0;
    let mut jittery = kernels::sor_sweep(258);
    jittery.variance = 0.30;
    let s = transition_counts(Arbitration::EndsFirst, &smooth, 258, 8);
    let j = transition_counts(Arbitration::EndsFirst, &jittery, 258, 8);
    eprintln!(
        "ablation_variance: middle (3..7-active) share of transitions — variance 0.0: {:.2}, 0.3: {:.2}",
        middle_state_share(&s),
        middle_state_share(&j)
    );
    c.bench_function("ablation_variance_smooth_capture", |b| {
        b.iter(|| black_box(transition_counts(Arbitration::EndsFirst, &smooth, 258, 1)))
    });
}

fn ablation_iters(c: &mut Criterion) {
    let kernel = kernels::sor_sweep(258);
    let residue2 = transition_counts(Arbitration::EndsFirst, &kernel, 258, 8);
    let residue0 = transition_counts(Arbitration::EndsFirst, &kernel, 256, 8);
    eprintln!(
        "ablation_iters: 2-active share of transition states — n=258 (8k+2): {:.2}, n=256 (8k): {:.2}",
        two_active_share(&residue2),
        two_active_share(&residue0)
    );
    c.bench_function("ablation_iters_residue2_capture", |b| {
        b.iter(|| black_box(transition_counts(Arbitration::EndsFirst, &kernel, 258, 1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_priority, ablation_locality, ablation_variance, ablation_iters
}
criterion_main!(benches);
