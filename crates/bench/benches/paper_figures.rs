//! One benchmark per figure (or figure family): regenerates each of the
//! thesis's figures from the shared study and times the generation.

use criterion::{criterion_group, criterion_main, Criterion};
use fx8_bench::helpers::shared_quick_study;
use fx8_core::figures;
use fx8_core::study::Study;
use std::hint::black_box;

macro_rules! fig_bench {
    ($fn_name:ident, $bench_name:literal, $gen:expr) => {
        fn $fn_name(c: &mut Criterion) {
            let study = shared_quick_study();
            let generator: fn(&Study) -> String = $gen;
            c.bench_function($bench_name, |b| {
                b.iter(|| black_box(generator(black_box(study))))
            });
        }
    };
}

fig_bench!(fig3, "fig3_processor_histogram", figures::fig3);
fig_bench!(fig4, "fig4_cw_distribution", figures::fig4);
fig_bench!(fig5, "fig5_pc_distribution", figures::fig5);
fig_bench!(fig6, "fig6_transition_histogram", figures::fig6);
fig_bench!(fig7, "fig7_per_ce_transition_activity", figures::fig7);
fig_bench!(fig8, "fig8_missrate_vs_cw_scatter", figures::fig8);
fig_bench!(fig9, "fig9_missrate_vs_pc_scatter", figures::fig9);
fig_bench!(fig10, "fig10_missrate_cw_bands", figures::fig10);
fig_bench!(fig11, "fig11_missrate_pc_bands", figures::fig11);
fig_bench!(fig12, "fig12_missrate_model", figures::fig12);
fig_bench!(fig13, "fig13_busy_model_cw", figures::fig13);
fig_bench!(fig14, "fig14_busy_model_pc", figures::fig14);
fig_bench!(fig_a3, "figA3_busy_distribution", figures::fig_a3);
fig_bench!(fig_a4, "figA4_missrate_distribution", figures::fig_a4);
fig_bench!(fig_a5, "figA5_pfr_distribution", figures::fig_a5);
fig_bench!(fig_b1, "figB1_busy_vs_cw_scatter", figures::fig_b1);
fig_bench!(fig_b2, "figB2_busy_vs_pc_scatter", figures::fig_b2);
fig_bench!(fig_b3, "figB3_busy_cw_bands", figures::fig_b3);
fig_bench!(fig_b4, "figB4_busy_pc_bands", figures::fig_b4);
fig_bench!(fig_b5, "figB5_pfr_vs_cw_scatter", figures::fig_b5);
fig_bench!(fig_b6, "figB6_pfr_vs_pc_scatter", figures::fig_b6);
fig_bench!(fig_b7, "figB7_pfr_cw_bands", figures::fig_b7);
fig_bench!(fig_b8, "figB8_pfr_pc_bands", figures::fig_b8);
fig_bench!(fig_b9, "figB9_pfr_model_cw", figures::fig_b9);
fig_bench!(fig_b10, "figB10_pfr_model_pc", figures::fig_b10);

fn fig_a1_a2(c: &mut Criterion) {
    let study = shared_quick_study();
    c.bench_function("figA1_A2_per_session_histograms", |b| {
        b.iter(|| {
            black_box(figures::fig_a1_a2(black_box(study), 0));
            black_box(figures::fig_a1_a2(
                black_box(study),
                study.random_sessions.len() - 1,
            ));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14,
        fig_a1_a2, fig_a3, fig_a4, fig_a5, fig_b1, fig_b2, fig_b3, fig_b4, fig_b5, fig_b6,
        fig_b7, fig_b8, fig_b9, fig_b10
}
criterion_main!(benches);
