//! Machine-model throughput: how fast the simulator itself runs.
//!
//! These benches bound the cost of the measurement pipeline (cycles
//! simulated per second) for the three machine states the workload
//! alternates between, plus the monitor's acquisition path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fx8_bench::helpers::{glue, loop_body, warm_loop_cluster};
use fx8_monitor::{DasConfig, DasMonitor, EventCounts, Trigger};
use fx8_sim::{Cluster, MachineConfig};
use fx8_workload::kernels;
use std::hint::black_box;

const CYCLES: u64 = 10_000;

fn bench_step_idle(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_step");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("idle", |b| {
        let mut cl = Cluster::new(MachineConfig::fx8(), 1);
        cl.set_ip_intensity(0.015);
        b.iter(|| {
            for _ in 0..CYCLES {
                black_box(cl.step());
            }
        })
    });
    g.bench_function("serial", |b| {
        let mut cl = Cluster::new(MachineConfig::fx8(), 1);
        cl.set_ip_intensity(0.015);
        cl.mount_serial(kernels::scalar_serial().instantiate(1), 1, None);
        b.iter(|| {
            for _ in 0..CYCLES {
                black_box(cl.step());
            }
        })
    });
    g.bench_function("full_loop", |b| {
        let mut cl = warm_loop_cluster(1);
        b.iter(|| {
            for _ in 0..CYCLES {
                black_box(cl.step());
            }
        })
    });
    g.finish();
}

fn bench_acquisition(c: &mut Criterion) {
    let mut g = c.benchmark_group("das_acquisition");
    g.bench_function("immediate_512", |b| {
        let mut cl = warm_loop_cluster(2);
        let das = DasMonitor::new(DasConfig::das9100(Trigger::Immediate));
        b.iter(|| black_box(das.acquire(&mut cl).expect("immediate cannot fail")))
    });
    g.bench_function("reduce_512", |b| {
        let mut cl = warm_loop_cluster(3);
        let words = cl.capture(512);
        b.iter(|| black_box(EventCounts::reduce(black_box(&words), 8)))
    });
    g.finish();
}

fn bench_loop_mount_and_drain(c: &mut Criterion) {
    c.bench_function("loop_drain_64_iters", |b| {
        b.iter(|| {
            let mut cl = Cluster::new(MachineConfig::fx8(), 4);
            cl.set_ip_intensity(0.0);
            cl.mount_loop(loop_body(&kernels::sor_sweep(258)), 194, 258, glue(), 1);
            let mut steps = 0u64;
            while cl.load_kind() != fx8_sim::cluster::LoadKind::Drained && steps < 500_000 {
                cl.step();
                steps += 1;
            }
            black_box(steps)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_step_idle, bench_acquisition, bench_loop_mount_and_drain
}
criterion_main!(benches);
