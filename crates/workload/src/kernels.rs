//! The kernel library.
//!
//! Every kernel compiles to the simulator's operation-stream interface with
//! *real addresses*, so cache hits, cross-CE reuse, interleave conflicts
//! and page faults all emerge from the machine model. A uniform
//! parameterization captures the memory shapes of the codes the thesis
//! names:
//!
//! * a **shared panel** — a cache-resident region every iteration re-reads
//!   (the blocked-BLAS panels of the CSRD linear-algebra kernels — thesis ref. 5 — the
//!   coefficient tables of circuit simulation). Panel references are the
//!   cross-processor locality § 5.1 credits for Missrate's insensitivity
//!   to the number of active processors;
//! * **streaming lines** — per-iteration-unique rows/blocks (matrix rows,
//!   vector blocks) that miss on first touch and make concurrent code more
//!   data-intensive than serial code (§ 5.3's explanation for Missrate's
//!   strong dependence on `C_w`);
//! * **compute bursts** — register-to-register scalar/vector work
//!   (32-element vector operations live entirely in vector registers);
//! * an optional **dependence** — `advance`/`await` synchronization over
//!   the CCB for loops with iteration-carried recurrences;
//! * **per-iteration variance** — conditional branching makes iteration
//!   bodies differ, one of § 4.3's causes of stretched-out transitions.

use fx8_sim::addr::{PageId, VAddr, PAGE_BYTES};
use fx8_sim::stream::{CodeRegion, LoopBody, Op, SerialCode};
use fx8_sim::{Asid, CeId};
use serde::{Deserialize, Serialize};

/// Cache-line size assumed by address layout (matches `MachineConfig::fx8`).
pub const LINE_BYTES: u64 = 32;

/// Base of the code region within a job's address space.
const CODE_BASE: u64 = 0x0000_0000;
/// Base of the shared panel region.
const PANEL_BASE: u64 = 0x0100_0000;
/// Base of the streaming region.
const STREAM_BASE: u64 = 0x2000_0000;
/// Base of the serial hot data region.
const HOT_BASE: u64 = 0x0080_0000;

/// Parameters of a concurrent-loop kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopKernel {
    /// Human-readable kernel name.
    pub name: String,
    /// Loop iteration count (the DO-loop trip count).
    pub iters: u64,
    /// Lines in the shared, heavily-reused panel.
    pub panel_lines: u64,
    /// Panel references per iteration.
    pub panel_refs: u32,
    /// Per-iteration-unique streaming lines (loads).
    pub stream_lines: u32,
    /// Per-iteration-unique streaming lines (stores).
    pub store_lines: u32,
    /// Register-only instructions per iteration (includes vector ops).
    pub compute: u32,
    /// Code footprint in bytes (≤ 16 KB fits the CE icache).
    pub code_bytes: u64,
    /// Iteration-carried dependence: fraction of the body that must run in
    /// iteration order (None = fully independent).
    pub dependence: Option<f64>,
    /// Per-iteration body-size variance, ± fraction (conditional branching).
    pub variance: f64,
}

impl LoopKernel {
    /// Rough cycles per iteration for macro-level timing: compute plus hit
    /// references plus miss penalties on streaming lines.
    pub fn est_cycles_per_iter(&self) -> u64 {
        let refs = self.panel_refs as u64 + (self.stream_lines + self.store_lines) as u64;
        let miss_penalty = 15 * (self.stream_lines + self.store_lines) as u64;
        self.compute as u64 + refs + miss_penalty
    }

    /// Estimated cycles for the whole loop on `p` processors. Dependent
    /// loops pipeline: throughput is bounded by the serialized fraction of
    /// each iteration, whatever the processor count.
    pub fn est_cycles(&self, p: u64) -> u64 {
        let per = self.est_cycles_per_iter();
        let parallel = per.div_ceil(p.min(self.iters.max(1)).max(1));
        let pipeline_bound = match self.dependence {
            Some(f) => (per as f64 * f) as u64,
            None => 0,
        };
        self.iters * parallel.max(pipeline_bound).max(1)
    }

    /// The pages this loop touches (panel + streamed data + code).
    pub fn data_pages(&self, asid: Asid) -> Vec<PageId> {
        let mut pages = Vec::new();
        let panel_bytes = self.panel_lines * LINE_BYTES;
        push_region_pages(&mut pages, asid, PANEL_BASE, panel_bytes);
        let stream_bytes = self.iters * (self.stream_lines + self.store_lines) as u64 * LINE_BYTES;
        // Streaming working sets are capped: a real streaming loop keeps
        // only a sliding window resident; the drift model accounts for the
        // rest of its fault traffic.
        push_region_pages(
            &mut pages,
            asid,
            STREAM_BASE,
            stream_bytes.min(4 * 1024 * 1024),
        );
        push_region_pages(&mut pages, asid, CODE_BASE, self.code_bytes);
        pages
    }

    /// Instantiate the loop body for a job in address space `asid`.
    pub fn instantiate(&self, asid: Asid) -> Box<dyn LoopBody> {
        Box::new(KernelLoopBody {
            spec: self.clone(),
            asid,
            templates: std::collections::HashMap::new(),
        })
    }

    /// The code region of the body.
    pub fn code(&self, asid: Asid) -> CodeRegion {
        CodeRegion {
            base: VAddr::new(asid, CODE_BASE),
            footprint_bytes: self.code_bytes.max(64),
            bytes_per_instr: 4,
        }
    }
}

/// Parameters of a serial kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SerialKernel {
    /// Human-readable kernel name.
    pub name: String,
    /// Lines in the hot data set (scalar locals, symbol tables).
    pub hot_lines: u64,
    /// Hot references per block.
    pub hot_refs: u32,
    /// Streaming (cold) lines touched per block.
    pub stream_lines: u32,
    /// Store fraction of hot references (0..1).
    pub store_fraction: f64,
    /// Register-only instructions per block.
    pub compute: u32,
    /// Code footprint in bytes (serial development code is often larger
    /// than the 16 KB icache, unlike loop bodies).
    pub code_bytes: u64,
}

impl SerialKernel {
    /// Rough cycles per generated block for macro timing.
    pub fn est_cycles_per_block(&self) -> u64 {
        self.compute as u64
            + (self.hot_refs + self.stream_lines) as u64
            + 15 * self.stream_lines as u64
    }

    /// Pages of the hot set plus code.
    pub fn data_pages(&self, asid: Asid) -> Vec<PageId> {
        let mut pages = Vec::new();
        push_region_pages(&mut pages, asid, HOT_BASE, self.hot_lines * LINE_BYTES);
        push_region_pages(&mut pages, asid, CODE_BASE, self.code_bytes);
        pages
    }

    /// Instantiate the stream for a job in address space `asid`.
    pub fn instantiate(&self, asid: Asid) -> Box<dyn SerialCode> {
        Box::new(KernelSerialCode {
            spec: self.clone(),
            asid,
            block: 0,
        })
    }

    /// The code region.
    pub fn code(&self, asid: Asid) -> CodeRegion {
        CodeRegion {
            base: VAddr::new(asid, CODE_BASE),
            footprint_bytes: self.code_bytes.max(64),
            bytes_per_instr: 4,
        }
    }
}

fn push_region_pages(pages: &mut Vec<PageId>, asid: Asid, base: u64, bytes: u64) {
    let first = base / PAGE_BYTES;
    let last = (base + bytes.max(1) - 1) / PAGE_BYTES;
    for p in first..=last {
        pages.push(VAddr::new(asid, p * PAGE_BYTES).page());
    }
}

/// Deterministic per-iteration hash, independent of execution order.
#[inline]
fn iter_hash(iter: u64, salt: u64) -> u64 {
    // SplitMix64 finalizer.
    let mut z = iter.wrapping_add(salt).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A decoded iteration body, cached by shape. After variance scaling, the
/// op sequence of an iteration is fully determined by the scaled
/// `(compute, panel_refs)` pair; only the streaming addresses (linear in
/// the iteration number) and the sync targets depend on `iter` itself, so
/// they are recorded as patch positions and rewritten at replay.
struct IterTemplate {
    /// The decoded op trace, with some other iteration's stream addresses
    /// and sync targets in the patched slots (always overwritten).
    ops: Vec<Op>,
    /// `(position, j)`: the Load/Store at `position` targets stream slot
    /// `j`, i.e. `stream_base(iter) + j * LINE_BYTES`.
    stream: Vec<(u32, u32)>,
    /// Positions holding `Op::AwaitSync(iter)`.
    awaits: Vec<u32>,
    /// Positions holding `Op::PostSync(iter + 1)`.
    posts: Vec<u32>,
}

/// Distinct body shapes cached per loop body before falling back to
/// re-decoding: the variance hash has at most 2001 classes, and real
/// kernels collapse to a few dozen `(compute, panel_refs)` pairs, so the
/// cap is rarely reached — it only bounds worst-case memory.
const TEMPLATE_CACHE_CAP: usize = 256;

/// A [`LoopBody`] realized from a [`LoopKernel`].
struct KernelLoopBody {
    spec: LoopKernel,
    asid: Asid,
    /// Decoded access-stream cache, keyed by scaled `(compute, panel_refs)`.
    templates: std::collections::HashMap<(u32, u32), IterTemplate>,
}

impl LoopBody for KernelLoopBody {
    fn code(&self) -> CodeRegion {
        self.spec.code(self.asid)
    }

    fn gen_iteration(&mut self, iter: u64, _ce: CeId, out: &mut Vec<Op>) {
        let s = &self.spec;
        let h = iter_hash(iter, 0x5eed);
        // Conditional branching: scale the body by ±variance.
        let scale = 1.0 + s.variance * (((h % 2001) as f64 / 1000.0) - 1.0);
        let compute = ((s.compute as f64) * scale).max(1.0) as u32;
        let panel_refs = ((s.panel_refs as f64) * scale).round() as u32;

        let n_stream = (s.stream_lines + s.store_lines) as u64;
        let stream_base = STREAM_BASE + iter * n_stream * LINE_BYTES;
        let start = out.len();

        // Fast path: replay the decoded trace and patch the
        // iteration-dependent slots. Byte-identical to re-decoding.
        if let Some(t) = self.templates.get(&(compute, panel_refs)) {
            out.extend_from_slice(&t.ops);
            for &(pos, j) in &t.stream {
                let a = VAddr::new(self.asid, stream_base + j as u64 * LINE_BYTES);
                out[start + pos as usize].patch_addr(a);
            }
            for &p in &t.awaits {
                out[start + p as usize] = Op::AwaitSync(iter);
            }
            for &p in &t.posts {
                out[start + p as usize] = Op::PostSync(iter + 1);
            }
            return;
        }

        // Decode path, recording the iteration-dependent positions.
        let dependence = s.dependence;
        let stream_lines = s.stream_lines as u64;
        let panel_lines = s.panel_lines.max(1);
        let asid = self.asid;
        let mut stream_rec: Vec<(u32, u32)> = Vec::new();
        let mut awaits: Vec<u32> = Vec::new();
        let mut posts: Vec<u32> = Vec::new();

        // Dependent section first: wait for the previous iteration.
        if let Some(frac) = dependence {
            let pre = ((compute as f64) * (1.0 - frac)) as u32;
            if pre > 0 {
                out.push(Op::Compute(pre));
            }
            awaits.push((out.len() - start) as u32);
            out.push(Op::AwaitSync(iter));
        }

        // The body walks its resident panel with streaming mini-bursts at
        // the thirds of the walk: a blocked kernel computes against the
        // panel and fetches the next row chunk as it crosses each block
        // boundary. Bursts pipeline on the memory bus (near-deterministic
        // duration, preserving the cluster's lockstep — the precondition
        // for the sharp 8-to-2 transition collapse of § 4.3) yet occur
        // often enough that captured windows of a streaming kernel see
        // its misses.
        let total_refs = panel_refs as u64 + n_stream;
        let burst = (compute as u64 / (total_refs + 1)).max(1) as u32;
        let panel_bytes = panel_lines * LINE_BYTES;
        let mut next_stream = 0u64;
        let mut emitted_compute = 0u32;
        let third = (panel_refs / 3).max(1);
        let per_burst = n_stream.div_ceil(3).max(1);
        let emit_stream_burst =
            |next_stream: &mut u64, out: &mut Vec<Op>, rec: &mut Vec<(u32, u32)>| {
                for _ in 0..per_burst {
                    if *next_stream >= n_stream {
                        break;
                    }
                    rec.push(((out.len() - start) as u32, *next_stream as u32));
                    let a = VAddr::new(asid, stream_base + *next_stream * LINE_BYTES);
                    if *next_stream < stream_lines {
                        out.push(Op::Load(a));
                    } else {
                        out.push(Op::Store(a));
                    }
                    *next_stream += 1;
                }
            };

        for r in 0..panel_refs {
            // Walk the panel with the same deterministic stride every
            // iteration: a vectorized body executes an identical reference
            // pattern each trip. The CEs' staggered CCB start times
            // de-conflict the banks.
            let line = (r as u64 * 7) % panel_lines;
            out.push(Op::Load(VAddr::new(
                asid,
                PANEL_BASE + (line * LINE_BYTES) % panel_bytes,
            )));
            if emitted_compute < compute {
                out.push(Op::Compute(burst));
                emitted_compute += burst;
            }
            if (r + 1) % third == 0 {
                emit_stream_burst(&mut next_stream, out, &mut stream_rec);
            }
        }
        while next_stream < n_stream {
            emit_stream_burst(&mut next_stream, out, &mut stream_rec);
        }
        if emitted_compute < compute {
            out.push(Op::Compute(compute - emitted_compute));
        }

        // Release the next iteration.
        if dependence.is_some() {
            posts.push((out.len() - start) as u32);
            out.push(Op::PostSync(iter + 1));
        }

        if self.templates.len() < TEMPLATE_CACHE_CAP {
            self.templates.insert(
                (compute, panel_refs),
                IterTemplate {
                    ops: out[start..].to_vec(),
                    stream: stream_rec,
                    awaits,
                    posts,
                },
            );
        }
    }
}

/// A [`SerialCode`] realized from a [`SerialKernel`].
struct KernelSerialCode {
    spec: SerialKernel,
    asid: Asid,
    block: u64,
}

impl SerialCode for KernelSerialCode {
    fn code(&self) -> CodeRegion {
        self.spec.code(self.asid)
    }

    fn gen_block(&mut self, _ce: CeId, out: &mut Vec<Op>) {
        let s = &self.spec;
        let h = iter_hash(self.block, 0xc0de);
        self.block += 1;
        let hot_bytes = s.hot_lines.max(1) * LINE_BYTES;
        let burst = (s.compute / (s.hot_refs + s.stream_lines + 1)).max(1);
        let mut emitted = 0u32;
        let store_every = if s.store_fraction > 0.0 {
            (1.0 / s.store_fraction).round().max(1.0) as u32
        } else {
            u32::MAX
        };
        for r in 0..s.hot_refs {
            let line = (h.wrapping_add(r as u64 * 13)) % s.hot_lines.max(1);
            let a = VAddr::new(self.asid, HOT_BASE + (line * LINE_BYTES) % hot_bytes);
            if r % store_every == store_every - 1 {
                out.push(Op::Store(a));
            } else {
                out.push(Op::Load(a));
            }
            if emitted < s.compute {
                out.push(Op::Compute(burst));
                emitted += burst;
            }
        }
        // Cold streaming references wander through a larger region.
        for l in 0..s.stream_lines {
            let line = iter_hash(self.block * 97 + l as u64, 0x0ff5e7) % 65_536;
            out.push(Op::Load(VAddr::new(
                self.asid,
                STREAM_BASE + line * LINE_BYTES,
            )));
            if emitted < s.compute {
                out.push(Op::Compute(burst));
                emitted += burst;
            }
        }
        if emitted < s.compute {
            out.push(Op::Compute(s.compute - emitted));
        }
    }
}

// ---------------------------------------------------------------------------
// Named kernels — parameter sets matching the codes the thesis names.
// ---------------------------------------------------------------------------

/// Blocked matrix multiply (the BLAS3 kernels of CSRD report 610): heavy
/// panel reuse, one streamed row pair per iteration, vector-register rich.
pub fn matmul(n: u64) -> LoopKernel {
    LoopKernel {
        name: format!("matmul-{n}"),
        iters: n,
        panel_lines: 1536, // ~48 KB panel: fits the 128 KB shared cache
        panel_refs: (n * 3).clamp(96, 768) as u32,
        stream_lines: (n / 64).clamp(1, 6) as u32,
        store_lines: (n / 128).clamp(1, 3) as u32,
        compute: (n * 5).clamp(160, 1280) as u32,
        code_bytes: 2 * 1024,
        dependence: None,
        variance: 0.02,
    }
}

/// Vector triad `a = b + s*c` over long vectors: streaming-dominated,
/// little reuse — the data-intensive extreme.
pub fn vector_triad(blocks: u64) -> LoopKernel {
    LoopKernel {
        name: format!("triad-{blocks}"),
        iters: blocks,
        panel_lines: 64,
        panel_refs: 4,
        stream_lines: 16, // two 32-element source blocks
        store_lines: 8,   // one destination block
        compute: 48,
        code_bytes: 512,
        dependence: None,
        variance: 0.01,
    }
}

/// SOR / five-point stencil row sweep (structural mechanics): neighbour
/// rows shared between adjacent iterations give moderate reuse.
pub fn sor_sweep(rows: u64) -> LoopKernel {
    LoopKernel {
        name: format!("sor-{rows}"),
        iters: rows,
        panel_lines: 2048, // neighbour rows + coefficient tables stay cached
        panel_refs: 384,
        stream_lines: 2, // the leading new row chunk
        store_lines: 1,  // updated row chunk
        compute: 640,
        code_bytes: 1024,
        dependence: None,
        variance: 0.02,
    }
}

/// First-order linear recurrence (tridiagonal-style solve): iteration `i`
/// needs `x(i-1)` — a fully dependent loop, mostly CCB waiting.
pub fn recurrence(n: u64) -> LoopKernel {
    LoopKernel {
        name: format!("recurrence-{n}"),
        iters: n,
        panel_lines: 128,
        panel_refs: 24,
        stream_lines: 2,
        store_lines: 1,
        compute: 40,
        code_bytes: 512,
        dependence: Some(0.7),
        variance: 0.02,
    }
}

/// Dot-product style reduction: register accumulation, pure streaming
/// loads, no stores.
pub fn reduction(blocks: u64) -> LoopKernel {
    LoopKernel {
        name: format!("reduction-{blocks}"),
        iters: blocks,
        panel_lines: 32,
        panel_refs: 2,
        stream_lines: 2,
        store_lines: 0,
        compute: 128,
        code_bytes: 256,
        dependence: None,
        variance: 0.01,
    }
}

/// LU panel update (the "assembly-level kernels for linear system
/// solving"): panel reuse with a strided streamed update.
pub fn lu_panel(n: u64) -> LoopKernel {
    LoopKernel {
        name: format!("lu-panel-{n}"),
        iters: n,
        panel_lines: 1024,
        panel_refs: (n * 2).clamp(96, 576) as u32,
        stream_lines: (n / 128).clamp(1, 3) as u32,
        store_lines: (n / 128).clamp(1, 3) as u32,
        compute: (n * 3).clamp(160, 960) as u32,
        code_bytes: 3 * 1024,
        dependence: None, // pivot selection is handled in the serial glue
        variance: 0.03,
    }
}

/// A short boundary-condition loop: real FORTRAN is full of DO loops with
/// tiny trip counts (edge rows, per-group setup) that engage only as many
/// CEs as they have iterations. These produce the genuine 2..7-active
/// records of Table 2's middle columns and populate the low `P_c` bins of
/// the Chapter 5 analysis.
pub fn boundary_loop(trips: u64) -> LoopKernel {
    LoopKernel {
        name: format!("boundary-{trips}"),
        iters: trips.clamp(2, 7),
        panel_lines: 256,
        panel_refs: 48,
        stream_lines: 1,
        store_lines: 1,
        compute: 128,
        code_bytes: 512,
        dependence: None,
        variance: 0.02,
    }
}

/// A coarse-grain parallel region: the domain decomposed into a handful
/// of big chunks (quadrant solvers, per-group analyses), each a long
/// independent piece of work. Trip counts below the cluster width engage
/// only that many CEs for a long stretch — the sustained partial
/// concurrency behind the populated middle `P_c` bins.
pub fn chunked_region(chunks: u64) -> LoopKernel {
    LoopKernel {
        name: format!("chunked-{chunks}"),
        iters: chunks.clamp(2, 7),
        panel_lines: 1024,
        panel_refs: 8192,
        stream_lines: 56,
        store_lines: 16,
        compute: 16384,
        code_bytes: 4 * 1024,
        dependence: None,
        variance: 0.05,
    }
}

/// A fine-grain parallel loop nest: short trip counts cycled rapidly with
/// scalar glue, so dispatch ramps and drains occupy a large share of the
/// execution. Sampled intervals of such code mix full-width, transition
/// and serial records — ordinary missrates at depressed `P_c`, which is
/// what keeps Missrate flat against Mean Concurrency Level (§ 5.1).
pub fn fine_grain_loop(n: u64) -> LoopKernel {
    LoopKernel {
        name: format!("fine-grain-{n}"),
        iters: 10 + n % 12,
        panel_lines: 1024,
        panel_refs: 384,
        stream_lines: 2,
        store_lines: 1,
        compute: 640,
        code_bytes: 1024,
        dependence: None,
        variance: 0.02,
    }
}

/// Light interactive parallel work: a developer testing a parallelized
/// routine from the terminal — panel-resident, barely any streaming.
/// Generates concurrency with very low cache traffic, the low-miss side
/// of the workload's mid-`C_w` intervals.
pub fn interactive_kernel(n: u64) -> LoopKernel {
    LoopKernel {
        name: format!("interactive-{n}"),
        iters: n,
        panel_lines: 512,
        panel_refs: 256,
        stream_lines: 1,
        store_lines: 0,
        compute: 768,
        code_bytes: 1024,
        dependence: None,
        variance: 0.02,
    }
}

/// Scalar development work (editing, compiling, linking): big code
/// footprint (> 16 KB icache), small hot data, low intensity.
pub fn scalar_serial() -> SerialKernel {
    SerialKernel {
        name: "scalar-serial".into(),
        hot_lines: 2048, // 64 KB hot set
        hot_refs: 12,
        stream_lines: 0,
        store_fraction: 0.25,
        compute: 64,
        code_bytes: 48 * 1024,
    }
}

/// Serial numeric setup (mesh generation, input parsing): sequential
/// touches of large arrays — fault- and miss-heavier serial work.
pub fn data_prep() -> SerialKernel {
    SerialKernel {
        name: "data-prep".into(),
        hot_lines: 512,
        hot_refs: 8,
        stream_lines: 4,
        store_fraction: 0.4,
        compute: 48,
        code_bytes: 8 * 1024,
    }
}

/// Glue scalar code between loop nests (loop setup, norm checks).
pub fn glue_serial() -> SerialKernel {
    SerialKernel {
        name: "glue-serial".into(),
        hot_lines: 256,
        hot_refs: 6,
        stream_lines: 0,
        store_fraction: 0.2,
        compute: 56,
        code_bytes: 4 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_iterations_reference_shared_panel_and_unique_streams() {
        let k = sor_sweep(100);
        let mut body = k.instantiate(1);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        body.gen_iteration(3, 0, &mut a);
        body.gen_iteration(4, 1, &mut b);
        let loads = |ops: &[Op]| -> Vec<u64> {
            ops.iter()
                .filter_map(|op| match op {
                    Op::Load(x) => Some(x.offset()),
                    _ => None,
                })
                .collect()
        };
        let (la, lb) = (loads(&a), loads(&b));
        // Panel loads overlap across iterations (shared lines)...
        let panel = |v: &[u64]| v.iter().filter(|&&x| x < STREAM_BASE).count();
        assert!(panel(&la) > 0 && panel(&lb) > 0);
        // ...streaming loads are disjoint.
        let stream = |v: &[u64]| -> std::collections::BTreeSet<u64> {
            v.iter().copied().filter(|&x| x >= STREAM_BASE).collect()
        };
        assert!(
            stream(&la).is_disjoint(&stream(&lb)),
            "streams must be per-iteration"
        );
    }

    #[test]
    fn iteration_generation_is_deterministic_and_order_free() {
        let k = matmul(64);
        let mut b1 = k.instantiate(1);
        let mut b2 = k.instantiate(1);
        let (mut x, mut y) = (Vec::new(), Vec::new());
        // Generate in different orders; iteration 5 must be identical.
        b1.gen_iteration(9, 0, &mut Vec::new());
        b1.gen_iteration(5, 0, &mut x);
        b2.gen_iteration(5, 3, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn variance_changes_iteration_sizes() {
        let k = sor_sweep(1000);
        let mut body = k.instantiate(1);
        let mut sizes = std::collections::BTreeSet::new();
        for i in 0..50 {
            let mut ops = Vec::new();
            body.gen_iteration(i, 0, &mut ops);
            let cycles: u64 = ops
                .iter()
                .map(|op| match op {
                    Op::Compute(c) => *c as u64,
                    _ => 1,
                })
                .sum();
            sizes.insert(cycles);
        }
        assert!(sizes.len() > 10, "bodies should vary: {sizes:?}");
    }

    #[test]
    fn dependent_kernel_emits_sync_pairs() {
        let k = recurrence(50);
        let mut body = k.instantiate(2);
        let mut ops = Vec::new();
        body.gen_iteration(7, 0, &mut ops);
        assert!(ops.contains(&Op::AwaitSync(7)));
        assert!(ops.contains(&Op::PostSync(8)));
        let await_pos = ops
            .iter()
            .position(|o| matches!(o, Op::AwaitSync(_)))
            .unwrap();
        let post_pos = ops
            .iter()
            .position(|o| matches!(o, Op::PostSync(_)))
            .unwrap();
        assert!(await_pos < post_pos, "await must precede post");
    }

    #[test]
    fn independent_kernels_emit_no_sync() {
        let k = vector_triad(100);
        let mut body = k.instantiate(1);
        let mut ops = Vec::new();
        body.gen_iteration(0, 0, &mut ops);
        assert!(!ops
            .iter()
            .any(|o| matches!(o, Op::AwaitSync(_) | Op::PostSync(_))));
    }

    #[test]
    fn serial_kernel_revisits_hot_set() {
        let k = scalar_serial();
        let mut code = k.instantiate(1);
        let mut seen = std::collections::HashMap::new();
        for _ in 0..200 {
            let mut ops = Vec::new();
            code.gen_block(0, &mut ops);
            for op in ops {
                if let Op::Load(a) | Op::Store(a) = op {
                    if a.offset() < STREAM_BASE {
                        *seen.entry(a.offset() / LINE_BYTES).or_insert(0u32) += 1;
                    }
                }
            }
        }
        assert!(
            seen.values().any(|&c| c > 1),
            "hot lines must be revisited across blocks"
        );
        assert!(seen.len() <= k.hot_lines as usize);
    }

    #[test]
    fn serial_kernel_mixes_loads_and_stores() {
        let k = data_prep();
        let mut code = k.instantiate(1);
        let mut ops = Vec::new();
        for _ in 0..20 {
            code.gen_block(0, &mut ops);
        }
        assert!(ops.iter().any(|o| matches!(o, Op::Store(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::Load(_))));
    }

    #[test]
    fn estimates_are_positive_and_scale_with_processors() {
        let k = matmul(256);
        assert!(k.est_cycles_per_iter() > 0);
        assert!(k.est_cycles(8) < k.est_cycles(1));
        assert_eq!(k.est_cycles(1), k.iters * k.est_cycles_per_iter());
    }

    #[test]
    fn data_pages_cover_panel_code_and_stream() {
        let k = vector_triad(64);
        let pages = k.data_pages(3);
        assert!(!pages.is_empty());
        // All pages belong to ASID 3.
        assert!(pages.iter().all(|p| p.asid() == 3));
        // Streamed region pages grow with iteration count.
        let more = vector_triad(640).data_pages(3);
        assert!(more.len() > pages.len());
    }

    #[test]
    fn code_regions_fit_declared_footprints() {
        let k = sor_sweep(10);
        let r = k.code(1);
        assert_eq!(r.footprint_bytes, 1024);
        assert_eq!(r.base.asid(), 1);
        let s = scalar_serial();
        assert!(
            s.code(1).footprint_bytes > 16 * 1024,
            "development code exceeds the icache"
        );
    }

    #[test]
    fn iter_hash_is_stable() {
        assert_eq!(iter_hash(42, 1), iter_hash(42, 1));
        assert_ne!(iter_hash(42, 1), iter_hash(43, 1));
        assert_ne!(iter_hash(42, 1), iter_hash(42, 2));
    }
}
