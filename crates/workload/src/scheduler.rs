//! The session driver: Concentrix-like macro scheduling.
//!
//! Concentrix gang-schedules the Computational Cluster: a cluster job owns
//! all eight CEs while it runs; other jobs queue. The driver advances
//! *macro* time — job arrivals, job completions, page-fault accounting —
//! in O(events), then mounts the exact machine state (phase, loop
//! progress) onto the [`Cluster`] so a captured window starts from the
//! right place. Everything inside a window is then cycle-level simulation.

use crate::program::{PhaseSpec, ProgramSpec, MACRO_P};
use fx8_sim::vm::FaultMode;
use fx8_sim::{Asid, Cluster, Cycle};
use std::collections::VecDeque;

/// A job waiting to run.
#[derive(Debug, Clone)]
struct QueuedJob {
    arrival: Cycle,
    program: ProgramSpec,
}

/// The job occupying the cluster.
struct RunningJob {
    program: ProgramSpec,
    asid: Asid,
    start: Cycle,
}

/// Drives one measurement session's workload on a cluster.
pub struct SessionDriver {
    cluster: Cluster,
    /// Future arrivals, ascending.
    pending: VecDeque<QueuedJob>,
    /// Arrived jobs waiting for the cluster (FCFS).
    ready: VecDeque<QueuedJob>,
    running: Option<RunningJob>,
    mac_now: Cycle,
    next_asid: Asid,
    /// Fractional fault accumulation from the drift model.
    drift_carry: f64,
    /// Round-robin CE index for charging drift faults.
    drift_rr: usize,
    /// Jobs completed so far.
    completed: u64,
}

impl SessionDriver {
    /// Build a driver over `cluster` with a pre-generated arrival schedule.
    pub fn new(cluster: Cluster, arrivals: Vec<(Cycle, ProgramSpec)>) -> Self {
        let mut sorted = arrivals;
        sorted.sort_by_key(|a| a.0);
        SessionDriver {
            mac_now: cluster.now(),
            cluster,
            pending: sorted
                .into_iter()
                .map(|(arrival, program)| QueuedJob { arrival, program })
                .collect(),
            ready: VecDeque::new(),
            running: None,
            next_asid: 1,
            drift_carry: 0.0,
            drift_rr: 0,
            completed: 0,
        }
    }

    /// The machine (mutable, for the monitor to step).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The machine (read-only).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Current macro time.
    pub fn now(&self) -> Cycle {
        self.mac_now
    }

    /// Name of the running job, if any.
    pub fn running_job(&self) -> Option<&str> {
        self.running.as_ref().map(|r| r.program.name.as_str())
    }

    /// Jobs completed so far.
    pub fn completed_jobs(&self) -> u64 {
        self.completed
    }

    /// Advance macro time to `t` (or the cluster clock, whichever is
    /// later — captured windows may have stepped the machine forward), then
    /// mount the machine state executing at that instant.
    pub fn advance_to(&mut self, t: Cycle) {
        let t = t.max(self.cluster.now()).max(self.mac_now);
        self.advance_events(t);
        self.mount();
    }

    fn advance_events(&mut self, t: Cycle) {
        self.mac_now = self.mac_now.max(self.cluster.now());
        while self.mac_now < t {
            // Promote arrivals up to now.
            while self
                .pending
                .front()
                .is_some_and(|j| j.arrival <= self.mac_now)
            {
                let j = self.pending.pop_front().expect("checked non-empty");
                self.ready.push_back(j);
            }
            // Dispatch if the cluster is free.
            if self.running.is_none() {
                if let Some(j) = self.ready.pop_front() {
                    self.start_job(j.program);
                    continue;
                }
            }
            // Next event: job end, next arrival, or the target.
            let run_end = self
                .running
                .as_ref()
                .map(|r| r.start + r.program.total_cycles());
            let next_arrival = self.pending.front().map(|j| j.arrival);
            let step_to = [run_end, next_arrival, Some(t)]
                .into_iter()
                .flatten()
                .filter(|&e| e > self.mac_now)
                .min()
                .unwrap_or(t)
                .min(t.max(self.mac_now));
            let dt = step_to - self.mac_now;
            if dt > 0 {
                self.charge_drift(dt);
            }
            self.mac_now = step_to;
            if run_end == Some(self.mac_now) {
                self.running = None;
                self.completed += 1;
            }
        }
        // Final promotion/dispatch exactly at `t`.
        while self
            .pending
            .front()
            .is_some_and(|j| j.arrival <= self.mac_now)
        {
            let j = self.pending.pop_front().expect("checked non-empty");
            self.ready.push_back(j);
        }
        if self.running.is_none() {
            if let Some(j) = self.ready.pop_front() {
                self.start_job(j.program);
            }
        }
    }

    fn start_job(&mut self, program: ProgramSpec) {
        let asid = self.next_asid;
        // ASID 0 is the kernel; wrap well below the 16-bit limit.
        self.next_asid = if self.next_asid >= 4095 {
            1
        } else {
            self.next_asid + 1
        };
        // First-touch fault burst: the job's working set pages in.
        let ws = program.working_set(asid);
        self.cluster.vm_mut().install_set(0, ws, FaultMode::User);
        self.running = Some(RunningJob {
            program,
            asid,
            start: self.mac_now,
        });
    }

    /// Steady-state paging drift while a job runs (locality churn between
    /// the job and interactive work), charged round-robin across CEs.
    fn charge_drift(&mut self, dt: Cycle) {
        let Some(r) = &self.running else { return };
        let rate = r.program.mean_drift_per_mcycle();
        self.drift_carry += rate * dt as f64 / 1e6;
        let whole = self.drift_carry as u64;
        if whole > 0 {
            self.drift_carry -= whole as f64;
            let n = self.cluster.config().n_ces;
            // System-mode share: roughly a fifth of drift faults occur in
            // kernel paths (buffer cache, page tables).
            let sys = whole / 5;
            let user = whole - sys;
            let ce = self.drift_rr % n;
            self.drift_rr = self.drift_rr.wrapping_add(1);
            self.cluster.vm_mut().charge_faults(ce, user, sys);
        }
    }

    /// Mount the machine state for the current macro instant.
    fn mount(&mut self) {
        if self.mac_now > self.cluster.now() {
            self.cluster.advance_clock(self.mac_now);
        }
        let Some(r) = &self.running else {
            self.cluster.mount_idle();
            return;
        };
        let pos = r.program.locate(self.mac_now - r.start);
        let phase = r.program.phase_at(pos).clone();
        let asid = r.asid;
        match phase {
            PhaseSpec::Serial { kernel, .. } => {
                self.cluster
                    .mount_serial(kernel.instantiate(asid), asid, None);
            }
            PhaseSpec::Loop { kernel } => {
                let per_iter_wall = (kernel.est_cycles_per_iter() / MACRO_P).max(1);
                // Align progress to a dispatch-round boundary (multiple of
                // the cluster width): the loop ran from iteration 0 on the
                // real machine, so the leftover structure at its end is
                // `iters mod n_ces`; resuming off-boundary would fabricate
                // a different tail. The macro timeline itself stays in
                // `MACRO_P` units (the duration model's fixed width); only
                // the round boundary tracks the mounted cluster.
                let width = self.cluster.config().n_ces as u64;
                let rounds = pos.offset / per_iter_wall / width;
                let progress = (rounds * width).min(kernel.iters.saturating_sub(1));
                let after = crate::kernels::glue_serial().instantiate(asid);
                self.cluster.mount_loop(
                    kernel.instantiate(asid),
                    progress,
                    kernel.iters,
                    after,
                    asid,
                );
            }
        }
    }

    /// Position the machine a little before the next concurrent loop's end
    /// so a transition-triggered capture fires quickly: the mounted loop
    /// has about `tail_iters` iterations left. Returns the mount time, or
    /// `None` if no loop end exists before `deadline`.
    pub fn seek_transition(&mut self, tail_iters: u64, deadline: Cycle) -> Option<Cycle> {
        loop {
            if self.mac_now >= deadline {
                return None;
            }
            let Some(r) = &self.running else {
                // Idle: jump to the next arrival (or give up).
                let next = self.pending.front().map(|j| j.arrival)?;
                if next >= deadline {
                    return None;
                }
                self.advance_to(next + 1);
                continue;
            };
            let offset = self.mac_now - r.start;
            match r.program.next_loop_end_after(offset) {
                Some(end_off) => {
                    let end_abs = r.start + end_off;
                    // Identify the loop phase ending there to size the tail.
                    let pos = r.program.locate(end_off - 1);
                    let PhaseSpec::Loop { kernel } = r.program.phase_at(pos) else {
                        // Cost model mismatch; skip past this end.
                        self.advance_to(end_abs + 1);
                        continue;
                    };
                    let per_iter_wall = (kernel.est_cycles_per_iter() / MACRO_P).max(1);
                    let tail = tail_iters * per_iter_wall;
                    let mount_at = end_abs.saturating_sub(tail);
                    if mount_at <= self.mac_now {
                        // Too close to catch; try the next loop end.
                        self.advance_to(end_abs + 1);
                        continue;
                    }
                    if mount_at >= deadline {
                        return None;
                    }
                    self.advance_to(mount_at);
                    // Confirm a loop actually mounted (the job may have
                    // ended in between under the event model).
                    if matches!(self.cluster.load_kind(), fx8_sim::cluster::LoadKind::Loop) {
                        return Some(mount_at);
                    }
                }
                None => {
                    // No more loops in this job: run it out.
                    let end = r.start + r.program.total_cycles();
                    self.advance_to(end.min(deadline) + 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::WorkloadMix;
    use crate::program;
    use fx8_sim::cluster::LoadKind;
    use fx8_sim::MachineConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cluster() -> Cluster {
        let mut c = Cluster::new(MachineConfig::fx8(), 5);
        c.set_ip_intensity(0.0);
        c
    }

    fn one_job_driver(p: ProgramSpec, at: Cycle) -> SessionDriver {
        SessionDriver::new(cluster(), vec![(at, p)])
    }

    #[test]
    fn idle_before_first_arrival() {
        let mut d = one_job_driver(program::development(1.0), 1_000_000);
        d.advance_to(500);
        assert_eq!(d.cluster().load_kind(), LoadKind::Idle);
        assert!(d.running_job().is_none());
    }

    #[test]
    fn serial_job_mounts_serially() {
        let mut d = one_job_driver(program::development(1.0), 100);
        d.advance_to(10_000);
        assert_eq!(d.cluster().load_kind(), LoadKind::Serial);
        assert_eq!(d.running_job(), Some("development"));
    }

    #[test]
    fn loop_phase_mounts_with_progress() {
        let p = program::matrix_benchmark(128, 50);
        let k = crate::kernels::matmul(128);
        let mut d = one_job_driver(p, 0);
        // Land in the middle of the first loop.
        let mid = k.est_cycles(8) / 2;
        d.advance_to(mid);
        assert_eq!(d.cluster().load_kind(), LoadKind::Loop);
        let remaining = d.cluster().loop_remaining();
        assert!(
            remaining > 0 && remaining < k.iters,
            "remaining {remaining} of {}",
            k.iters
        );
    }

    #[test]
    fn job_completes_and_machine_goes_idle() {
        let p = program::development(0.01); // ~0.6 s of machine time
        let total = p.total_cycles();
        let mut d = one_job_driver(p, 0);
        d.advance_to(total + 10);
        assert_eq!(d.cluster().load_kind(), LoadKind::Idle);
        assert_eq!(d.completed_jobs(), 1);
    }

    #[test]
    fn fcfs_queueing_runs_jobs_in_arrival_order() {
        let a = program::development(0.01);
        let dur_a = a.total_cycles();
        let b = program::matrix_benchmark(128, 10);
        let mut d = SessionDriver::new(cluster(), vec![(0, a), (10, b)]);
        // While A runs, B waits.
        d.advance_to(dur_a / 2);
        assert_eq!(d.running_job(), Some("development"));
        // After A ends, B runs.
        d.advance_to(dur_a + 1_000);
        assert!(d.running_job().unwrap().starts_with("matrix-benchmark"));
    }

    #[test]
    fn working_set_install_charges_faults() {
        let p = program::matrix_benchmark(256, 5);
        let mut d = one_job_driver(p, 0);
        d.advance_to(10);
        assert!(
            d.cluster().vm().total_faults().user > 0,
            "job start must page in"
        );
    }

    #[test]
    fn drift_faults_accumulate_over_macro_time() {
        let p = program::matrix_benchmark(256, 2_000);
        let mut d = one_job_driver(p, 0);
        d.advance_to(100);
        let before = d.cluster().vm().total_faults().total();
        d.advance_to(200_000_000); // ~34 ms of machine time? (200 Mcycle)
        let after = d.cluster().vm().total_faults().total();
        assert!(after > before, "drift must add faults: {before} -> {after}");
    }

    #[test]
    fn seek_transition_mounts_a_nearly_drained_loop() {
        let p = program::structural_mechanics(258, 5_000);
        let mut d = one_job_driver(p, 0);
        let at = d
            .seek_transition(16, u64::MAX / 2)
            .expect("must find a loop end");
        assert_eq!(d.cluster().load_kind(), LoadKind::Loop);
        let remaining = d.cluster().loop_remaining();
        assert!(
            (1..=40).contains(&remaining),
            "expected a short tail, got {remaining} (mounted at {at})"
        );
    }

    #[test]
    fn seek_transition_respects_deadline() {
        let mut d = one_job_driver(program::development(5.0), 0);
        assert_eq!(d.seek_transition(16, 1_000_000), None);
    }

    #[test]
    fn seek_transition_skips_serial_jobs_to_find_loops() {
        let serial = program::development(0.02);
        let dur = serial.total_cycles();
        let loopy = program::matrix_benchmark(130, 2_000);
        let mut d = SessionDriver::new(cluster(), vec![(0, serial), (dur / 2, loopy)]);
        let at = d
            .seek_transition(16, u64::MAX / 2)
            .expect("loop job follows serial job");
        assert!(
            at > dur,
            "transition found only after the serial job: {at} vs {dur}"
        );
        assert_eq!(d.cluster().load_kind(), LoadKind::Loop);
    }

    #[test]
    fn session_from_mix_runs_and_samples() {
        let mix = WorkloadMix::csrd_production();
        let mut rng = SmallRng::seed_from_u64(7);
        let horizon = (20.0 * 60.0 * 1e9 / 170.0) as u64; // 20 minutes
        let times = crate::arrival::arrival_times(&mix.profile, horizon, &mut rng);
        let arrivals: Vec<_> = times
            .into_iter()
            .map(|t| (t, mix.sample_program(&mut rng)))
            .collect();
        let mut d = SessionDriver::new(cluster(), arrivals);
        // Walk through the session in 5-minute hops, mounting each time.
        let five_min = (5.0 * 60.0 * 1e9 / 170.0) as u64;
        let mut kinds = Vec::new();
        for s in 1..=4 {
            d.advance_to(s * five_min);
            kinds.push(d.cluster().load_kind());
        }
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn advance_is_monotonic_even_after_micro_steps() {
        let p = program::matrix_benchmark(128, 100);
        let mut d = one_job_driver(p, 0);
        d.advance_to(1_000);
        // Micro-step the machine past the macro clock.
        d.cluster_mut().run(5_000);
        // Advancing to an earlier target must not panic (clamps forward).
        d.advance_to(2_000);
        assert!(d.now() >= 6_000);
    }
}
