//! # fx8-workload — a CSRD-style production workload
//!
//! The measured FX/8 was "used primarily for development of numerical
//! applications software. Programs developed on the machine range from
//! high level software (FORTRAN), such as structural mechanics and circuit
//! simulation, to assembly-level kernels for linear system solving" (§ 1).
//! That workload no longer exists; this crate rebuilds its *statistical
//! shape* as a stochastic job stream over a library of kernels whose
//! memory behaviour matches the codes the thesis names (BLAS-style panels,
//! stencil sweeps, recurrences, scalar development work).
//!
//! * [`kernels`] — loop and serial kernels compiled to the simulator's
//!   operation streams, with real addresses (so cache and paging behaviour
//!   is emergent, not scripted);
//! * [`program`] — programs as repeated phase sequences with macro-level
//!   duration and page-fault models;
//! * [`arrival`] — session-level job arrival processes with busy/quiet
//!   load phases (weekday burstiness);
//! * [`scheduler`] — the Concentrix-like session driver: advances macro
//!   time, mounts the current machine state for captured windows;
//! * [`mix`] — workload presets, including the calibrated
//!   [`mix::WorkloadMix::csrd_production`] used for the reproduction.

pub mod arrival;
pub mod kernels;
pub mod mix;
pub mod program;
pub mod scheduler;

pub use mix::WorkloadMix;
pub use scheduler::SessionDriver;
