//! Session-level job arrivals.
//!
//! The measurement sessions ran "on seven different midweek days, when the
//! machine is used most heavily" (§ 3.5). Interactive multi-user load is
//! bursty: busy spells (several users active) alternate with quiet spells.
//! Arrivals follow a two-state modulated Poisson process; the burstiness is
//! what makes a large fraction of five-minute samples see no concurrency
//! at all (Figure 4's 44 % mass at `C_w = 0`) even though the overall
//! workload is 35 % concurrent.

use fx8_sim::Cycle;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A two-state (busy/quiet) modulated Poisson arrival profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Mean busy-spell length in cycles.
    pub busy_mean: u64,
    /// Mean quiet-spell length in cycles.
    pub quiet_mean: u64,
    /// Arrival rate during busy spells, jobs per cycle.
    pub busy_rate: f64,
    /// Arrival rate during quiet spells, jobs per cycle.
    pub quiet_rate: f64,
}

impl LoadProfile {
    /// A midweek-day profile expressed in minutes and jobs/hour, converted
    /// with the machine's 170 ns cycle.
    pub fn from_minutes(
        busy_min: f64,
        quiet_min: f64,
        busy_jobs_per_hour: f64,
        quiet_jobs_per_hour: f64,
    ) -> Self {
        let cyc_per_min = 60.0 * 1e9 / 170.0;
        LoadProfile {
            busy_mean: (busy_min * cyc_per_min) as u64,
            quiet_mean: (quiet_min * cyc_per_min) as u64,
            busy_rate: busy_jobs_per_hour / (60.0 * cyc_per_min),
            quiet_rate: quiet_jobs_per_hour / (60.0 * cyc_per_min),
        }
    }

    /// Long-run average arrival rate, jobs per cycle.
    pub fn mean_rate(&self) -> f64 {
        let b = self.busy_mean as f64;
        let q = self.quiet_mean as f64;
        (self.busy_rate * b + self.quiet_rate * q) / (b + q)
    }
}

/// Exponential variate with the given mean (inverse-CDF sampling).
fn exp_sample<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Generate arrival instants over `[0, horizon)`.
pub fn arrival_times<R: Rng>(profile: &LoadProfile, horizon: Cycle, rng: &mut R) -> Vec<Cycle> {
    let mut out = Vec::new();
    let mut t = 0u64;
    let mut busy = true; // sessions were started during working hours
    while t < horizon {
        let (spell_mean, rate) = if busy {
            (profile.busy_mean as f64, profile.busy_rate)
        } else {
            (profile.quiet_mean as f64, profile.quiet_rate)
        };
        let spell_end = (t as f64 + exp_sample(rng, spell_mean)).min(horizon as f64);
        if rate > 0.0 {
            let mut at = t as f64;
            loop {
                at += exp_sample(rng, 1.0 / rate);
                if at >= spell_end {
                    break;
                }
                out.push(at as Cycle);
            }
        }
        t = spell_end as Cycle;
        if spell_end >= horizon as f64 {
            break;
        }
        busy = !busy;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn profile() -> LoadProfile {
        LoadProfile::from_minutes(45.0, 35.0, 12.0, 2.0)
    }

    #[test]
    fn minutes_conversion_round_trips() {
        let p = profile();
        let cyc_per_min = (60.0 * 1e9 / 170.0) as u64;
        assert!((p.busy_mean as i64 - (45 * cyc_per_min) as i64).abs() < cyc_per_min as i64);
        // 12 jobs/hour during busy spells.
        let per_hour = p.busy_rate * 60.0 * cyc_per_min as f64;
        assert!((per_hour - 12.0).abs() < 0.5, "{per_hour}");
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let mut rng = SmallRng::seed_from_u64(1);
        let horizon = profile().busy_mean * 10;
        let times = arrival_times(&profile(), horizon, &mut rng);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t < horizon));
        assert!(!times.is_empty());
    }

    #[test]
    fn long_run_rate_approaches_mean_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let p = profile();
        // 200 hours of arrivals.
        let horizon = (200.0 * 60.0 * 60.0 * 1e9 / 170.0) as u64;
        let times = arrival_times(&p, horizon, &mut rng);
        let measured = times.len() as f64 / horizon as f64;
        let expected = p.mean_rate();
        assert!(
            (measured - expected).abs() / expected < 0.15,
            "measured {measured:e}, expected {expected:e}"
        );
    }

    #[test]
    fn burstiness_shows_up_as_interval_variance() {
        let mut rng = SmallRng::seed_from_u64(3);
        let p = profile();
        let horizon = (50.0 * 60.0 * 60.0 * 1e9 / 170.0) as u64;
        let times = arrival_times(&p, horizon, &mut rng);
        // Count arrivals per 5-minute window; a modulated process has
        // super-Poisson variance (variance > mean).
        let win = (5.0 * 60.0 * 1e9 / 170.0) as u64;
        let n_win = (horizon / win) as usize;
        let mut counts = vec![0f64; n_win];
        for &t in &times {
            counts[(t / win) as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / n_win as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n_win as f64;
        assert!(
            var > mean,
            "var {var} should exceed mean {mean} for a bursty process"
        );
    }

    #[test]
    fn zero_rate_profile_generates_nothing() {
        let p = LoadProfile {
            busy_mean: 1000,
            quiet_mean: 1000,
            busy_rate: 0.0,
            quiet_rate: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(arrival_times(&p, 1_000_000, &mut rng).is_empty());
    }

    #[test]
    fn determinism_per_seed() {
        let a = arrival_times(&profile(), 10_000_000_000, &mut SmallRng::seed_from_u64(9));
        let b = arrival_times(&profile(), 10_000_000_000, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
