//! Workload mixes.
//!
//! A [`WorkloadMix`] is the one calibration surface of the reproduction:
//! job-class weights, job-size distributions, the arrival profile and the
//! interactive (IP) intensity. [`WorkloadMix::csrd_production`] is tuned so
//! the *first-order marginals* land near the thesis's (C_w ≈ 0.35,
//! P_c ≈ 7.6, tri-modal activity); every joint relationship measured on
//! top of it is emergent from the machine model. See DESIGN.md § 5.

use crate::arrival::LoadProfile;
use crate::program::{self, ProgramSpec, COMMON_DIMS};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The job classes of the CSRD environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobClass {
    /// Timestepped stencil codes (structural mechanics).
    StructuralMechanics,
    /// Device evaluation + dependent solves (circuit simulation).
    CircuitSimulation,
    /// LU panel factorization (linear system solving kernels).
    LinearSolver,
    /// BLAS benchmarking runs.
    MatrixBenchmark,
    /// Streaming vectorization studies.
    VectorStudy,
    /// Interactive parallel development: light loops at half duty cycle.
    InteractiveParallel,
    /// Exclusively serial development work (edit/compile).
    Development,
    /// Serial-dominated post-processing.
    DataAnalysis,
}

impl JobClass {
    /// All classes.
    pub const ALL: [JobClass; 8] = [
        JobClass::StructuralMechanics,
        JobClass::CircuitSimulation,
        JobClass::LinearSolver,
        JobClass::MatrixBenchmark,
        JobClass::VectorStudy,
        JobClass::InteractiveParallel,
        JobClass::Development,
        JobClass::DataAnalysis,
    ];
}

/// A weighted job class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixEntry {
    /// Relative weight (need not sum to 1).
    pub weight: f64,
    /// The class drawn.
    pub class: JobClass,
}

/// A complete workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Weighted job classes.
    pub entries: Vec<MixEntry>,
    /// Arrival burstiness profile.
    pub profile: LoadProfile,
    /// IP background reference probability per cycle.
    pub ip_intensity: f64,
    /// Job duration range in minutes (uniform log-ish draw).
    pub job_minutes: (f64, f64),
}

impl WorkloadMix {
    /// The calibrated production mix (see DESIGN.md § 5). Weights reflect a
    /// numerical-software development machine: a large serial/development
    /// share, stencil and solver codes as the concurrent backbone, and a
    /// small streaming tail.
    pub fn csrd_production() -> Self {
        WorkloadMix {
            entries: vec![
                MixEntry {
                    weight: 0.22,
                    class: JobClass::StructuralMechanics,
                },
                MixEntry {
                    weight: 0.12,
                    class: JobClass::CircuitSimulation,
                },
                MixEntry {
                    weight: 0.12,
                    class: JobClass::LinearSolver,
                },
                MixEntry {
                    weight: 0.17,
                    class: JobClass::MatrixBenchmark,
                },
                MixEntry {
                    weight: 0.07,
                    class: JobClass::VectorStudy,
                },
                MixEntry {
                    weight: 0.13,
                    class: JobClass::InteractiveParallel,
                },
                MixEntry {
                    weight: 0.08,
                    class: JobClass::Development,
                },
                MixEntry {
                    weight: 0.09,
                    class: JobClass::DataAnalysis,
                },
            ],
            profile: LoadProfile::from_minutes(45.0, 35.0, 7.5, 1.2),
            ip_intensity: 0.015,
            job_minutes: (1.5, 9.0),
        }
    }

    /// A loop-only stress mix (ablations, trigger experiments).
    pub fn all_concurrent() -> Self {
        WorkloadMix {
            entries: vec![
                MixEntry {
                    weight: 0.4,
                    class: JobClass::StructuralMechanics,
                },
                MixEntry {
                    weight: 0.3,
                    class: JobClass::MatrixBenchmark,
                },
                MixEntry {
                    weight: 0.3,
                    class: JobClass::LinearSolver,
                },
            ],
            profile: LoadProfile::from_minutes(60.0, 5.0, 40.0, 10.0),
            ip_intensity: 0.02,
            job_minutes: (2.0, 6.0),
        }
    }

    /// A serial-only mix (negative control).
    pub fn all_serial() -> Self {
        WorkloadMix {
            entries: vec![MixEntry {
                weight: 1.0,
                class: JobClass::Development,
            }],
            profile: LoadProfile::from_minutes(45.0, 35.0, 8.0, 2.0),
            ip_intensity: 0.01,
            job_minutes: (2.0, 10.0),
        }
    }

    /// Draw a job class.
    pub fn sample_class<R: Rng>(&self, rng: &mut R) -> JobClass {
        let total: f64 = self.entries.iter().map(|e| e.weight).sum();
        let mut x = rng.gen_range(0.0..total);
        for e in &self.entries {
            if x < e.weight {
                return e.class;
            }
            x -= e.weight;
        }
        self.entries.last().expect("mix has entries").class
    }

    /// Draw a complete job program: class, problem dimension, and repeat
    /// counts sized so the job lasts roughly `job_minutes`.
    pub fn sample_program<R: Rng>(&self, rng: &mut R) -> ProgramSpec {
        let class = self.sample_class(rng);
        self.instantiate_class(class, rng)
    }

    /// Build a program of the given class with drawn parameters.
    /// Production runs (solvers, benchmarks, simulation campaigns) last
    /// several times longer than interactive work — which is why sustained
    /// high-`C_w` intervals are dominated by the data-intensive classes.
    pub fn instantiate_class<R: Rng>(&self, class: JobClass, rng: &mut R) -> ProgramSpec {
        let (lo, hi) = self.job_minutes;
        let scale = match class {
            JobClass::StructuralMechanics
            | JobClass::CircuitSimulation
            | JobClass::LinearSolver
            | JobClass::MatrixBenchmark
            | JobClass::VectorStudy => 1.8,
            JobClass::InteractiveParallel => 0.35,
            JobClass::Development => 1.0,
            JobClass::DataAnalysis => 0.7,
        };
        let minutes = rng.gen_range(lo..hi) * scale;
        let target_cycles = (minutes * 60.0 * 1e9 / 170.0) as u64;
        let dim = COMMON_DIMS[rng.gen_range(0..COMMON_DIMS.len())];
        let reps_for = |once: u64| (target_cycles / once.max(1)).clamp(1, 2_000_000);
        match class {
            JobClass::StructuralMechanics => {
                let probe = program::structural_mechanics(dim, 1);
                let rep = probe.groups[1].rep_cycles();
                program::structural_mechanics(dim, reps_for(rep))
            }
            JobClass::CircuitSimulation => {
                let probe = program::circuit_simulation(dim, 1);
                let rep = probe.groups[1].rep_cycles();
                program::circuit_simulation(dim, reps_for(rep))
            }
            JobClass::LinearSolver => {
                let probe = program::linear_solver(dim, 1);
                let rep = probe.groups[0].rep_cycles();
                program::linear_solver(dim, reps_for(rep))
            }
            JobClass::MatrixBenchmark => {
                let probe = program::matrix_benchmark(dim, 1);
                let rep = probe.groups[0].rep_cycles();
                program::matrix_benchmark(dim, reps_for(rep))
            }
            JobClass::VectorStudy => {
                let probe = program::vector_study(dim, 1);
                let rep = probe.groups[0].rep_cycles();
                program::vector_study(dim, reps_for(rep))
            }
            JobClass::InteractiveParallel => {
                let probe = program::interactive_parallel(dim, 1);
                let rep = probe.groups[0].rep_cycles();
                program::interactive_parallel(dim, reps_for(rep))
            }
            JobClass::Development => program::development(minutes),
            JobClass::DataAnalysis => {
                let probe = program::data_analysis(1);
                let rep = probe.groups[0].rep_cycles();
                program::data_analysis(reps_for(rep))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn class_sampling_follows_weights() {
        let mix = WorkloadMix::csrd_production();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut dev = 0;
        let n = 10_000;
        for _ in 0..n {
            if mix.sample_class(&mut rng) == JobClass::Development {
                dev += 1;
            }
        }
        let frac = dev as f64 / n as f64;
        assert!((frac - 0.08).abs() < 0.02, "development fraction {frac}");
    }

    #[test]
    fn sampled_programs_hit_target_durations() {
        let mix = WorkloadMix::csrd_production();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..40 {
            let p = mix.sample_program(&mut rng);
            let minutes = p.total_cycles() as f64 * 170.0 / 1e9 / 60.0;
            assert!(
                (0.5..20.0).contains(&minutes),
                "{} lasts {minutes:.1} min",
                p.name
            );
        }
    }

    #[test]
    fn production_mix_is_mostly_but_not_fully_concurrent() {
        let mix = WorkloadMix::csrd_production();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut weighted_loop = 0.0;
        let mut total = 0.0;
        for _ in 0..200 {
            let p = mix.sample_program(&mut rng);
            weighted_loop += p.loop_fraction() * p.total_cycles() as f64;
            total += p.total_cycles() as f64;
        }
        let f = weighted_loop / total;
        // Busy time should be mostly concurrent (idle brings overall C_w
        // down to ~0.35) but with a solid serial share.
        assert!((0.4..0.95).contains(&f), "busy loop fraction {f}");
    }

    #[test]
    fn all_serial_mix_has_no_loops() {
        let mix = WorkloadMix::all_serial();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(mix.sample_program(&mut rng).loop_fraction(), 0.0);
        }
    }

    #[test]
    fn every_class_instantiates() {
        let mix = WorkloadMix::csrd_production();
        let mut rng = SmallRng::seed_from_u64(5);
        for class in JobClass::ALL {
            let p = mix.instantiate_class(class, &mut rng);
            assert!(p.total_cycles() > 0, "{}", p.name);
            assert!(!p.working_set(1).is_empty());
        }
    }
}
