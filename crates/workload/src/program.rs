//! Programs: repeated phase sequences with macro-level timing.
//!
//! A production numerical program alternates serial sections with
//! concurrent loop nests, usually inside an outer timestep/iteration loop
//! that repeats the pattern thousands of times. A [`ProgramSpec`] captures
//! exactly that: groups of phases with repeat counts, plus a macro cost
//! model (`locate`) that maps an elapsed-cycle offset to the phase and
//! progress executing at that instant — O(#groups), no per-iteration work —
//! so a session can fast-forward hours and still mount the precise machine
//! state for a captured window.

use crate::kernels::{LoopKernel, SerialKernel};
use fx8_sim::addr::PageId;
use fx8_sim::Asid;
use serde::{Deserialize, Serialize};

/// Processors assumed by the macro duration model (the full cluster).
pub const MACRO_P: u64 = 8;

/// One phase of a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseSpec {
    /// A serial section running `cycles` bus cycles.
    Serial {
        /// The serial kernel executing.
        kernel: SerialKernel,
        /// Macro duration.
        cycles: u64,
    },
    /// A concurrent DO-loop (duration derives from the kernel cost model).
    Loop {
        /// The loop kernel executing.
        kernel: LoopKernel,
    },
}

impl PhaseSpec {
    /// Macro duration of this phase in cycles.
    pub fn cycles(&self) -> u64 {
        match self {
            PhaseSpec::Serial { cycles, .. } => (*cycles).max(1),
            PhaseSpec::Loop { kernel } => kernel.est_cycles(MACRO_P).max(1),
        }
    }

    /// Whether the phase is a concurrent loop.
    pub fn is_loop(&self) -> bool {
        matches!(self, PhaseSpec::Loop { .. })
    }

    /// Steady-state page-fault drift, faults per million cycles, for the
    /// kernel class: loops stream data (higher drift), serial code mostly
    /// revisits its hot set.
    pub fn fault_drift_per_mcycle(&self) -> f64 {
        match self {
            PhaseSpec::Serial { .. } => 0.4,
            PhaseSpec::Loop { .. } => 3.2,
        }
    }
}

/// A run of phases repeated `repeat` times (a timestep loop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseGroup {
    /// Number of repetitions.
    pub repeat: u64,
    /// The phases of one repetition, in order.
    pub phases: Vec<PhaseSpec>,
}

impl PhaseGroup {
    /// Cycles of one repetition.
    pub fn rep_cycles(&self) -> u64 {
        self.phases
            .iter()
            .map(PhaseSpec::cycles)
            .sum::<u64>()
            .max(1)
    }

    /// Total cycles of the group.
    pub fn cycles(&self) -> u64 {
        self.repeat * self.rep_cycles()
    }
}

/// Where a program is at a given elapsed offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// Group index.
    pub group: usize,
    /// Repetition index within the group.
    pub rep: u64,
    /// Phase index within the repetition.
    pub phase: usize,
    /// Cycles into the phase.
    pub offset: u64,
}

/// A complete program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Program name (job class).
    pub name: String,
    /// The phase groups, in order.
    pub groups: Vec<PhaseGroup>,
}

impl ProgramSpec {
    /// Total macro duration.
    pub fn total_cycles(&self) -> u64 {
        self.groups.iter().map(PhaseGroup::cycles).sum()
    }

    /// Fraction of the program's time spent in concurrent loops.
    pub fn loop_fraction(&self) -> f64 {
        let total = self.total_cycles().max(1) as f64;
        let loops: u64 = self
            .groups
            .iter()
            .map(|g| {
                g.repeat
                    * g.phases
                        .iter()
                        .filter(|p| p.is_loop())
                        .map(PhaseSpec::cycles)
                        .sum::<u64>()
            })
            .sum();
        loops as f64 / total
    }

    /// Mean page-fault drift over the whole program, faults per Mcycle.
    pub fn mean_drift_per_mcycle(&self) -> f64 {
        let total = self.total_cycles().max(1) as f64;
        let weighted: f64 = self
            .groups
            .iter()
            .map(|g| {
                g.repeat as f64
                    * g.phases
                        .iter()
                        .map(|p| p.cycles() as f64 * p.fault_drift_per_mcycle())
                        .sum::<f64>()
            })
            .sum();
        weighted / total
    }

    /// The phase at `pos`.
    pub fn phase_at(&self, pos: Position) -> &PhaseSpec {
        &self.groups[pos.group].phases[pos.phase]
    }

    /// Locate the position executing at elapsed `offset` cycles.
    /// Clamps to the final instant for offsets past the end.
    pub fn locate(&self, mut offset: u64) -> Position {
        for (gi, g) in self.groups.iter().enumerate() {
            let g_cycles = g.cycles();
            if offset < g_cycles {
                let rep_cycles = g.rep_cycles();
                let rep = offset / rep_cycles;
                let mut rem = offset % rep_cycles;
                for (pi, p) in g.phases.iter().enumerate() {
                    let pc = p.cycles();
                    if rem < pc {
                        return Position {
                            group: gi,
                            rep,
                            phase: pi,
                            offset: rem,
                        };
                    }
                    rem -= pc;
                }
                // rep_cycles accounting guarantees we matched a phase.
                unreachable!("phase walk exceeded repetition");
            }
            offset -= g_cycles;
        }
        // Past the end: the last instant of the last phase.
        let gi = self.groups.len() - 1;
        let g = &self.groups[gi];
        let pi = g.phases.len() - 1;
        Position {
            group: gi,
            rep: g.repeat - 1,
            phase: pi,
            offset: g.phases[pi].cycles() - 1,
        }
    }

    /// Elapsed offset at which the phase holding `offset`'s *next*
    /// concurrent loop ends (the next loop-to-serial transition), if any.
    pub fn next_loop_end_after(&self, offset: u64) -> Option<u64> {
        if offset >= self.total_cycles() {
            return None;
        }
        let mut base = 0u64;
        for g in &self.groups {
            let g_end = base + g.cycles();
            if g_end <= offset || !g.phases.iter().any(PhaseSpec::is_loop) {
                base = g_end;
                continue;
            }
            // Scan from the repetition containing (or following) `offset`;
            // a group with a loop yields a match within two repetitions.
            let rep_cycles = g.rep_cycles();
            let start_rep = offset.saturating_sub(base) / rep_cycles;
            for rep in start_rep..g.repeat {
                let mut p_base = base + rep * rep_cycles;
                for p in &g.phases {
                    let end = p_base + p.cycles();
                    if p.is_loop() && end > offset {
                        return Some(end);
                    }
                    p_base = end;
                }
            }
            base = g_end;
        }
        None
    }

    /// Union of the working-set pages of every phase (installed at job
    /// start, the macro equivalent of first-touch fault bursts).
    pub fn working_set(&self, asid: Asid) -> Vec<PageId> {
        let mut pages = Vec::new();
        for g in &self.groups {
            for p in &g.phases {
                match p {
                    PhaseSpec::Serial { kernel, .. } => pages.extend(kernel.data_pages(asid)),
                    PhaseSpec::Loop { kernel } => pages.extend(kernel.data_pages(asid)),
                }
            }
        }
        pages.sort_unstable();
        pages.dedup();
        pages
    }
}

// ---------------------------------------------------------------------------
// Named programs — the job classes of the CSRD environment (§ 1).
// ---------------------------------------------------------------------------

use crate::kernels;

/// Iteration counts favoured by real array dimensioning habits. Boundary
/// padding (`n + 2` ghost rows) makes counts ≡ 2 (mod 8) common — the
/// thesis's own first hypothesis for the dominance of two leftover
/// iterations in concurrency transitions (§ 4.3).
pub const COMMON_DIMS: &[u64] = &[
    130, 256, 258, 258, 512, 514, 514, 1024, 1026, 1026, 2050, 258, 1026,
];

/// Structural mechanics: timestepped stencil sweeps (the codes of CSRD
/// report 602).
pub fn structural_mechanics(n: u64, timesteps: u64) -> ProgramSpec {
    ProgramSpec {
        name: format!("structural-mechanics-{n}"),
        groups: vec![
            PhaseGroup {
                repeat: 1,
                phases: vec![PhaseSpec::Serial {
                    kernel: kernels::data_prep(),
                    cycles: 3_000_000,
                }],
            },
            PhaseGroup {
                repeat: timesteps,
                phases: vec![
                    PhaseSpec::Loop {
                        kernel: kernels::boundary_loop(3 + n % 4),
                    },
                    PhaseSpec::Loop {
                        kernel: kernels::sor_sweep(n),
                    },
                    PhaseSpec::Loop {
                        kernel: kernels::fine_grain_loop(n),
                    },
                    PhaseSpec::Serial {
                        kernel: kernels::glue_serial(),
                        cycles: 2_500,
                    },
                ],
            },
        ],
    }
}

/// Circuit simulation: an independent device-evaluation loop followed by a
/// dependent solve recurrence each timestep.
pub fn circuit_simulation(n: u64, timesteps: u64) -> ProgramSpec {
    ProgramSpec {
        name: format!("circuit-simulation-{n}"),
        groups: vec![
            PhaseGroup {
                repeat: 1,
                phases: vec![PhaseSpec::Serial {
                    kernel: kernels::data_prep(),
                    cycles: 2_000_000,
                }],
            },
            PhaseGroup {
                repeat: timesteps,
                phases: vec![
                    PhaseSpec::Loop {
                        kernel: kernels::sor_sweep(n),
                    },
                    PhaseSpec::Loop {
                        kernel: kernels::boundary_loop(2 + n % 5),
                    },
                    PhaseSpec::Loop {
                        kernel: kernels::recurrence(n / 2),
                    },
                    PhaseSpec::Serial {
                        kernel: kernels::glue_serial(),
                        cycles: 3_000,
                    },
                ],
            },
        ],
    }
}

/// Linear system solving: LU panel factorization sweeps.
pub fn linear_solver(n: u64, panels: u64) -> ProgramSpec {
    ProgramSpec {
        name: format!("linear-solver-{n}"),
        groups: vec![PhaseGroup {
            repeat: panels,
            phases: vec![
                PhaseSpec::Loop {
                    kernel: kernels::lu_panel(n),
                },
                PhaseSpec::Serial {
                    kernel: kernels::glue_serial(),
                    cycles: 1_500,
                },
            ],
        }],
    }
}

/// Matrix kernel benchmarking (BLAS development runs).
pub fn matrix_benchmark(n: u64, reps: u64) -> ProgramSpec {
    ProgramSpec {
        name: format!("matrix-benchmark-{n}"),
        groups: vec![PhaseGroup {
            repeat: reps,
            phases: vec![
                PhaseSpec::Loop {
                    kernel: kernels::matmul(n),
                },
                PhaseSpec::Serial {
                    kernel: kernels::glue_serial(),
                    cycles: 1_200,
                },
            ],
        }],
    }
}

/// Vectorization studies: streaming triads and reductions — the
/// data-intensive tail of the workload.
pub fn vector_study(blocks: u64, reps: u64) -> ProgramSpec {
    ProgramSpec {
        name: format!("vector-study-{blocks}"),
        groups: vec![PhaseGroup {
            repeat: reps,
            phases: vec![
                PhaseSpec::Loop {
                    kernel: kernels::vector_triad(blocks),
                },
                PhaseSpec::Loop {
                    kernel: kernels::reduction(blocks),
                },
                PhaseSpec::Serial {
                    kernel: kernels::glue_serial(),
                    cycles: 1_500,
                },
            ],
        }],
    }
}

/// Interactive parallel development: run a parallel routine, inspect the
/// output, run again — loops at roughly half duty cycle with think-time
/// serial between. The source of mid-`C_w`, low-miss samples.
pub fn interactive_parallel(n: u64, reps: u64) -> ProgramSpec {
    ProgramSpec {
        name: format!("interactive-parallel-{n}"),
        groups: vec![PhaseGroup {
            repeat: reps,
            phases: vec![
                PhaseSpec::Loop {
                    kernel: kernels::interactive_kernel(n),
                },
                PhaseSpec::Serial {
                    kernel: kernels::scalar_serial(),
                    cycles: 120_000,
                },
            ],
        }],
    }
}

/// Pure development work: editing, compiling — exclusively serial.
pub fn development(minutes: f64) -> ProgramSpec {
    let cycles = (minutes * 60.0 * 1e9 / 170.0) as u64;
    ProgramSpec {
        name: "development".into(),
        groups: vec![PhaseGroup {
            repeat: 1,
            phases: vec![PhaseSpec::Serial {
                kernel: kernels::scalar_serial(),
                cycles,
            }],
        }],
    }
}

/// Post-processing / data analysis: long serial scans with occasional
/// small reductions.
pub fn data_analysis(reps: u64) -> ProgramSpec {
    ProgramSpec {
        name: "data-analysis".into(),
        groups: vec![PhaseGroup {
            repeat: reps,
            phases: vec![
                PhaseSpec::Serial {
                    kernel: kernels::data_prep(),
                    cycles: 600_000,
                },
                PhaseSpec::Loop {
                    kernel: kernels::chunked_region(6),
                },
                PhaseSpec::Serial {
                    kernel: kernels::data_prep(),
                    cycles: 400_000,
                },
                PhaseSpec::Loop {
                    kernel: kernels::chunked_region(4),
                },
                PhaseSpec::Loop {
                    kernel: kernels::reduction(66),
                },
            ],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_add_up() {
        let p = structural_mechanics(258, 100);
        let setup = 3_000_000;
        // One timestep: boundary loop + sweep + fine-grain nest + glue.
        let rep = kernels::boundary_loop(3 + 258 % 4).est_cycles(8)
            + kernels::sor_sweep(258).est_cycles(8)
            + kernels::fine_grain_loop(258).est_cycles(8)
            + 2_500;
        assert_eq!(p.groups[1].rep_cycles(), rep);
        assert_eq!(p.total_cycles(), setup + 100 * rep);
    }

    #[test]
    fn locate_walks_groups_reps_and_phases() {
        let p = structural_mechanics(258, 100);
        // Offset 0: in the setup serial phase.
        let pos0 = p.locate(0);
        assert_eq!(
            (pos0.group, pos0.rep, pos0.phase, pos0.offset),
            (0, 0, 0, 0)
        );
        // Just past setup: first loop of rep 0.
        let pos1 = p.locate(3_000_000);
        assert_eq!((pos1.group, pos1.rep, pos1.phase), (1, 0, 0));
        assert!(p.phase_at(pos1).is_loop());
        // Five cycles into the second phase of the second repetition.
        let rep = p.groups[1].rep_cycles();
        let first_phase = p.groups[1].phases[0].cycles();
        let off = 3_000_000 + rep + first_phase + 5;
        let pos2 = p.locate(off);
        assert_eq!(
            (pos2.group, pos2.rep, pos2.phase, pos2.offset),
            (1, 1, 1, 5)
        );
    }

    #[test]
    fn locate_is_consistent_with_cycles() {
        // Walking every phase boundary lands exactly at offset zero of the
        // next phase.
        let p = circuit_simulation(130, 7);
        let mut boundary = 0u64;
        for g in &p.groups {
            for _ in 0..g.repeat {
                for ph in &g.phases {
                    let pos = p.locate(boundary);
                    assert_eq!(pos.offset, 0, "boundary {boundary}");
                    assert_eq!(p.phase_at(pos).cycles(), ph.cycles());
                    boundary += ph.cycles();
                }
            }
        }
        assert_eq!(boundary, p.total_cycles());
    }

    #[test]
    fn locate_clamps_past_end() {
        let p = development(1.0);
        let pos = p.locate(p.total_cycles() + 999);
        assert_eq!(pos.group, 0);
        assert_eq!(pos.offset, p.phase_at(pos).cycles() - 1);
    }

    #[test]
    fn next_loop_end_finds_upcoming_transitions() {
        let p = matrix_benchmark(128, 10);
        let loop_cycles = kernels::matmul(128).est_cycles(8);
        // From the very start, the first loop ends at loop_cycles.
        assert_eq!(p.next_loop_end_after(0), Some(loop_cycles));
        // From inside the first glue phase, the next end is rep 1's loop.
        let rep = loop_cycles + 1_200;
        assert_eq!(
            p.next_loop_end_after(loop_cycles + 10),
            Some(rep + loop_cycles)
        );
        // Past the final loop there is none.
        assert_eq!(p.next_loop_end_after(p.total_cycles()), None);
    }

    #[test]
    fn serial_only_program_has_no_loop_ends() {
        let p = development(5.0);
        assert_eq!(p.next_loop_end_after(0), None);
        assert_eq!(p.loop_fraction(), 0.0);
    }

    #[test]
    fn loop_fraction_between_zero_and_one() {
        for p in [
            structural_mechanics(258, 50),
            circuit_simulation(130, 20),
            linear_solver(256, 30),
            vector_study(514, 40),
            data_analysis(5),
        ] {
            let f = p.loop_fraction();
            assert!((0.0..=1.0).contains(&f), "{}: {f}", p.name);
            assert!(f > 0.0, "{} should contain loops", p.name);
        }
    }

    #[test]
    fn working_set_is_deduplicated_and_owned_by_asid() {
        let p = vector_study(130, 3);
        let ws = p.working_set(5);
        let mut sorted = ws.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), ws.len(), "no duplicate pages");
        assert!(ws.iter().all(|pg| pg.asid() == 5));
        assert!(!ws.is_empty());
    }

    #[test]
    fn drift_is_weighted_by_phase_mix() {
        let serial_only = development(2.0);
        let loopy = matrix_benchmark(256, 50);
        assert!(serial_only.mean_drift_per_mcycle() < loopy.mean_drift_per_mcycle());
    }

    #[test]
    fn common_dims_mostly_leave_two_leftover_iterations() {
        let twos = COMMON_DIMS.iter().filter(|&&d| d % 8 == 2).count();
        assert!(
            twos * 2 >= COMMON_DIMS.len(),
            "residue-2 dims should dominate"
        );
    }
}
