//! The round-boundary mounting invariant: a loop resumed mid-way must keep
//! the leftover structure (`remaining ≡ iters mod 8`) the real full run
//! would have had — the precondition for the transition results (§ 4.3).

use fx8_sim::cluster::LoadKind;
use fx8_sim::{Cluster, MachineConfig};
use fx8_workload::program::{matrix_benchmark, structural_mechanics};
use fx8_workload::{kernels, SessionDriver};

fn cluster() -> Cluster {
    let mut c = Cluster::new(MachineConfig::fx8(), 3);
    c.set_ip_intensity(0.0);
    c
}

#[test]
fn mounted_loops_preserve_the_leftover_residue() {
    let program = structural_mechanics(258, 20_000);
    // The loops this program can mount, by trip count.
    let candidates = [
        kernels::boundary_loop(3 + 258 % 4).iters,
        kernels::sor_sweep(258).iters,
        kernels::fine_grain_loop(258).iters,
    ];
    let mut d = SessionDriver::new(cluster(), vec![(0, program)]);
    let mut checked = 0;
    // Probe many points through the session; every mounted loop must have
    // progress on a round boundary for whichever kernel it is.
    for k in 1..200u64 {
        d.advance_to(k * 1_000_003);
        if d.cluster().load_kind() == LoadKind::Loop {
            let remaining = d.cluster().loop_remaining();
            let aligned = candidates
                .iter()
                .any(|&iters| remaining <= iters && (iters - remaining).is_multiple_of(8));
            assert!(
                aligned,
                "remaining {remaining} matches no round-aligned kernel {candidates:?}"
            );
            checked += 1;
        }
    }
    assert!(
        checked > 5,
        "expected to catch several mounted loops, got {checked}"
    );
}

#[test]
fn seek_transition_tail_has_the_loops_own_residue() {
    let program = matrix_benchmark(258, 50_000);
    let mut d = SessionDriver::new(cluster(), vec![(0, program)]);
    for _ in 0..5 {
        let mounted = d.seek_transition(24, u64::MAX / 2).expect("loops abound");
        assert_eq!(
            d.cluster().load_kind(),
            LoadKind::Loop,
            "mounted at {mounted}"
        );
        let remaining = d.cluster().loop_remaining();
        // matmul-258: 258 ≡ 2 (mod 8); the mounted tail must agree.
        assert_eq!(remaining % 8, 258 % 8, "tail {remaining} lost the residue");
        // Let the drain play out so the next seek moves forward.
        let c = d.cluster_mut();
        for _ in 0..2_000_000 {
            c.step();
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        assert_eq!(c.load_kind(), LoadKind::Drained);
    }
}

#[test]
fn drained_tail_ends_on_two_leftover_iterations() {
    // Directly verify the 8k+2 mechanism: a lockstep kernel with residue 2
    // mounted on a round boundary collapses 8 -> 2 and the 2-state carries
    // most of the drain.
    let kernel = kernels::sor_sweep(258);
    let mut c = cluster();
    c.mount_loop(
        kernel.instantiate(1),
        258 - 26,
        258,
        kernels::glue_serial().instantiate(1),
        1,
    );
    let mut per_state = [0u64; 9];
    for _ in 0..2_000_000 {
        let w = c.step();
        per_state[w.active_count() as usize] += 1;
        if c.load_kind() == LoadKind::Drained {
            break;
        }
    }
    assert_eq!(c.load_kind(), LoadKind::Drained);
    let transition: u64 = (2..8).map(|j| per_state[j]).sum();
    assert!(
        per_state[2] * 2 > transition,
        "2-active should dominate the drain: {per_state:?}"
    );
}
