//! Acquisition triggers.
//!
//! § 3.5: the random-sampling sessions triggered immediately; ten
//! high-concurrency sessions triggered "when all eight processors in the
//! Cluster were active", and five transition sessions triggered on "the
//! transition from eight processors active to a smaller number active".

use fx8_sim::ProbeWord;
use serde::{Deserialize, Serialize};

/// When the analyzer starts filling its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trigger {
    /// Capture immediately (random workload sampling).
    Immediate,
    /// Capture when every CE in the cluster is concurrent-active.
    AllCesActive,
    /// Capture at the cycle activity first drops below full concurrency.
    TransitionFromFull,
}

/// Stateful trigger evaluation over the record stream.
#[derive(Debug, Clone)]
pub struct TriggerState {
    trigger: Trigger,
    n_ces: u32,
    prev_full: bool,
}

impl TriggerState {
    /// Build an evaluator for a cluster of `n_ces` CEs.
    pub fn new(trigger: Trigger, n_ces: usize) -> Self {
        TriggerState {
            trigger,
            n_ces: n_ces as u32,
            prev_full: false,
        }
    }

    /// Feed one record; returns `true` when acquisition must start *at*
    /// this record (the record is included in the buffer).
    pub fn fire(&mut self, word: &ProbeWord) -> bool {
        let active = word.active_count();
        let full = active == self.n_ces;
        let fired = match self.trigger {
            Trigger::Immediate => true,
            Trigger::AllCesActive => full,
            Trigger::TransitionFromFull => self.prev_full && active < self.n_ces,
        };
        self.prev_full = full;
        fired
    }

    /// Would this trigger stay un-fired for *any* run of records whose
    /// active count holds constant at `active`? Used by the horizon-aware
    /// acquisition wait: while the cluster is quiescent the active mask
    /// cannot change, so a dormant trigger lets the monitor fast-forward
    /// instead of evaluating records one by one.
    ///
    /// `TransitionFromFull` needs care: the *first* record of the window is
    /// judged against the current `prev_full`, while every later record in
    /// a constant-activity run sees `prev_full == full` and can never be a
    /// falling edge. The single `prev_full && !full` term covers both.
    pub fn dormant(&self, active: u32) -> bool {
        let full = active == self.n_ces;
        match self.trigger {
            Trigger::Immediate => false,
            Trigger::AllCesActive => !full,
            // i.e. `!(prev_full && !full)`: no armed falling edge present.
            Trigger::TransitionFromFull => !self.prev_full || full,
        }
    }

    /// Advance the evaluator's edge state over a skipped run of records,
    /// all with active count `active`. Equivalent to calling [`fire`] on
    /// each skipped record (each such call is guaranteed `false` by
    /// [`dormant`]) — only the final `prev_full` survives. Must only be
    /// called when at least one cycle was actually skipped.
    ///
    /// [`fire`]: TriggerState::fire
    /// [`dormant`]: TriggerState::dormant
    pub fn note_skipped(&mut self, active: u32) {
        self.prev_full = active == self.n_ces;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(mask: fx8_sim::LaneWord) -> ProbeWord {
        let mut w = ProbeWord::idle(0);
        w.active_mask = mask;
        w
    }

    #[test]
    fn immediate_always_fires() {
        let mut t = TriggerState::new(Trigger::Immediate, 8);
        assert!(t.fire(&word(0)));
        assert!(t.fire(&word(0xff)));
    }

    #[test]
    fn all_active_fires_only_at_full_concurrency() {
        let mut t = TriggerState::new(Trigger::AllCesActive, 8);
        assert!(!t.fire(&word(0x7f)));
        assert!(t.fire(&word(0xff)));
        assert!(!t.fire(&word(0x01)));
    }

    #[test]
    fn transition_fires_on_falling_edge_only() {
        let mut t = TriggerState::new(Trigger::TransitionFromFull, 8);
        assert!(!t.fire(&word(0xff)), "full itself is not a transition");
        assert!(!t.fire(&word(0xff)), "still full");
        assert!(t.fire(&word(0x7f)), "8 -> 7 is the trigger");
        assert!(!t.fire(&word(0x3f)), "7 -> 6 is not (not from full)");
        assert!(!t.fire(&word(0xff)), "rising edge is not");
        assert!(t.fire(&word(0x00)), "8 -> 0 fires too");
    }

    /// `dormant(a)` must imply `fire` returns false for every record in a
    /// constant-activity run at `a`, from any reachable edge state — the
    /// contract the fast-forwarding wait loop relies on.
    #[test]
    fn dormant_implies_no_fire_over_constant_runs() {
        for trigger in [
            Trigger::Immediate,
            Trigger::AllCesActive,
            Trigger::TransitionFromFull,
        ] {
            for n_ces in [8usize, 32, 64] {
                for prev_full in [false, true] {
                    for active in 0..=n_ces as u32 {
                        let mut t = TriggerState::new(trigger, n_ces);
                        t.prev_full = prev_full;
                        if !t.dormant(active) {
                            continue;
                        }
                        let mask = fx8_sim::swar::lane_mask(active as usize);
                        let mut replay = t.clone();
                        for i in 0..4 {
                            assert!(
                                !replay.fire(&word(mask)),
                                "{trigger:?} n_ces={n_ces} prev_full={prev_full} \
                                 active={active} fired at record {i}"
                            );
                        }
                        // note_skipped lands on the same edge state the
                        // per-record replay reaches.
                        t.note_skipped(active);
                        assert_eq!(t.prev_full, replay.prev_full);
                    }
                }
            }
        }
    }

    #[test]
    fn dormancy_per_trigger_shape() {
        // Immediate is never dormant; AllCesActive is dormant below full;
        // TransitionFromFull is only awake when armed on a falling edge.
        let t = TriggerState::new(Trigger::Immediate, 8);
        assert!(!t.dormant(0));
        let t = TriggerState::new(Trigger::AllCesActive, 8);
        assert!(t.dormant(7) && !t.dormant(8));
        let mut t = TriggerState::new(Trigger::TransitionFromFull, 8);
        assert!(t.dormant(8) && t.dormant(3), "no edge pending from idle");
        t.note_skipped(8);
        assert!(t.dormant(8), "still full: no falling edge yet");
        assert!(!t.dormant(7), "armed: the very next record would fire");
    }

    #[test]
    fn transition_respects_cluster_width() {
        // A 2-CE cluster: full = both active.
        let mut t = TriggerState::new(Trigger::TransitionFromFull, 2);
        assert!(!t.fire(&word(0b11)));
        assert!(t.fire(&word(0b01)));
    }
}
