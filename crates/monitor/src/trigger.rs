//! Acquisition triggers.
//!
//! § 3.5: the random-sampling sessions triggered immediately; ten
//! high-concurrency sessions triggered "when all eight processors in the
//! Cluster were active", and five transition sessions triggered on "the
//! transition from eight processors active to a smaller number active".

use fx8_sim::ProbeWord;
use serde::{Deserialize, Serialize};

/// When the analyzer starts filling its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trigger {
    /// Capture immediately (random workload sampling).
    Immediate,
    /// Capture when every CE in the cluster is concurrent-active.
    AllCesActive,
    /// Capture at the cycle activity first drops below full concurrency.
    TransitionFromFull,
}

/// Stateful trigger evaluation over the record stream.
#[derive(Debug, Clone)]
pub struct TriggerState {
    trigger: Trigger,
    n_ces: u32,
    prev_full: bool,
}

impl TriggerState {
    /// Build an evaluator for a cluster of `n_ces` CEs.
    pub fn new(trigger: Trigger, n_ces: usize) -> Self {
        TriggerState {
            trigger,
            n_ces: n_ces as u32,
            prev_full: false,
        }
    }

    /// Feed one record; returns `true` when acquisition must start *at*
    /// this record (the record is included in the buffer).
    pub fn fire(&mut self, word: &ProbeWord) -> bool {
        let active = word.active_count();
        let full = active == self.n_ces;
        let fired = match self.trigger {
            Trigger::Immediate => true,
            Trigger::AllCesActive => full,
            Trigger::TransitionFromFull => self.prev_full && active < self.n_ces,
        };
        self.prev_full = full;
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(mask: u8) -> ProbeWord {
        let mut w = ProbeWord::idle(0);
        w.active_mask = mask;
        w
    }

    #[test]
    fn immediate_always_fires() {
        let mut t = TriggerState::new(Trigger::Immediate, 8);
        assert!(t.fire(&word(0)));
        assert!(t.fire(&word(0xff)));
    }

    #[test]
    fn all_active_fires_only_at_full_concurrency() {
        let mut t = TriggerState::new(Trigger::AllCesActive, 8);
        assert!(!t.fire(&word(0x7f)));
        assert!(t.fire(&word(0xff)));
        assert!(!t.fire(&word(0x01)));
    }

    #[test]
    fn transition_fires_on_falling_edge_only() {
        let mut t = TriggerState::new(Trigger::TransitionFromFull, 8);
        assert!(!t.fire(&word(0xff)), "full itself is not a transition");
        assert!(!t.fire(&word(0xff)), "still full");
        assert!(t.fire(&word(0x7f)), "8 -> 7 is the trigger");
        assert!(!t.fire(&word(0x3f)), "7 -> 6 is not (not from full)");
        assert!(!t.fire(&word(0xff)), "rising edge is not");
        assert!(t.fire(&word(0x00)), "8 -> 0 fires too");
    }

    #[test]
    fn transition_respects_cluster_width() {
        // A 2-CE cluster: full = both active.
        let mut t = TriggerState::new(Trigger::TransitionFromFull, 2);
        assert!(!t.fire(&word(0b11)));
        assert!(t.fire(&word(0b01)));
    }
}
