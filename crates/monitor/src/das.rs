//! The logic analyzer.
//!
//! The DAS 9100 "acquires the state of up to 80 signals... and stores this
//! data in a 512-deep buffer memory. The DAS is fully controllable through
//! an i/o port" (§ 3.3). [`DasMonitor::acquire`] arms the instrument
//! against a live cluster: it steps the machine until the configured
//! trigger fires (or a timeout elapses, the failure mode a real experiment
//! script must handle), then fills the buffer with consecutive records.
//! [`DasMonitor::acquire_reduced`] runs the same protocol but folds each
//! record into [`EventCounts`] as it is captured — the study's bulk path,
//! which never materializes the 512-record buffer.

use crate::reduce::EventCounts;
use crate::trigger::{Trigger, TriggerState};
use fx8_sim::{Cluster, ConfigError, Cycle, ProbeWord};
use serde::{Deserialize, Serialize};

/// Analyzer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DasConfig {
    /// Records per acquisition (512 on the unit used).
    pub buffer_depth: usize,
    /// Trigger condition.
    pub trigger: Trigger,
    /// Give up arming after this many cycles without a trigger.
    pub timeout_cycles: u64,
}

impl DasConfig {
    /// The instrument as used in the study: 512-deep buffer.
    pub fn das9100(trigger: Trigger) -> Self {
        DasConfig {
            buffer_depth: 512,
            trigger,
            timeout_cycles: 2_000_000,
        }
    }

    /// Check the configuration for degenerate values. The acquisition
    /// paths assume `buffer_depth >= 1` (the trigger record itself is
    /// always captured); [`DasMonitor::new`] floors the depth the same way
    /// the session layer floors a zero sample interval, so a zero here is
    /// reported rather than silently misbehaving.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.buffer_depth == 0 {
            return Err(ConfigError::Zero {
                field: "das.buffer_depth",
            });
        }
        Ok(())
    }
}

/// The trigger condition as the trace layer names it.
fn trigger_kind(trigger: Trigger) -> fx8_sim::trace::TriggerKind {
    match trigger {
        Trigger::Immediate => fx8_sim::trace::TriggerKind::Immediate,
        Trigger::AllCesActive => fx8_sim::trace::TriggerKind::AllCesActive,
        Trigger::TransitionFromFull => fx8_sim::trace::TriggerKind::TransitionFromFull,
    }
}

/// A completed acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquisition {
    /// The captured records, trigger record first.
    pub records: Vec<ProbeWord>,
    /// Cycle of the trigger record.
    pub triggered_at: Cycle,
}

/// A completed acquisition already condensed to its event counts.
///
/// Produced by [`DasMonitor::acquire_reduced`], which models the analyzer's
/// host-side reduction programs running as the buffer drains: the records
/// themselves are not kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducedAcquisition {
    /// Event counts of the captured buffer.
    pub counts: EventCounts,
    /// Cycle of the trigger record.
    pub triggered_at: Cycle,
}

/// Acquisition failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcquireError {
    /// The trigger never fired within the timeout.
    TriggerTimeout {
        /// Cycles waited before giving up.
        waited: u64,
    },
}

impl std::fmt::Display for AcquireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcquireError::TriggerTimeout { waited } => {
                write!(f, "trigger did not fire within {waited} cycles")
            }
        }
    }
}

impl std::error::Error for AcquireError {}

/// The analyzer.
#[derive(Debug, Clone)]
pub struct DasMonitor {
    cfg: DasConfig,
}

/// Σ per-CE (active_cycles, bus_busy_cycles) — the simulator's own counters,
/// incremented by the stepper independently of probe-word assembly. Over a
/// captured window their deltas must equal what the reduced probe stream
/// claims, which is exactly what the audit cross-check verifies.
#[cfg(feature = "audit")]
fn ground_truth(cluster: &Cluster) -> (u64, u64) {
    let mut active = 0u64;
    let mut busy = 0u64;
    for ce in 0..cluster.config().n_ces {
        let s = cluster.ce_stats(ce);
        active += s.active_cycles;
        busy += s.bus_busy_cycles;
    }
    (active, busy)
}

impl DasMonitor {
    /// Build a monitor with the given configuration. A zero `buffer_depth`
    /// is floored to 1: the trigger record is captured unconditionally by
    /// both acquisition paths, so depth 0 would silently behave as depth 1
    /// while the config (and the audit cross-check's expected record
    /// count) claimed otherwise.
    pub fn new(mut cfg: DasConfig) -> Self {
        cfg.buffer_depth = cfg.buffer_depth.max(1);
        DasMonitor { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> DasConfig {
        self.cfg
    }

    /// Compare the deltas a completed acquisition added to `counts` against
    /// the cluster's ground-truth counters over the same window, and run the
    /// accumulator's conservation laws. Any mismatch is filed as a violation
    /// on the cluster's audit report (component `"monitor"`): the probe
    /// stream and the simulator disagreeing about how many cycles each CE
    /// was active/driving its bus means one of them is lying.
    #[cfg(feature = "audit")]
    fn cross_check(
        &self,
        cluster: &mut Cluster,
        counts: &EventCounts,
        before: (u64, u64, u64),
        truth_before: (u64, u64),
    ) {
        let (records0, prof0, busy0) = before;
        let (active0, bus0) = truth_before;
        let (active1, bus1) = ground_truth(cluster);
        let d_records = counts.records - records0;
        let d_prof = counts.prof.iter().sum::<u64>() - prof0;
        let d_busy = counts.busy_ce_cycles() - busy0;
        // The trigger record is always captured, so even a degenerate
        // zero-depth buffer yields one record.
        let expect_records = self.cfg.buffer_depth.max(1) as u64;
        if d_records != expect_records {
            cluster.audit_note_violation(
                "monitor",
                format!("{expect_records} records in the window"),
                format!("{d_records}"),
            );
        }
        if d_prof != active1 - active0 {
            cluster.audit_note_violation(
                "monitor",
                format!("Δ prof = Δ active_cycles = {}", active1 - active0),
                format!("{d_prof}"),
            );
        }
        if d_busy != bus1 - bus0 {
            cluster.audit_note_violation(
                "monitor",
                format!("Δ busy ceop = Δ bus_busy_cycles = {}", bus1 - bus0),
                format!("{d_busy}"),
            );
        }
        if let Err(e) = counts.validate() {
            cluster.audit_note_violation("monitor", "accumulator conservation laws".to_string(), e);
        }
    }

    /// While armed and dormant, let the cluster fast-forward through
    /// quiescent cycles instead of evaluating records one by one. The
    /// trigger cannot fire inside a constant-activity window
    /// ([`TriggerState::dormant`]), and the timeout deadline is threaded to
    /// the cluster as the next-probe hint so a skip never overshoots the
    /// cycle on which the per-cycle loop would have given up. Returns
    /// `Some(err)` when the wait timed out during the skip; `Ok` progress
    /// and trigger evaluation stay with the caller's per-cycle loop.
    ///
    /// Bit-identical to the per-cycle wait: every skipped record would have
    /// been discarded with `fire == false`, and a timeout reached by
    /// skipping stops at exactly `armed_at + timeout_cycles`, the cycle the
    /// per-cycle loop reports.
    fn skip_dormant_wait(
        &self,
        cluster: &mut Cluster,
        trig: &mut TriggerState,
        armed_at: Cycle,
        deadline: Cycle,
    ) -> Option<AcquireError> {
        while trig.dormant(cluster.active_count()) {
            let budget = deadline.saturating_sub(cluster.now());
            if cluster.skip_quiescent(budget) == 0 {
                break;
            }
            trig.note_skipped(cluster.active_count());
            if cluster.now() - armed_at >= self.cfg.timeout_cycles {
                return Some(AcquireError::TriggerTimeout {
                    waited: cluster.now() - armed_at,
                });
            }
        }
        None
    }

    /// Arm against `cluster`, wait for the trigger, fill the buffer.
    /// The cluster advances by however many cycles the wait plus the
    /// capture take (hardware monitoring is non-intrusive: the machine
    /// does not know it is being observed).
    pub fn acquire(&self, cluster: &mut Cluster) -> Result<Acquisition, AcquireError> {
        let n_ces = cluster.config().n_ces;
        let mut trig = TriggerState::new(self.cfg.trigger, n_ces);
        let armed_at = cluster.now();
        let deadline = armed_at.saturating_add(self.cfg.timeout_cycles);
        cluster.set_next_probe_at(Some(deadline));
        let result = loop {
            if let Some(err) = self.skip_dormant_wait(cluster, &mut trig, armed_at, deadline) {
                break Err(err);
            }
            #[cfg(feature = "audit")]
            let truth0 = ground_truth(cluster);
            let w = cluster.step();
            if trig.fire(&w) {
                cluster.note_probe_trigger(trigger_kind(self.cfg.trigger));
                let mut records = Vec::with_capacity(self.cfg.buffer_depth);
                let triggered_at = w.cycle;
                records.push(w);
                while records.len() < self.cfg.buffer_depth {
                    records.push(cluster.step());
                }
                #[cfg(feature = "audit")]
                {
                    let counts = EventCounts::reduce(&records, n_ces);
                    self.cross_check(cluster, &counts, (0, 0, 0), truth0);
                }
                break Ok(Acquisition {
                    records,
                    triggered_at,
                });
            }
            if cluster.now() - armed_at >= self.cfg.timeout_cycles {
                break Err(AcquireError::TriggerTimeout {
                    waited: cluster.now() - armed_at,
                });
            }
        };
        cluster.set_next_probe_at(None);
        result
    }

    /// Like [`DasMonitor::acquire`], but reduce the buffer on the fly:
    /// each captured record is folded straight into an [`EventCounts`]
    /// instead of being materialized in a record vector. The cluster
    /// advances exactly as under `acquire`, so trajectories (and therefore
    /// everything downstream) are bit-identical between the two paths.
    pub fn acquire_reduced(
        &self,
        cluster: &mut Cluster,
    ) -> Result<ReducedAcquisition, AcquireError> {
        let mut counts = EventCounts::empty(cluster.config().n_ces);
        let triggered_at = self.acquire_reduced_into(cluster, &mut counts)?;
        Ok(ReducedAcquisition {
            counts,
            triggered_at,
        })
    }

    /// Streaming acquisition into a caller-owned accumulator — the random
    /// sampling path, which pools several snapshots into one sample's
    /// counts and so never needs a per-snapshot `EventCounts` either.
    /// Returns the trigger cycle; on timeout `counts` is untouched.
    pub fn acquire_reduced_into(
        &self,
        cluster: &mut Cluster,
        counts: &mut EventCounts,
    ) -> Result<Cycle, AcquireError> {
        let n_ces = cluster.config().n_ces;
        debug_assert_eq!(
            counts.n_ces, n_ces,
            "accumulator width must match the cluster"
        );
        let mut trig = TriggerState::new(self.cfg.trigger, n_ces);
        let armed_at = cluster.now();
        let deadline = armed_at.saturating_add(self.cfg.timeout_cycles);
        cluster.set_next_probe_at(Some(deadline));
        let result = loop {
            if let Some(err) = self.skip_dormant_wait(cluster, &mut trig, armed_at, deadline) {
                break Err(err);
            }
            #[cfg(feature = "audit")]
            let truth0 = ground_truth(cluster);
            #[cfg(feature = "audit")]
            let before = (
                counts.records,
                counts.prof.iter().sum::<u64>(),
                counts.busy_ce_cycles(),
            );
            let w = cluster.step();
            if trig.fire(&w) {
                cluster.note_probe_trigger(trigger_kind(self.cfg.trigger));
                let triggered_at = w.cycle;
                counts.accumulate_word(&w);
                for _ in 1..self.cfg.buffer_depth {
                    counts.accumulate_word(&cluster.step());
                }
                #[cfg(feature = "audit")]
                self.cross_check(cluster, counts, before, truth0);
                break Ok(triggered_at);
            }
            if cluster.now() - armed_at >= self.cfg.timeout_cycles {
                break Err(AcquireError::TriggerTimeout {
                    waited: cluster.now() - armed_at,
                });
            }
        };
        cluster.set_next_probe_at(None);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx8_sim::addr::VAddr;
    use fx8_sim::stream::{CodeRegion, LoopBody, SerialCode, StridedLoop, StridedSerial};
    use fx8_sim::MachineConfig;

    fn serial_code() -> Box<dyn SerialCode> {
        Box::new(StridedSerial::new(
            CodeRegion {
                base: VAddr::new(1, 0),
                footprint_bytes: 512,
                bytes_per_instr: 4,
            },
            VAddr::new(1, 0x10_0000),
            8,
            4096,
            3,
        ))
    }

    fn loop_body() -> Box<dyn LoopBody> {
        Box::new(StridedLoop {
            region: CodeRegion {
                base: VAddr::new(1, 0x1000),
                footprint_bytes: 256,
                bytes_per_instr: 4,
            },
            src: VAddr::new(1, 0x20_0000),
            dst: VAddr::new(1, 0x30_0000),
            elem: 8,
            compute: 6,
        })
    }

    fn cluster() -> Cluster {
        let mut c = Cluster::new(MachineConfig::fx8(), 11);
        c.set_ip_intensity(0.0);
        c
    }

    #[test]
    fn immediate_acquisition_fills_buffer() {
        let mut c = cluster();
        let das = DasMonitor::new(DasConfig::das9100(Trigger::Immediate));
        let acq = das.acquire(&mut c).unwrap();
        assert_eq!(acq.records.len(), 512);
        // Consecutive cycles.
        for (i, w) in acq.records.iter().enumerate() {
            assert_eq!(w.cycle, acq.triggered_at + i as u64);
        }
    }

    #[test]
    fn all_active_trigger_waits_for_full_concurrency() {
        let mut c = cluster();
        c.mount_loop(loop_body(), 0, 1_000_000, serial_code(), 1);
        let das = DasMonitor::new(DasConfig::das9100(Trigger::AllCesActive));
        let acq = das.acquire(&mut c).unwrap();
        assert_eq!(
            acq.records[0].active_count(),
            8,
            "first record is the trigger"
        );
    }

    #[test]
    fn transition_trigger_captures_the_drain() {
        let mut c = cluster();
        // Long enough to reach full concurrency, short enough to drain.
        c.mount_loop(loop_body(), 0, 2_000, serial_code(), 1);
        let das = DasMonitor::new(DasConfig::das9100(Trigger::TransitionFromFull));
        let acq = das.acquire(&mut c).unwrap();
        let first = acq.records[0].active_count();
        assert!(
            first < 8,
            "trigger record is below full concurrency: {first}"
        );
        assert!(first >= 1, "the drain starts with some CEs still running");
    }

    #[test]
    fn trigger_timeout_on_idle_machine() {
        let mut c = cluster();
        let das = DasMonitor::new(DasConfig {
            buffer_depth: 512,
            trigger: Trigger::AllCesActive,
            timeout_cycles: 5_000,
        });
        let err = das.acquire(&mut c).unwrap_err();
        assert!(matches!(err, AcquireError::TriggerTimeout { waited } if waited >= 5_000));
    }

    #[test]
    fn serial_work_never_fires_all_active() {
        let mut c = cluster();
        c.mount_serial(serial_code(), 1, None);
        let das = DasMonitor::new(DasConfig {
            buffer_depth: 64,
            trigger: Trigger::AllCesActive,
            timeout_cycles: 10_000,
        });
        assert!(das.acquire(&mut c).is_err());
    }

    #[test]
    fn acquire_reduced_matches_buffered_reduction() {
        use crate::reduce::EventCounts;
        // Two identical machines, one per acquisition path; the streaming
        // reduction must equal reducing the materialized buffer, and both
        // clusters must land on the same cycle.
        for trigger in [
            Trigger::Immediate,
            Trigger::AllCesActive,
            Trigger::TransitionFromFull,
        ] {
            let machine = || {
                let mut c = cluster();
                c.mount_loop(loop_body(), 0, 3_000, serial_code(), 1);
                c
            };
            let das = DasMonitor::new(DasConfig::das9100(trigger));
            let (mut a, mut b) = (machine(), machine());
            let buffered = das.acquire(&mut a).unwrap();
            let streamed = das.acquire_reduced(&mut b).unwrap();
            assert_eq!(streamed.triggered_at, buffered.triggered_at, "{trigger:?}");
            assert_eq!(
                streamed.counts,
                EventCounts::reduce(&buffered.records, 8),
                "{trigger:?}"
            );
            assert_eq!(a.now(), b.now(), "{trigger:?}: paths advance identically");
        }
    }

    #[test]
    fn acquire_reduced_into_pools_and_preserves_counts_on_timeout() {
        use crate::reduce::EventCounts;
        let mut c = cluster();
        let das = DasMonitor::new(DasConfig {
            buffer_depth: 64,
            trigger: Trigger::Immediate,
            timeout_cycles: 1_000,
        });
        let mut counts = EventCounts::empty(8);
        das.acquire_reduced_into(&mut c, &mut counts).unwrap();
        das.acquire_reduced_into(&mut c, &mut counts).unwrap();
        assert_eq!(
            counts.records, 128,
            "two snapshots pool into one accumulator"
        );
        // A timeout must not corrupt the pooled counts.
        let strict = DasMonitor::new(DasConfig {
            buffer_depth: 64,
            trigger: Trigger::AllCesActive,
            timeout_cycles: 2_000,
        });
        let before = counts.clone();
        assert!(strict.acquire_reduced_into(&mut c, &mut counts).is_err());
        assert_eq!(counts, before);
    }

    #[test]
    fn zero_buffer_depth_is_rejected_by_validate_and_floored_by_new() {
        let cfg = DasConfig {
            buffer_depth: 0,
            trigger: Trigger::Immediate,
            timeout_cycles: 100,
        };
        assert!(cfg.validate().is_err());
        assert!(DasConfig::das9100(Trigger::Immediate).validate().is_ok());
        let das = DasMonitor::new(cfg);
        assert_eq!(
            das.config().buffer_depth,
            1,
            "floored: the trigger record is always captured"
        );
        let mut c = cluster();
        let acq = das.acquire(&mut c).unwrap();
        assert_eq!(acq.records.len(), 1);
    }

    /// The horizon-aware wait must be invisible: acquisitions (records,
    /// trigger cycle) and the full machine trajectory agree bit-for-bit
    /// with the per-cycle wait, for every trigger kind.
    #[test]
    fn fast_forward_wait_matches_per_cycle_wait() {
        for trigger in [
            Trigger::Immediate,
            Trigger::AllCesActive,
            Trigger::TransitionFromFull,
        ] {
            let run = |ff: bool| {
                let mut m = MachineConfig::fx8();
                m.fast_forward = ff;
                let mut c = Cluster::new(m, 11);
                c.set_ip_intensity(0.015);
                c.mount_loop(loop_body(), 0, 2_000, serial_code(), 1);
                let das = DasMonitor::new(DasConfig {
                    buffer_depth: 64,
                    trigger,
                    timeout_cycles: 50_000,
                });
                let res = das.acquire(&mut c);
                (res, c.now(), c.state_digest())
            };
            let (ra, na, da) = run(true);
            let (rb, nb, db) = run(false);
            assert_eq!(ra, rb, "{trigger:?}: acquisition differs");
            assert_eq!(na, nb, "{trigger:?}: clocks differ");
            assert_eq!(da, db, "{trigger:?}: machine state differs");
        }
    }

    /// A timeout reached by skipping stops at exactly the cycle the
    /// per-cycle loop reports, with the same error payload — and the
    /// next-probe hint is cleared so later skips are uncapped.
    #[test]
    fn fast_forward_timeout_matches_per_cycle_timeout() {
        let run = |ff: bool| {
            let mut m = MachineConfig::fx8();
            m.fast_forward = ff;
            let mut c = Cluster::new(m, 11);
            c.set_ip_intensity(0.0);
            let das = DasMonitor::new(DasConfig {
                buffer_depth: 512,
                trigger: Trigger::AllCesActive,
                timeout_cycles: 7_331,
            });
            let err = das.acquire(&mut c).unwrap_err();
            (err, c.now(), c)
        };
        let (ea, na, mut ca) = run(true);
        let (eb, nb, _) = run(false);
        assert_eq!(ea, eb);
        assert_eq!(na, nb);
        assert!(matches!(ea, AcquireError::TriggerTimeout { waited: 7_331 }));
        if !cfg!(feature = "audit") {
            let (skipped, _) = ca.skip_counters();
            assert!(skipped > 0, "the idle wait should fast-forward");
            assert!(
                ca.skip_quiescent(100) > 0,
                "stale next-probe hint left behind by the acquisition"
            );
        }
    }

    #[test]
    fn acquisition_is_nonintrusive_to_machine_progress() {
        // Two identical machines; one observed, one not. Same trace.
        let trace = |observe: bool| {
            let mut c = Cluster::new(MachineConfig::fx8(), 3);
            c.set_ip_intensity(0.0);
            c.mount_loop(loop_body(), 0, 5_000, serial_code(), 1);
            if observe {
                let das = DasMonitor::new(DasConfig {
                    buffer_depth: 256,
                    trigger: Trigger::Immediate,
                    timeout_cycles: 1_000,
                });
                let _ = das.acquire(&mut c).unwrap();
                c.run(1_000 - 256);
            } else {
                c.run(1_000);
            }
            c.capture(100)
        };
        assert_eq!(trace(true), trace(false));
    }
}
