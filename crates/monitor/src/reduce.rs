//! Reduction of acquisition buffers to event counts.
//!
//! § 3.4, Table 1 — "The programs have the ability to ... reduce the
//! acquired data to appropriate event counts":
//!
//! | name | event |
//! |---|---|
//! | `num_j`    | number of records with `j` processors active |
//! | `prof_j`   | number of records with processor `j` active |
//! | `ceop_j`   | number of records with CE bus opcode = `j` |
//! | `membop_j` | number of records with memory bus opcode = `j` |
//!
//! The derived system measures of Chapter 5 come straight from these:
//! *CE Bus Busy* is the non-idle fraction of CE-bus cycles averaged over
//! the eight buses, and *Missrate* is the fraction of total bus cycles
//! corresponding to cache misses (memory-bus `Fetch` starts per record).

use fx8_sim::opcode::{CeBusOp, MemBusOp};
use fx8_sim::{LaneWord, ProbeWord};
use serde::{Deserialize, Serialize};

/// The reduced event counts of one or more acquisition buffers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// `num[j]`: records with exactly `j` processors active, `j = 0..=P`.
    pub num: Vec<u64>,
    /// `prof[j]`: records in which processor `j` was active.
    pub prof: Vec<u64>,
    /// `ceop[op]`: CE-bus cycles (summed over all CE buses) with opcode `op`.
    pub ceop: [u64; CeBusOp::COUNT],
    /// `membop[op]`: records with memory-bus opcode `op`.
    pub membop: [u64; MemBusOp::COUNT],
    /// Records reduced.
    pub records: u64,
    /// CEs in the monitored cluster.
    pub n_ces: usize,
}

impl EventCounts {
    /// An empty accumulator for a cluster of `n_ces` CEs.
    pub fn empty(n_ces: usize) -> Self {
        EventCounts {
            num: vec![0; n_ces + 1],
            prof: vec![0; n_ces],
            ceop: [0; CeBusOp::COUNT],
            membop: [0; MemBusOp::COUNT],
            records: 0,
            n_ces,
        }
    }

    /// Reduce a buffer of records.
    pub fn reduce(records: &[ProbeWord], n_ces: usize) -> Self {
        let mut out = Self::empty(n_ces);
        out.accumulate(records);
        out
    }

    /// Fold more records into the counts.
    pub fn accumulate(&mut self, records: &[ProbeWord]) {
        self.accumulate_slice(records);
    }

    /// Batch reduction of a record slice — the same counts as folding each
    /// word through [`EventCounts::accumulate_word`], computed mask-first:
    /// instead of testing all [`MAX_CES`](fx8_sim::probe::MAX_CES) lanes
    /// per record, the inner loops walk only the set bits of `active_mask` and
    /// [`ProbeWord::busy_ce_mask`], and the (usually dominant) idle CE-bus
    /// count is credited in one subtraction. Records from dense loop
    /// windows carry 6–8 busy lanes and sparse records carry 0–1, so both
    /// regimes do less work than the lane-by-lane scan.
    pub fn accumulate_slice(&mut self, records: &[ProbeWord]) {
        let n = self.n_ces;
        // Mask algebra runs in full [`LaneWord`] width, so records from
        // 2-lane and 64-lane clusters reduce through the same loops. Lanes
        // beyond the cluster width never contribute — exactly the
        // `0..n_ces` bound of the word-at-a-time loop.
        let width_mask = fx8_sim::swar::lane_mask(n);
        let idle = CeBusOp::Idle.index();
        for w in records {
            let active = w.active_count() as usize;
            debug_assert!(active <= n, "more active CEs than the cluster has");
            self.num[active.min(n)] += 1;
            let mut m = LaneWord::from(w.active_mask) & width_mask;
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                self.prof[j] += 1;
                m &= m - 1;
            }
            let busy = LaneWord::from(w.busy_ce_mask()) & width_mask;
            self.ceop[idle] += n as u64 - u64::from(busy.count_ones());
            let mut b = busy;
            while b != 0 {
                let j = b.trailing_zeros() as usize;
                self.ceop[w.ce_ops[j].index()] += 1;
                b &= b - 1;
            }
            self.membop[w.mem_op.index()] += 1;
        }
        self.records += records.len() as u64;
    }

    /// Fold a single record into the counts — the streaming-acquisition
    /// path, which reduces each record as it is captured instead of
    /// materializing a buffer first.
    #[inline]
    pub fn accumulate_word(&mut self, w: &ProbeWord) {
        let active = w.active_count() as usize;
        debug_assert!(active <= self.n_ces, "more active CEs than the cluster has");
        self.num[active.min(self.n_ces)] += 1;
        for j in 0..self.n_ces {
            if w.is_active(j) {
                self.prof[j] += 1;
            }
            self.ceop[w.ce_ops[j].index()] += 1;
        }
        self.membop[w.mem_op.index()] += 1;
        self.records += 1;
    }

    /// Merge another reduction (same cluster width) into this one.
    pub fn merge(&mut self, other: &EventCounts) {
        assert_eq!(self.n_ces, other.n_ces, "cluster widths differ");
        for (a, b) in self.num.iter_mut().zip(&other.num) {
            *a += b;
        }
        for (a, b) in self.prof.iter_mut().zip(&other.prof) {
            *a += b;
        }
        for (a, b) in self.ceop.iter_mut().zip(&other.ceop) {
            *a += b;
        }
        for (a, b) in self.membop.iter_mut().zip(&other.membop) {
            *a += b;
        }
        self.records += other.records;
    }

    /// CE-bus cycles carrying a non-idle opcode, summed over all buses —
    /// the numerator of [`EventCounts::ce_bus_busy`] and the quantity the
    /// audit cross-check compares against per-CE ground-truth counters.
    pub fn busy_ce_cycles(&self) -> u64 {
        CeBusOp::ALL
            .iter()
            .filter(|op| op.is_busy())
            .map(|op| self.ceop[op.index()])
            .sum()
    }

    /// *CE Bus Busy*: "the fraction of processor-to-cache bus cycles that
    /// are not idle ... the average value of this fraction over all eight
    /// busses" (§ 5). Zero for an empty reduction — the whole denominator
    /// is guarded, so a degenerate zero-width accumulator yields 0, not NaN.
    pub fn ce_bus_busy(&self) -> f64 {
        let denom = self.records * self.n_ces as u64;
        if denom == 0 {
            return 0.0;
        }
        self.busy_ce_cycles() as f64 / denom as f64
    }

    /// *Missrate*: "the fraction of total bus cycles corresponding to
    /// cache misses" — memory-bus fetch starts per record.
    pub fn missrate(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.membop[MemBusOp::Fetch.index()] as f64 / self.records as f64
    }

    /// Memory-bus utilization (non-idle memory-bus record fraction).
    pub fn mem_bus_busy(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        let busy: u64 = MemBusOp::ALL
            .iter()
            .filter(|op| op.is_busy())
            .map(|op| self.membop[op.index()])
            .sum();
        busy as f64 / self.records as f64
    }

    /// Check the conservation laws that tie the reduced counts together.
    /// Every well-formed reduction of `records` probe words satisfies:
    /// `Σ num[j] == records`, `Σ ceop == records·n_ces`, `Σ membop ==
    /// records`, and `Σ j·num[j] == Σ prof[j]` (each record with `j`
    /// processors active contributes `j` profile counts), with every
    /// `prof[j] ≤ records`.
    pub fn validate(&self) -> Result<(), String> {
        if self.num.len() != self.n_ces + 1 {
            return Err(format!(
                "num has {} bins, expected n_ces + 1 = {}",
                self.num.len(),
                self.n_ces + 1
            ));
        }
        if self.prof.len() != self.n_ces {
            return Err(format!(
                "prof has {} slots, expected n_ces = {}",
                self.prof.len(),
                self.n_ces
            ));
        }
        let num_sum: u64 = self.num.iter().sum();
        if num_sum != self.records {
            return Err(format!(
                "Σ num[j] = {num_sum} != records = {}",
                self.records
            ));
        }
        let ceop_sum: u64 = self.ceop.iter().sum();
        let ceop_expect = self.records * self.n_ces as u64;
        if ceop_sum != ceop_expect {
            return Err(format!(
                "Σ ceop = {ceop_sum} != records·n_ces = {ceop_expect}"
            ));
        }
        let membop_sum: u64 = self.membop.iter().sum();
        if membop_sum != self.records {
            return Err(format!(
                "Σ membop = {membop_sum} != records = {}",
                self.records
            ));
        }
        let weighted: u64 = self
            .num
            .iter()
            .enumerate()
            .map(|(j, &k)| j as u64 * k)
            .sum();
        let prof_sum: u64 = self.prof.iter().sum();
        if weighted != prof_sum {
            return Err(format!("Σ j·num[j] = {weighted} != Σ prof[j] = {prof_sum}"));
        }
        for (j, &p) in self.prof.iter().enumerate() {
            if p > self.records {
                return Err(format!(
                    "prof[{j}] = {p} exceeds records = {}",
                    self.records
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(mask: LaneWord, ce_op: CeBusOp, mem_op: MemBusOp) -> ProbeWord {
        let mut w = ProbeWord::idle(0);
        w.active_mask = mask;
        for j in 0..fx8_sim::probe::MAX_CES {
            if mask & (1 << j) != 0 {
                w.ce_ops[j] = ce_op;
            }
        }
        w.mem_op = mem_op;
        w
    }

    #[test]
    fn num_counts_by_active_processors() {
        let records = vec![
            word(0, CeBusOp::Idle, MemBusOp::Idle),
            word(0b11, CeBusOp::Read, MemBusOp::Idle),
        ];
        let c = EventCounts::reduce(&records, 8);
        assert_eq!(c.num[0], 1);
        assert_eq!(c.num[2], 1);
        assert_eq!(c.records, 2);
        // Conservation: Σ num_j = records.
        assert_eq!(c.num.iter().sum::<u64>(), c.records);
    }

    #[test]
    fn prof_counts_per_processor() {
        let records = vec![
            word(0b0000_0001, CeBusOp::Read, MemBusOp::Idle),
            word(0b1000_0001, CeBusOp::Read, MemBusOp::Idle),
        ];
        let c = EventCounts::reduce(&records, 8);
        assert_eq!(c.prof[0], 2);
        assert_eq!(c.prof[7], 1);
        assert_eq!(c.prof[3], 0);
    }

    /// Regression: lanes above bit 8 used to be truncated by the `u8`
    /// probe mask before the monitor ever saw them.
    #[test]
    fn wide_cluster_lanes_reach_the_reduction() {
        let records = vec![word(
            (1 << 9) | (1 << 40) | (1 << 63),
            CeBusOp::Read,
            MemBusOp::Idle,
        )];
        let c = EventCounts::reduce(&records, 64);
        assert_eq!(c.num[3], 1);
        assert_eq!(c.prof[9], 1);
        assert_eq!(c.prof[40], 1);
        assert_eq!(c.prof[63], 1);
        assert_eq!(c.prof[8], 0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ceop_sums_over_all_buses() {
        let records = vec![word(0b11, CeBusOp::Write, MemBusOp::Idle)];
        let c = EventCounts::reduce(&records, 8);
        assert_eq!(c.ceop[CeBusOp::Write.index()], 2);
        assert_eq!(c.ceop[CeBusOp::Idle.index()], 6);
        // Conservation: Σ ceop = records * n_ces.
        assert_eq!(c.ceop.iter().sum::<u64>(), c.records * 8);
    }

    #[test]
    fn ce_bus_busy_is_per_bus_average() {
        // One record, 2 of 8 buses busy: busy = 0.25.
        let records = vec![word(0b11, CeBusOp::Read, MemBusOp::Idle)];
        let c = EventCounts::reduce(&records, 8);
        assert!((c.ce_bus_busy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn missrate_counts_fetch_starts_per_record() {
        let records = vec![
            word(0, CeBusOp::Idle, MemBusOp::Fetch),
            word(0, CeBusOp::Idle, MemBusOp::Idle),
            word(0, CeBusOp::Idle, MemBusOp::WriteBack),
            word(0, CeBusOp::Idle, MemBusOp::Fetch),
        ];
        let c = EventCounts::reduce(&records, 8);
        assert!((c.missrate() - 0.5).abs() < 1e-12);
        assert!((c.mem_bus_busy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let a = EventCounts::reduce(&[word(0b1, CeBusOp::Read, MemBusOp::Fetch)], 8);
        let mut b = EventCounts::reduce(&[word(0b11, CeBusOp::Write, MemBusOp::Idle)], 8);
        b.merge(&a);
        assert_eq!(b.records, 2);
        assert_eq!(b.num[1], 1);
        assert_eq!(b.num[2], 1);
        assert_eq!(b.prof[0], 2);
        assert_eq!(b.membop[MemBusOp::Fetch.index()], 1);
    }

    #[test]
    #[should_panic(expected = "cluster widths differ")]
    fn merge_rejects_width_mismatch() {
        let a = EventCounts::empty(8);
        let mut b = EventCounts::empty(4);
        b.merge(&a);
    }

    #[test]
    fn empty_reduction_yields_zero_measures() {
        let c = EventCounts::empty(8);
        assert_eq!(c.ce_bus_busy(), 0.0);
        assert_eq!(c.missrate(), 0.0);
        assert_eq!(c.mem_bus_busy(), 0.0);
    }

    #[test]
    fn zero_width_accumulator_has_finite_rates() {
        // Regression: a zero-CE accumulator with records folded in used to
        // compute ce_bus_busy as 0/0 = NaN (records > 0, n_ces == 0 slips
        // past a records-only guard).
        let mut c = EventCounts::empty(0);
        c.accumulate_word(&ProbeWord::idle(0));
        assert_eq!(c.records, 1);
        assert!(c.ce_bus_busy().is_finite());
        assert_eq!(c.ce_bus_busy(), 0.0);
        assert!(c.validate().is_ok());
    }

    mod slice_vs_word {
        use super::*;
        use fx8_sim::probe::MAX_CES;
        use proptest::prelude::*;

        /// A well-formed record for an `n_ces`-wide cluster from raw draws:
        /// activity lines and busy opcodes only on in-width lanes. The mask
        /// draw is a full `LaneWord`, so wide clusters really get records
        /// with lanes above bit 8 set.
        fn make_word(n_ces: usize, mask: LaneWord, ops: &[usize], mem: usize) -> ProbeWord {
            let width_mask = fx8_sim::swar::lane_mask(n_ces);
            let mut w = ProbeWord::idle(0);
            w.active_mask = mask & width_mask;
            for (j, &op) in ops.iter().enumerate().take(n_ces.min(MAX_CES)) {
                w.ce_ops[j] = CeBusOp::ALL[op];
            }
            w.mem_op = MemBusOp::ALL[mem];
            w
        }

        proptest! {
            /// The mask-driven batch reducer and the lane-by-lane scalar
            /// reducer must produce identical counts on any record slice,
            /// at any cluster width up to the full lane word.
            #[test]
            fn slice_reduction_matches_word_at_a_time(
                n_ces in 1usize..=MAX_CES,
                raw in prop::collection::vec(
                    (
                        any::<LaneWord>(),
                        prop::collection::vec(0..CeBusOp::COUNT, MAX_CES..MAX_CES + 1),
                        0..MemBusOp::COUNT,
                    ),
                    0..200,
                ),
            ) {
                let words: Vec<ProbeWord> = raw
                    .iter()
                    .map(|(mask, ops, mem)| make_word(n_ces, *mask, ops, *mem))
                    .collect();
                let mut scalar = EventCounts::empty(n_ces);
                for w in &words {
                    scalar.accumulate_word(w);
                }
                let mut batch = EventCounts::empty(n_ces);
                batch.accumulate_slice(&words);
                prop_assert_eq!(&scalar, &batch);
                prop_assert!(batch.validate().is_ok());
            }
        }
    }

    #[test]
    fn validate_accepts_real_reductions_and_rejects_corruption() {
        let records = vec![
            word(0, CeBusOp::Idle, MemBusOp::Idle),
            word(0b11, CeBusOp::Read, MemBusOp::Fetch),
            word(0b1000_0001, CeBusOp::Write, MemBusOp::Idle),
        ];
        let mut c = EventCounts::reduce(&records, 8);
        assert!(c.validate().is_ok());
        c.prof[0] += 1; // break Σ j·num[j] == Σ prof[j]
        assert!(c.validate().is_err());
    }
}
