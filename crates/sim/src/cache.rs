//! Set-associative caches.
//!
//! One generic [`SetAssocCache`] implementation backs the three cache
//! structures of the FX/8: the per-CE internal instruction caches, the
//! shared CE cache (as four interleaved banks — two per CPC module), and
//! the aggregated IP cache. Lines carry a dirty bit and a `unique` bit for
//! the machine's unique-copy-before-modify coherence rule (Appendix C).

use crate::addr::LineId;
use serde::{Deserialize, Serialize};

/// A resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Which line is resident.
    pub line: LineId,
    /// Modified relative to memory (write-back on eviction).
    pub dirty: bool,
    /// This cache holds the unique copy (required before modification).
    pub unique: bool,
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The displaced line.
    pub line: LineId,
    /// Whether it must be written back.
    pub dirty: bool,
}

/// Running counters, cheap enough to keep always-on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Fills performed.
    pub fills: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
    /// Dirty lines displaced (write-backs generated).
    pub writebacks: u64,
    /// Lines removed by coherence invalidations.
    pub invalidations: u64,
}

impl CacheStats {
    /// Miss ratio over all lookups (0 if no lookups yet).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// The mapping from line to set index is the *caller's* responsibility
/// (the shared cache interleaves lines across banks before set-indexing),
/// so every method takes an explicit `set` argument. `debug_assert`s guard
/// against crossed wires in debug builds.
///
/// Storage is a single flat `ways` array with stride `assoc` and a
/// per-set occupancy count: set `s` lives in
/// `ways[s * assoc .. s * assoc + len[s]]`, MRU first. A lookup is then
/// one contiguous scan — no per-set heap allocation, no pointer chase —
/// which matters because every CE and IP reference lands here.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// All ways, flattened; slots at or past a set's `len` are garbage.
    ways: Vec<Entry>,
    /// Resident entries per set (`<= assoc`).
    len: Vec<u8>,
    assoc: usize,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Create a cache with `n_sets` sets of associativity `assoc`.
    pub fn new(n_sets: usize, assoc: usize) -> Self {
        assert!(n_sets > 0 && assoc > 0);
        assert!(assoc <= u8::MAX as usize, "associativity fits the counters");
        let filler = Entry {
            line: LineId(u64::MAX),
            dirty: false,
            unique: false,
        };
        SetAssocCache {
            ways: vec![filler; n_sets * assoc],
            len: vec![0; n_sets],
            assoc,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.len.len()
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (contents stay).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Total lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.len.iter().map(|&l| l as usize).sum()
    }

    /// The live entries of `set`, MRU first.
    #[inline]
    fn set_ways(&self, set: usize) -> &[Entry] {
        &self.ways[set * self.assoc..set * self.assoc + self.len[set] as usize]
    }

    /// Look up `line` in `set`; on hit, promote to MRU and return the entry.
    #[inline]
    pub fn lookup(&mut self, set: usize, line: LineId) -> Option<Entry> {
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.len[set] as usize];
        // MRU fast path: a repeat touch of the most recent line needs no
        // reordering at all.
        if let Some(&e0) = ways.first() {
            if e0.line == line {
                self.stats.hits += 1;
                return Some(e0);
            }
        }
        if let Some(pos) = ways.iter().position(|e| e.line == line) {
            // MRU promotion as one rotate instead of remove + insert: the
            // same permutation without shifting the tail of the set twice.
            // This is the hottest line in the simulator (every CE and IP
            // reference lands here).
            ways[..=pos].rotate_right(1);
            let e = ways[0];
            self.stats.hits += 1;
            Some(e)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Peek without LRU update or stats.
    pub fn contains(&self, set: usize, line: LineId) -> bool {
        self.set_ways(set).iter().any(|e| e.line == line)
    }

    /// Peek at the resident entry for `line` in `set`, without LRU update
    /// or stats side effects (coherence audits).
    pub fn entry(&self, set: usize, line: LineId) -> Option<Entry> {
        self.set_ways(set).iter().find(|e| e.line == line).copied()
    }

    /// Install `line` as MRU in `set`; returns the victim if the set was full.
    /// The line must not already be resident (fill-after-miss discipline).
    pub fn fill(&mut self, set: usize, line: LineId, dirty: bool, unique: bool) -> Option<Evicted> {
        debug_assert!(!self.contains(set, line), "fill of resident line");
        self.stats.fills += 1;
        let base = set * self.assoc;
        let len = self.len[set] as usize;
        let victim = if len == self.assoc {
            // The LRU entry falls off the end; everything shifts down one.
            let v = self.ways[base + len - 1];
            self.stats.evictions += 1;
            if v.dirty {
                self.stats.writebacks += 1;
            }
            Some(Evicted {
                line: v.line,
                dirty: v.dirty,
            })
        } else {
            self.len[set] = (len + 1) as u8;
            None
        };
        let keep = len.min(self.assoc - 1);
        self.ways.copy_within(base..base + keep, base + 1);
        self.ways[base] = Entry {
            line,
            dirty,
            unique,
        };
        victim
    }

    /// Mark a resident line dirty (and unique). Returns false if not resident.
    pub fn mark_dirty(&mut self, set: usize, line: LineId) -> bool {
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.len[set] as usize];
        if let Some(e) = ways.iter_mut().find(|e| e.line == line) {
            e.dirty = true;
            e.unique = true;
            true
        } else {
            false
        }
    }

    /// Grant unique ownership of a resident line. Returns false if absent.
    pub fn make_unique(&mut self, set: usize, line: LineId) -> bool {
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.len[set] as usize];
        if let Some(e) = ways.iter_mut().find(|e| e.line == line) {
            e.unique = true;
            true
        } else {
            false
        }
    }

    /// Coherence invalidation. Returns the entry if it was resident
    /// (the caller decides whether a dirty copy must be flushed).
    pub fn invalidate(&mut self, set: usize, line: LineId) -> Option<Entry> {
        let base = set * self.assoc;
        let len = self.len[set] as usize;
        let ways = &self.ways[base..base + len];
        if let Some(pos) = ways.iter().position(|e| e.line == line) {
            self.stats.invalidations += 1;
            let e = self.ways[base + pos];
            // Close the gap, preserving LRU order of the survivors.
            self.ways
                .copy_within(base + pos + 1..base + len, base + pos);
            self.len[set] = (len - 1) as u8;
            Some(e)
        } else {
            None
        }
    }

    /// Drop everything (used between unrelated test scenarios).
    pub fn flush_all(&mut self) {
        self.len.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineId {
        LineId(n)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(c.lookup(1, line(10)).is_none());
        assert!(c.fill(1, line(10), false, false).is_none());
        let e = c.lookup(1, line(10)).expect("hit after fill");
        assert!(!e.dirty);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = SetAssocCache::new(1, 2);
        c.fill(0, line(1), false, false);
        c.fill(0, line(2), false, false);
        // Touch line 1 so line 2 becomes LRU.
        assert!(c.lookup(0, line(1)).is_some());
        let v = c.fill(0, line(3), false, false).expect("eviction");
        assert_eq!(v.line, line(2));
        assert!(c.contains(0, line(1)));
        assert!(c.contains(0, line(3)));
        assert!(!c.contains(0, line(2)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = SetAssocCache::new(1, 1);
        c.fill(0, line(1), false, false);
        assert!(c.mark_dirty(0, line(1)));
        let v = c.fill(0, line(2), false, false).expect("eviction");
        assert!(v.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = SetAssocCache::new(2, 2);
        c.fill(0, line(4), true, true);
        let e = c.invalidate(0, line(4)).expect("was resident");
        assert!(e.dirty && e.unique);
        assert!(!c.contains(0, line(4)));
        assert!(c.invalidate(0, line(4)).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_preserves_lru_order_of_survivors() {
        let mut c = SetAssocCache::new(1, 4);
        for n in 1..=4 {
            c.fill(0, line(n), false, false);
        }
        // MRU..LRU is now 4,3,2,1; dropping 3 must leave 4,2,1.
        assert!(c.invalidate(0, line(3)).is_some());
        let v = c.fill(0, line(5), false, false);
        assert!(v.is_none(), "freed way absorbs the fill");
        let evicted = c.fill(0, line(6), false, false).expect("full again");
        assert_eq!(evicted.line, line(1), "line 1 is still the LRU");
    }

    #[test]
    fn mark_dirty_sets_unique() {
        let mut c = SetAssocCache::new(1, 2);
        c.fill(0, line(9), false, false);
        c.mark_dirty(0, line(9));
        let e = c.lookup(0, line(9)).unwrap();
        assert!(e.dirty && e.unique);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = SetAssocCache::new(2, 2);
        for i in 0..100u64 {
            let set = (i % 2) as usize;
            if !c.contains(set, line(i)) {
                c.fill(set, line(i), i % 3 == 0, false);
            }
            assert!(c.occupancy() <= 4);
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn miss_ratio_tracks_lookups() {
        let mut c = SetAssocCache::new(1, 1);
        c.lookup(0, line(1)); // miss
        c.fill(0, line(1), false, false);
        c.lookup(0, line(1)); // hit
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flush_all_empties_cache() {
        let mut c = SetAssocCache::new(2, 2);
        c.fill(0, line(1), false, false);
        c.fill(1, line(2), true, true);
        c.flush_all();
        assert_eq!(c.occupancy(), 0);
    }
}
