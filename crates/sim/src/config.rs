//! Machine configuration.
//!
//! Geometry and latency parameters of the measured FX/8, taken from
//! Appendix C of the thesis and Alliant's FX/Series documentation:
//! eight CEs, a 128 KB shared cache split over two CPC modules with four-way
//! interleaving and 32-byte lines, per-CE 16 KB instruction caches, two
//! 64-bit memory buses to four-way-interleaved main memory, 4 KB pages.
//! Everything is configurable so tests can shrink the machine and ablation
//! benches can rewire arbitration.

use serde::{Deserialize, Serialize};

/// A configuration validation failure.
///
/// Every `validate()` in the config chain (`CacheGeometry`,
/// [`MachineConfig`], and the session/study/monitor configs built on top)
/// reports through this enum instead of a bare `String`, so callers can
/// match on the failure, and diagnostics always name the offending field
/// and its value. Hand-rolled `Display`/`Error` impls keep the vendored
/// build free of a `thiserror` dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field's value fell outside its legal range; `constraint`
    /// describes the bound it broke.
    OutOfRange {
        /// Dotted path of the offending field (e.g. `cache.line_bytes`).
        field: &'static str,
        /// The rejected value, rendered.
        value: String,
        /// Human-readable statement of the violated constraint.
        constraint: String,
    },
    /// A field that must be a nonzero power of two was not.
    NotPowerOfTwo {
        /// Dotted path of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A field that must be nonzero was zero.
    Zero {
        /// Dotted path of the offending field.
        field: &'static str,
    },
}

impl ConfigError {
    /// Shorthand constructor for [`ConfigError::OutOfRange`].
    pub fn out_of_range(
        field: &'static str,
        value: impl std::fmt::Display,
        constraint: impl Into<String>,
    ) -> Self {
        ConfigError::OutOfRange {
            field,
            value: value.to_string(),
            constraint: constraint.into(),
        }
    }

    /// Dotted path of the field that failed validation.
    pub fn field(&self) -> &'static str {
        match self {
            ConfigError::OutOfRange { field, .. }
            | ConfigError::NotPowerOfTwo { field, .. }
            | ConfigError::Zero { field } => field,
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::OutOfRange {
                field,
                value,
                constraint,
            } => write!(f, "invalid {field}: {value} ({constraint})"),
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(
                    f,
                    "invalid {field}: {value} (expected a nonzero power of two)"
                )
            }
            ConfigError::Zero { field } => {
                write!(f, "invalid {field}: 0 (expected a nonzero value)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which CE wins when several contend for the same shared resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arbitration {
    /// Fixed priority by CE index (CE 0 always wins).
    FixedLowFirst,
    /// Fixed priority wired from both ends of the backplane inward:
    /// 0, 7, 1, 6, 2, 5, 3, 4 (the CCB grant-chain default).
    EndsFirst,
    /// Fixed priority wired from the center of the backplane outward:
    /// the exact reverse of [`Arbitration::EndsFirst`]. As the crossbar
    /// default this disfavours CEs 0 and 7 under contention, so they run
    /// slightly slower and trail at the end of concurrent loops — the
    /// thesis's own hypothesis for Figure 7 ("if priority schemes favor
    /// particular processors, [the others] will suffer greater delay,
    /// increasing the probability that they will trail other processors
    /// in execution at the end of the loop").
    CenterFirst,
    /// Round-robin starting after the previous winner (the "fair" ablation).
    RoundRobin,
}

impl Arbitration {
    /// The CE holding priority rank `k` (0 = highest) among `n` CEs.
    /// Closed form so arbiters can walk the priority order without
    /// materializing it — arbitration runs every bus cycle.
    #[inline]
    pub fn nth(self, n: usize, rotor: usize, k: usize) -> usize {
        debug_assert!(k < n);
        match self {
            Arbitration::FixedLowFirst => k,
            // Ends inward: 0, n-1, 1, n-2, ... — even ranks from the low
            // end, odd ranks from the high end.
            Arbitration::EndsFirst => {
                if k.is_multiple_of(2) {
                    k / 2
                } else {
                    n - 1 - k / 2
                }
            }
            Arbitration::CenterFirst => Arbitration::EndsFirst.nth(n, rotor, n - 1 - k),
            Arbitration::RoundRobin => (rotor + 1 + k) % n,
        }
    }

    /// Priority order as an allocation-free iterator; earlier items win
    /// ties. For `RoundRobin` the order rotates with `rotor`.
    #[inline]
    pub fn order_iter(self, n: usize, rotor: usize) -> impl Iterator<Item = usize> {
        (0..n).map(move |k| self.nth(n, rotor, k))
    }

    /// Priority permutation for `n` CEs, materialized (tests, tools).
    pub fn order(self, n: usize, rotor: usize) -> Vec<usize> {
        self.order_iter(n, rotor).collect()
    }
}

/// Geometry of the shared CE cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes (128 KB on the measured machine).
    pub total_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Number of interleaved banks (4: two CPC modules × 2 banks each).
    pub banks: usize,
    /// Associativity of each bank.
    pub assoc: usize,
}

impl CacheGeometry {
    /// Number of sets per bank.
    pub fn sets_per_bank(&self) -> usize {
        (self.total_bytes / self.line_bytes) as usize / self.banks / self.assoc
    }

    /// Bank servicing a given line (low-order line-interleaving).
    /// `banks` is a validated power of two, so the modulo is a mask.
    #[inline]
    pub fn bank_of(&self, line: u64) -> usize {
        let b = self.banks as u64;
        if b.is_power_of_two() {
            (line & (b - 1)) as usize
        } else {
            (line % b) as usize
        }
    }

    /// Set index within the bank for a given line.
    pub fn set_of(&self, line: u64) -> usize {
        ((line / self.banks as u64) % self.sets_per_bank() as u64) as usize
    }

    /// Check internal consistency (all powers of two, nonzero).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "cache.line_bytes",
                value: self.line_bytes,
            });
        }
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "cache.banks",
                value: self.banks as u64,
            });
        }
        if self.assoc == 0 {
            return Err(ConfigError::Zero {
                field: "cache.assoc",
            });
        }
        let lines = self.total_bytes / self.line_bytes;
        if lines == 0 || !lines.is_multiple_of((self.banks * self.assoc) as u64) {
            return Err(ConfigError::out_of_range(
                "cache.total_bytes",
                self.total_bytes,
                format!(
                    "{} lines must divide evenly into {} banks x {} ways",
                    lines, self.banks, self.assoc
                ),
            ));
        }
        if !self.sets_per_bank().is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "cache.sets_per_bank",
                value: self.sets_per_bank() as u64,
            });
        }
        Ok(())
    }
}

/// Observability knobs for the `fx8-trace` layer.
///
/// Both pillars default **off**, and a disabled tracer costs the simulator
/// nothing: [`crate::Cluster`] only carries an unarmed `Option` and every
/// hook sits outside the dense stepper's lane loop (see DESIGN.md §11).
/// The knobs are pure observers — turning them on never changes machine
/// trajectories, RNG draws, or state digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Record the metrics registry (per-engine cycle split, crossbar
    /// per-bank grants and retries, membus busy cycles, CCB
    /// dispatch-to-grant latency histogram, VM fault counts), sampled at
    /// window granularity.
    pub metrics: bool,
    /// Record the structured event trace (concurrency transitions, CCB
    /// edges, probe triggers, fast-forward and dense windows) into a
    /// bounded ring buffer, exportable as Chrome `trace_event` JSON.
    pub events: bool,
    /// Capacity of the event ring buffer; on overflow the oldest records
    /// are dropped and counted. Pre-allocated once, so steady-state
    /// tracing stays allocation-free.
    pub event_capacity: usize,
}

impl TraceConfig {
    /// Default ring capacity: enough for the quick study's busiest
    /// session without pushing resident memory past a few MB.
    pub const DEFAULT_EVENT_CAPACITY: usize = 64 * 1024;

    /// Everything disabled (the default): zero-cost observability.
    pub fn off() -> Self {
        TraceConfig {
            metrics: false,
            events: false,
            event_capacity: Self::DEFAULT_EVENT_CAPACITY,
        }
    }

    /// Metrics registry only — no event ring.
    pub fn metrics_only() -> Self {
        TraceConfig {
            metrics: true,
            ..Self::off()
        }
    }

    /// Both pillars on.
    pub fn full() -> Self {
        TraceConfig {
            metrics: true,
            events: true,
            event_capacity: Self::DEFAULT_EVENT_CAPACITY,
        }
    }

    /// Is any instrumentation requested?
    pub fn enabled(&self) -> bool {
        self.metrics || self.events
    }

    /// Validate: an enabled event trace needs a nonzero ring.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.events && self.event_capacity == 0 {
            return Err(ConfigError::Zero {
                field: "trace.event_capacity",
            });
        }
        Ok(())
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of Computing Elements in the cluster (8 on the measured FX/8).
    pub n_ces: usize,
    /// Number of Interactive Processors.
    pub n_ips: usize,
    /// Per-CE internal instruction cache capacity in bytes (16 KB).
    pub icache_bytes: u64,
    /// Per-CE instruction-cache line size in bytes.
    pub icache_line_bytes: u64,
    /// Shared CE cache geometry.
    pub cache: CacheGeometry,
    /// Cycles for a shared-cache hit to return data to the CE.
    pub cache_hit_cycles: u64,
    /// Main-memory access latency in cycles, before bus transfer.
    pub mem_latency_cycles: u64,
    /// Number of 64-bit memory buses (2 on the FX/8).
    pub mem_buses: usize,
    /// Cycles to move one cache line over a memory bus (32 B over 64 bits = 4).
    pub line_transfer_cycles: u64,
    /// Interleave factor of main memory modules.
    pub mem_interleave: usize,
    /// Cycles for the CCB to grant one iteration request.
    pub ccb_grant_cycles: u64,
    /// Arbitration discipline on the CCB iteration-grant daisy chain.
    pub ccb_arbitration: Arbitration,
    /// Grant propagation delay per daisy-chain hop: a grant reaches CE `j`
    /// after `ccb_chain_hop_cycles * min(j, n-1-j)` extra cycles (0 = no
    /// propagation modeling; available for ablations).
    pub ccb_chain_hop_cycles: u64,
    /// Arbitration discipline at each crossbar cache bank.
    pub crossbar_arbitration: Arbitration,
    /// Cycles a CE stalls when it takes a page fault inside a captured
    /// window (fault service itself proceeds on an IP).
    pub fault_stall_cycles: u64,
    /// Total physical memory in bytes (up to 64 MB on the FX/8).
    pub phys_mem_bytes: u64,
    /// Nanoseconds per bus cycle, used to convert wall time to cycles.
    pub ns_per_cycle: u64,
    /// Quiescence-aware fast-forward: when every component is in a
    /// deterministic multi-cycle wait, the stepper may advance to the next
    /// event horizon in one bulk pass instead of cycle by cycle. The skip
    /// is bit-identical to per-cycle stepping (a pure optimization), so
    /// this stays on by default; the knob exists so differential tests can
    /// compare both paths and ablations can measure the win. Builds with
    /// the `audit` feature ignore it and always step every cycle, keeping
    /// the auditor an independent per-cycle oracle.
    pub fast_forward: bool,
    /// Dense-window batch stepping: when the horizon scan finds a mostly
    /// active loop window that fast-forward cannot skip, `Cluster::run`
    /// hands it to a fused structure-of-arrays kernel that steps the same
    /// cycles over lane-packed CE state. Bit-identical to per-cycle
    /// stepping (a pure optimization), so it stays on by default; the knob
    /// exists so differential tests can compare both paths. Builds with
    /// the `audit` feature ignore it, exactly like [`Self::fast_forward`].
    pub dense_stepping: bool,
    /// `fx8-trace` observability: metrics registry and structured event
    /// trace, both off by default and free when off.
    pub trace: TraceConfig,
}

impl MachineConfig {
    /// The measured machine: a full FX/8 as described in Appendix C.
    pub fn fx8() -> Self {
        MachineConfig {
            n_ces: 8,
            n_ips: 3,
            icache_bytes: 16 * 1024,
            icache_line_bytes: 32,
            cache: CacheGeometry {
                total_bytes: 128 * 1024,
                line_bytes: 32,
                banks: 4,
                assoc: 2,
            },
            cache_hit_cycles: 1,
            mem_latency_cycles: 10,
            mem_buses: 2,
            line_transfer_cycles: 4,
            mem_interleave: 4,
            // The hardware self-scheduler hands out one iteration per
            // grant period; ~2 us of dispatch overhead per iteration on the
            // real machine corresponds to roughly a dozen bus cycles. The
            // serialized channel preserves the EndsFirst start order
            // through lockstep loop rounds, which is what hands the
            // leftover iterations to CEs 0 and 7 at loop ends (Figure 7).
            ccb_grant_cycles: 12,
            ccb_arbitration: Arbitration::EndsFirst,
            ccb_chain_hop_cycles: 0,
            crossbar_arbitration: Arbitration::FixedLowFirst,
            fault_stall_cycles: 400,
            phys_mem_bytes: 32 * 1024 * 1024,
            ns_per_cycle: 170,
            fast_forward: true,
            dense_stepping: true,
            trace: TraceConfig::off(),
        }
    }

    /// Extra grant-propagation cycles for CE `ce` (distance from the
    /// nearer end of the daisy chain). Lanes at or beyond the cluster
    /// width have no chain position; they are clamped to distance zero
    /// instead of underflowing `n_ces - 1 - ce` (which used to wrap to a
    /// ~2^64-cycle stall in release builds).
    pub fn ccb_chain_delay(&self, ce: usize) -> u64 {
        debug_assert!(ce < self.n_ces, "CE {ce} outside a {}-CE chain", self.n_ces);
        let from_high_end = self.n_ces.saturating_sub(1).saturating_sub(ce);
        self.ccb_chain_hop_cycles * ce.min(from_high_end) as u64
    }

    /// A hypothetical FX/8-derived cluster of `n_ces` CEs — the machine
    /// the paper could not measure. Shared resources scale with width in
    /// the FX/8's own proportions (16 KB of shared cache per CE, one cache
    /// bank per two CEs, one memory bus per four CEs), so the scaling
    /// curves isolate the concurrency effects of width rather than of
    /// starving the cache. Bank count and memory interleave saturate at 16
    /// (the widest crossbar the dense kernel's conflict masks carry), which
    /// is itself a measured effect: past 32 CEs the interleave stops
    /// scaling and bank contention climbs. Latencies, CCB behaviour and IP
    /// background load stay at the measured machine's values. `n_ces` is
    /// rounded up to a power of two for the geometry computations, so every
    /// width in `1..=64` validates.
    pub fn scaled(n_ces: usize) -> Self {
        let p = n_ces.next_power_of_two().max(2);
        let banks = (p / 2).clamp(2, 16);
        MachineConfig {
            n_ces,
            cache: CacheGeometry {
                total_bytes: 16 * 1024 * p as u64,
                line_bytes: 32,
                banks,
                assoc: 2,
            },
            mem_buses: (p / 4).max(1),
            mem_interleave: banks,
            ..MachineConfig::fx8()
        }
    }

    /// A deliberately tiny machine for unit tests: 2 CEs, 4 KB cache.
    pub fn tiny() -> Self {
        MachineConfig {
            n_ces: 2,
            n_ips: 1,
            icache_bytes: 1024,
            icache_line_bytes: 32,
            cache: CacheGeometry {
                total_bytes: 4 * 1024,
                line_bytes: 32,
                banks: 2,
                assoc: 2,
            },
            cache_hit_cycles: 1,
            mem_latency_cycles: 4,
            mem_buses: 1,
            line_transfer_cycles: 4,
            mem_interleave: 2,
            ccb_grant_cycles: 1,
            ccb_arbitration: Arbitration::EndsFirst,
            ccb_chain_hop_cycles: 0,
            crossbar_arbitration: Arbitration::FixedLowFirst,
            fault_stall_cycles: 50,
            phys_mem_bytes: 1024 * 1024,
            ns_per_cycle: 170,
            fast_forward: true,
            dense_stepping: true,
            trace: TraceConfig::off(),
        }
    }

    /// Convert seconds of machine time to bus cycles.
    pub fn seconds_to_cycles(&self, secs: f64) -> u64 {
        (secs * 1e9 / self.ns_per_cycle as f64) as u64
    }

    /// Physical page frames available for resident pages.
    pub fn phys_frames(&self) -> u64 {
        self.phys_mem_bytes / crate::addr::PAGE_BYTES
    }

    /// Validate geometry invariants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        // One CE per LaneWord bit: the probe word, the SWAR kernels and the
        // monitor reductions are all lane-mask native up to this width.
        let max = crate::probe::MAX_CES;
        if self.n_ces == 0 || self.n_ces > max {
            return Err(ConfigError::out_of_range(
                "n_ces",
                self.n_ces,
                format!("expected 1..={max}"),
            ));
        }
        self.cache.validate()?;
        if !self.icache_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "icache_bytes",
                value: self.icache_bytes,
            });
        }
        if !self.icache_line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: "icache_line_bytes",
                value: self.icache_line_bytes,
            });
        }
        if self.mem_buses == 0 {
            return Err(ConfigError::Zero { field: "mem_buses" });
        }
        self.trace.validate()?;
        Ok(())
    }

    /// Start a validated [`MachineConfigBuilder`] from the FX/8 preset.
    /// Prefer this over struct-literal construction: literals bypass
    /// `validate()` and break whenever a field is added.
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder::fx8()
    }
}

/// Builder for [`MachineConfig`].
///
/// Starts from a preset ([`MachineConfigBuilder::fx8`] or
/// [`MachineConfigBuilder::tiny`]), overrides individual fields, and runs
/// the full validation chain in [`MachineConfigBuilder::build`], returning
/// [`ConfigError`] instead of panicking later in `Cluster::new`.
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, v: $ty) -> Self {
                self.cfg.$name = v;
                self
            }
        )*
    };
}

impl MachineConfigBuilder {
    /// Start from the measured FX/8 ([`MachineConfig::fx8`]).
    pub fn fx8() -> Self {
        MachineConfigBuilder {
            cfg: MachineConfig::fx8(),
        }
    }

    /// Start from the tiny test machine ([`MachineConfig::tiny`]).
    pub fn tiny() -> Self {
        MachineConfigBuilder {
            cfg: MachineConfig::tiny(),
        }
    }

    /// Start from an existing configuration.
    pub fn from_config(cfg: MachineConfig) -> Self {
        MachineConfigBuilder { cfg }
    }

    builder_setters! {
        /// Number of Computing Elements (1..=[`crate::probe::MAX_CES`]).
        n_ces: usize,
        /// Number of Interactive Processors.
        n_ips: usize,
        /// Per-CE instruction-cache capacity in bytes.
        icache_bytes: u64,
        /// Per-CE instruction-cache line size in bytes.
        icache_line_bytes: u64,
        /// Shared CE cache geometry.
        cache: CacheGeometry,
        /// Cycles for a shared-cache hit.
        cache_hit_cycles: u64,
        /// Main-memory access latency in cycles.
        mem_latency_cycles: u64,
        /// Number of memory buses.
        mem_buses: usize,
        /// Cycles to move one cache line over a memory bus.
        line_transfer_cycles: u64,
        /// Interleave factor of main memory modules.
        mem_interleave: usize,
        /// Cycles for the CCB to grant one iteration request.
        ccb_grant_cycles: u64,
        /// Arbitration discipline on the CCB grant chain.
        ccb_arbitration: Arbitration,
        /// Grant propagation delay per daisy-chain hop.
        ccb_chain_hop_cycles: u64,
        /// Arbitration discipline at each crossbar cache bank.
        crossbar_arbitration: Arbitration,
        /// Cycles a CE stalls on a captured page fault.
        fault_stall_cycles: u64,
        /// Total physical memory in bytes.
        phys_mem_bytes: u64,
        /// Nanoseconds per bus cycle.
        ns_per_cycle: u64,
        /// Quiescence-aware fast-forward knob.
        fast_forward: bool,
        /// Dense-window batch stepping knob.
        dense_stepping: bool,
        /// `fx8-trace` observability knobs.
        trace: TraceConfig,
    }

    /// Validate and return the finished configuration.
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::fx8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx8_config_is_valid_and_matches_appendix_c() {
        let c = MachineConfig::fx8();
        c.validate().unwrap();
        assert_eq!(c.n_ces, 8);
        assert_eq!(c.cache.total_bytes, 128 * 1024);
        assert_eq!(c.cache.banks, 4);
        assert_eq!(c.icache_bytes, 16 * 1024);
        assert_eq!(c.mem_buses, 2);
        // 32-byte line over a 64-bit bus takes four transfers.
        assert_eq!(c.line_transfer_cycles, 4);
    }

    #[test]
    fn tiny_config_is_valid() {
        MachineConfig::tiny().validate().unwrap();
    }

    #[test]
    fn cache_geometry_partitions_lines() {
        let g = MachineConfig::fx8().cache;
        // 128 KB / 32 B = 4096 lines; 4 banks x 2 ways -> 512 sets/bank.
        assert_eq!(g.sets_per_bank(), 512);
        // Adjacent lines hit different banks (interleaving).
        assert_ne!(g.bank_of(0), g.bank_of(1));
        assert_eq!(g.bank_of(0), g.bank_of(4));
    }

    #[test]
    fn geometry_validation_rejects_bad_shapes() {
        let mut g = MachineConfig::fx8().cache;
        g.line_bytes = 33;
        assert!(g.validate().is_err());
        let mut g2 = MachineConfig::fx8().cache;
        g2.banks = 3;
        assert!(g2.validate().is_err());
        let mut g3 = MachineConfig::fx8().cache;
        g3.assoc = 0;
        assert!(g3.validate().is_err());
    }

    #[test]
    fn ends_first_order_is_0_7_1_6_2_5_3_4() {
        assert_eq!(
            Arbitration::EndsFirst.order(8, 0),
            vec![0, 7, 1, 6, 2, 5, 3, 4]
        );
        assert_eq!(Arbitration::EndsFirst.order(3, 0), vec![0, 2, 1]);
        assert_eq!(Arbitration::EndsFirst.order(1, 0), vec![0]);
    }

    #[test]
    fn center_first_is_reverse_of_ends_first() {
        assert_eq!(
            Arbitration::CenterFirst.order(8, 0),
            vec![4, 3, 5, 2, 6, 1, 7, 0]
        );
    }

    #[test]
    fn chain_delay_is_distance_from_nearer_end() {
        // Disabled by default (the serialized grant channel is the modeled
        // dispatch cost)...
        let c = MachineConfig::fx8();
        assert_eq!(c.ccb_chain_hop_cycles, 0);
        assert_eq!(c.ccb_chain_delay(3), 0);
        // ...but the ablation knob scales with chain distance when set.
        let mut hopped = MachineConfig::fx8();
        hopped.ccb_chain_hop_cycles = 2;
        assert_eq!(hopped.ccb_chain_delay(0), 0);
        assert_eq!(hopped.ccb_chain_delay(7), 0);
        assert_eq!(hopped.ccb_chain_delay(1), 2);
        assert_eq!(hopped.ccb_chain_delay(6), 2);
        assert_eq!(hopped.ccb_chain_delay(3), 6);
        assert_eq!(hopped.ccb_chain_delay(4), 6);
    }

    /// Regression: `ce >= n_ces` underflowed `n_ces - 1 - ce` and returned
    /// a delay of ~u64::MAX hops. Debug builds now trap on the misuse;
    /// release builds saturate the distance to zero.
    #[test]
    fn chain_delay_out_of_range_ce_does_not_underflow() {
        let mut c = MachineConfig::fx8();
        c.ccb_chain_hop_cycles = 2;
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(|| c.ccb_chain_delay(8));
            assert!(r.is_err(), "debug builds must trap on ce >= n_ces");
        } else {
            assert_eq!(c.ccb_chain_delay(8), 0);
            assert_eq!(c.ccb_chain_delay(usize::MAX), 0);
        }
    }

    #[test]
    fn scaled_presets_validate_at_every_study_width() {
        for w in [2usize, 4, 8, 16, 32, 64] {
            let c = MachineConfig::scaled(w);
            assert!(c.validate().is_ok(), "scaled({w}) must validate");
            assert_eq!(c.n_ces, w);
            // Per-CE cache share stays at the FX/8's 16 KB.
            assert_eq!(c.cache.total_bytes, 16 * 1024 * w as u64);
        }
        // At the measured width the preset IS the measured machine's
        // shared-resource geometry.
        let eight = MachineConfig::scaled(8);
        assert_eq!(eight.cache, MachineConfig::fx8().cache);
        assert_eq!(eight.mem_buses, MachineConfig::fx8().mem_buses);
        assert_eq!(eight.mem_interleave, MachineConfig::fx8().mem_interleave);
        // Bank count saturates at the 16-bank crossbar ceiling.
        assert_eq!(MachineConfig::scaled(64).cache.banks, 16);
        assert_eq!(MachineConfig::scaled(64).mem_buses, 16);
        // Odd widths round geometry up to the next power of two and still
        // validate.
        for w in [1usize, 3, 7, 33, 63] {
            assert!(MachineConfig::scaled(w).validate().is_ok(), "scaled({w})");
        }
    }

    #[test]
    fn round_robin_rotates() {
        assert_eq!(Arbitration::RoundRobin.order(4, 1), vec![2, 3, 0, 1]);
        assert_eq!(Arbitration::RoundRobin.order(4, 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn orders_are_permutations() {
        for arb in [
            Arbitration::FixedLowFirst,
            Arbitration::EndsFirst,
            Arbitration::CenterFirst,
            Arbitration::RoundRobin,
        ] {
            for n in [1, 2, 3, 8, 16, 33, 64] {
                for rotor in 0..n {
                    let mut o = arb.order(n, rotor);
                    o.sort_unstable();
                    assert_eq!(o, (0..n).collect::<Vec<_>>(), "{arb:?} n={n} rotor={rotor}");
                }
            }
        }
    }

    #[test]
    fn seconds_to_cycles_uses_cycle_time() {
        let c = MachineConfig::fx8();
        assert_eq!(c.seconds_to_cycles(1.0), 1_000_000_000 / 170);
    }

    #[test]
    fn fast_forward_defaults_on() {
        assert!(MachineConfig::fx8().fast_forward);
        assert!(MachineConfig::tiny().fast_forward);
        let mut off = MachineConfig::fx8();
        off.fast_forward = false;
        assert!(off.validate().is_ok(), "the knob is never a validity error");
    }

    #[test]
    fn dense_stepping_defaults_on() {
        assert!(MachineConfig::fx8().dense_stepping);
        assert!(MachineConfig::tiny().dense_stepping);
        let mut off = MachineConfig::fx8();
        off.dense_stepping = false;
        assert!(off.validate().is_ok(), "the knob is never a validity error");
    }

    #[test]
    fn configs_are_cloneable_and_comparable() {
        let c = MachineConfig::fx8();
        assert_eq!(c.clone(), c);
        assert_ne!(MachineConfig::tiny(), c);
    }

    #[test]
    fn trace_defaults_off_and_costs_nothing_to_validate() {
        let c = MachineConfig::fx8();
        assert!(!c.trace.enabled());
        assert_eq!(c.trace, TraceConfig::off());
        assert!(TraceConfig::metrics_only().enabled());
        assert!(TraceConfig::full().events);
        let mut bad = MachineConfig::fx8();
        bad.trace = TraceConfig::full();
        bad.trace.event_capacity = 0;
        assert_eq!(bad.validate().unwrap_err().field(), "trace.event_capacity");
    }

    #[test]
    fn config_errors_name_field_and_value() {
        let mut c = MachineConfig::fx8();
        c.n_ces = 65;
        let e = c.validate().unwrap_err();
        assert_eq!(e.field(), "n_ces");
        assert!(e.to_string().contains("n_ces"));
        assert!(e.to_string().contains("65"));

        let mut g = MachineConfig::fx8().cache;
        g.line_bytes = 33;
        let e = g.validate().unwrap_err();
        assert_eq!(
            e,
            ConfigError::NotPowerOfTwo {
                field: "cache.line_bytes",
                value: 33
            }
        );
        assert!(e.to_string().contains("33"));
    }

    #[test]
    fn builder_overrides_and_validates() {
        let c = MachineConfig::builder()
            .n_ces(4)
            .fast_forward(false)
            .trace(TraceConfig::metrics_only())
            .build()
            .unwrap();
        assert_eq!(c.n_ces, 4);
        assert!(!c.fast_forward);
        assert!(c.trace.metrics);
        // Everything not overridden keeps the preset value.
        assert_eq!(c.cache, MachineConfig::fx8().cache);

        let err = MachineConfigBuilder::tiny()
            .mem_buses(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::Zero { field: "mem_buses" });
    }
}
