//! Bus opcodes — the signal values the logic-analyzer probes decode.
//!
//! The study's probes sat at three points (§ 3.3): the per-CE bus between
//! each CE and the shared cache (on the CE's side of the crossbar), the
//! shared memory bus, and the Concurrency Control Bus. Each captured record
//! contains, per cycle, the opcode on every one of these buses. These enums
//! are exactly that alphabet; the monitor's event-count reduction (Table 1)
//! counts records by these values.

use serde::{Deserialize, Serialize};

/// Opcode on a CE↔cache bus for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CeBusOp {
    /// No transaction.
    Idle = 0,
    /// Operand read request or hit-data return.
    Read = 1,
    /// Operand write.
    Write = 2,
    /// Instruction fetch that missed the internal icache.
    IFetch = 3,
    /// Cycle re-issuing a request that is being filled from memory (the CE
    /// holds the bus while its miss completes its cache-side handshake).
    MissWait = 4,
}

impl CeBusOp {
    /// All opcode values, in encoding order.
    pub const ALL: [CeBusOp; 5] = [
        CeBusOp::Idle,
        CeBusOp::Read,
        CeBusOp::Write,
        CeBusOp::IFetch,
        CeBusOp::MissWait,
    ];

    /// Number of distinct opcodes.
    pub const COUNT: usize = Self::ALL.len();

    /// Whether this cycle counts as "busy" for the CE Bus Busy measure
    /// (the fraction of processor-to-cache bus cycles that are not idle).
    #[inline]
    pub fn is_busy(self) -> bool {
        !matches!(self, CeBusOp::Idle)
    }

    /// Encoding index (stable across runs; used by the reducer).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Opcode on the shared memory bus for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MemBusOp {
    /// No transaction on this bus.
    Idle = 0,
    /// Cache-line fetch caused by a CE-cache miss. Counting these against
    /// total CE bus cycles yields the study's Missrate.
    Fetch = 1,
    /// Dirty-line write-back from the CE cache.
    WriteBack = 2,
    /// IP-cache traffic (interactive / OS work).
    IpTraffic = 3,
    /// Coherence transaction: ownership upgrade or cross-cache invalidate
    /// (the caches must hold a unique copy before modifying a line).
    Coherence = 4,
}

impl MemBusOp {
    /// All opcode values, in encoding order.
    pub const ALL: [MemBusOp; 5] = [
        MemBusOp::Idle,
        MemBusOp::Fetch,
        MemBusOp::WriteBack,
        MemBusOp::IpTraffic,
        MemBusOp::Coherence,
    ];

    /// Number of distinct opcodes.
    pub const COUNT: usize = Self::ALL.len();

    /// Whether this cycle counts as busy for memory-bus utilization.
    #[inline]
    pub fn is_busy(self) -> bool {
        !matches!(self, MemBusOp::Idle)
    }

    /// Encoding index (stable across runs; used by the reducer).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, op) in CeBusOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        for (i, op) in MemBusOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn only_idle_is_not_busy() {
        assert!(!CeBusOp::Idle.is_busy());
        for op in &CeBusOp::ALL[1..] {
            assert!(op.is_busy());
        }
        assert!(!MemBusOp::Idle.is_busy());
        for op in &MemBusOp::ALL[1..] {
            assert!(op.is_busy());
        }
    }
}
