//! # fx8-sim — a cycle-approximate Alliant FX/8 simulator
//!
//! This crate models the machine that McGuire instrumented in *A
//! Measurement-Based Study of Concurrency in a Multiprocessor* (1987): the
//! Alliant FX/8 "Computational Cluster" of eight Computing Elements (CEs)
//! sharing a 128 KB four-way-interleaved cache through a crossbar switch,
//! backed by interleaved main memory over two 64-bit buses, with loop-level
//! concurrency dispatched in hardware over a dedicated Concurrency Control
//! Bus (CCB), and demand-paged virtual memory serviced by Interactive
//! Processors (IPs).
//!
//! The original study probed the machine with a logic analyzer: each probe
//! *record* is the state of the CE↔cache bus opcodes, the memory-bus opcode,
//! and the CCB activity lines at one bus cycle. This simulator is therefore
//! organized around a cycle stepper: [`Cluster::step`] advances one bus cycle
//! and yields a [`probe::ProbeWord`] describing exactly the signals the DAS
//! 9100 probes observed.
//!
//! ## Two-level time
//!
//! A measurement session covers 4–8 hours of machine time, but the monitor
//! only ever captured 512-record buffers. Simulating every one of the ~10¹¹
//! bus cycles in a session is both impossible and unnecessary: the paper's
//! data only ever sees the captured windows plus continuously-integrated
//! kernel counters. The stack therefore runs at two levels:
//!
//! * **micro** — [`Cluster::step`] is a genuine cycle-level simulation of
//!   the machine state (cache contents, crossbar arbitration, CCB iteration
//!   self-scheduling, memory-bus contention, page faults);
//! * **macro** — between captured windows, the workload layer advances phase
//!   *progress* analytically (iterations completed, instructions retired)
//!   using the same cost model, and the VM layer integrates page-fault
//!   counters continuously.
//!
//! Everything a captured record can show is produced by the micro level.
//!
//! ## Crate layout
//!
//! | module | hardware being modeled |
//! |---|---|
//! | [`config`] | machine geometry and latencies (Appendix C of the thesis) |
//! | [`addr`] | virtual addresses: ASID + segment/page/offset |
//! | [`opcode`] | bus opcodes visible to the probes |
//! | [`icache`] | per-CE 16 KB internal instruction cache |
//! | [`cache`] | the shared CE cache (two CPC modules, four banks) |
//! | [`coherence`] | unique-copy-before-modify ownership between CPC and IPC |
//! | [`crossbar`] | CE↔cache-bank routing and arbitration |
//! | [`membus`] | two 64-bit memory buses + interleaved main memory |
//! | [`ccb`] | the Concurrency Control Bus: cstart, self-scheduling, sync |
//! | [`vm`] | segmented demand paging and fault accounting |
//! | [`ip`] | Interactive Processor background traffic and fault service |
//! | [`ce`] | the Computing Element state machine |
//! | [`stream`] | the abstract operation stream a CE executes |
//! | [`cluster`] | the assembled machine |
//! | [`probe`] | the logic-analyzer probe word |
//! | [`trace`] | `fx8-trace`: zero-cost-when-off self-observability |
//! | [`fingerprint`] | stable content fingerprints for the session cache |

pub mod addr;
pub mod audit;
pub mod cache;
pub mod ccb;
pub mod ce;
pub mod cluster;
pub mod coherence;
pub mod config;
pub mod crossbar;
pub mod fingerprint;
pub mod icache;
pub mod ip;
pub mod membus;
pub mod opcode;
pub mod probe;
pub mod stream;
pub mod swar;
pub mod trace;
pub mod vm;

pub use cluster::Cluster;
pub use config::{ConfigError, MachineConfig, MachineConfigBuilder, TraceConfig};
pub use probe::ProbeWord;

/// Simulated time in bus cycles.
pub type Cycle = u64;

/// The lane-mask word: one bit per CE lane in the dense SoA kernel, the
/// crossbar's per-bank requester masks, and the monitor's batch probe
/// reduction. Every width-dependent structure is sized off this word, so
/// the machine model is width-generic up to [`probe::MAX_CES`] = 64 lanes:
/// the measured FX/8 uses 8 of them, the scaling study
/// ([`MachineConfig::scaled`]) sweeps the rest. The SWAR byte-packed
/// accumulators in [`swar`] batch 8 lanes per word; wider clusters chunk
/// lanes into 8-lane groups ([`swar::lane_groups`]), one word each.
pub type LaneWord = u64;

/// Index of a Computing Element within the cluster (0..=7 on the measured
/// FX/8; up to 0..=63 for scaled hypothetical clusters).
pub type CeId = usize;

/// Address-space identifier: one per job, plus [`addr::KERNEL_ASID`] for the OS.
pub type Asid = u16;
