//! The Computing Element.
//!
//! A CE executes an operation stream one bus cycle at a time: compute
//! instructions retire internally, operand references go through the shared
//! cache (stalling on misses), instruction fetches filter through the
//! internal 16 KB icache, and CCB operations (iteration requests,
//! synchronization) interact with the cluster's concurrency hardware.
//! The cluster orchestrates the shared resources; this module holds the
//! per-CE state machine and its bookkeeping.

use crate::addr::LineId;
use crate::icache::ICache;
use crate::opcode::CeBusOp;
use crate::stream::{CodeRegion, Op};
use crate::{CeId, Cycle};
use serde::{Deserialize, Serialize};

/// FIFO operation queue: a flat `Vec` plus a head cursor.
///
/// The stream generators (loop-iteration bodies, serial block code) append
/// straight into the backing vector via [`OpQueue::append_buf`], so a
/// refill is a single template copy with no staging buffer in between, and
/// `pop_front` is an index bump instead of a ring-buffer rotation. The
/// buffer rewinds when it drains, so one iteration's capacity is reused by
/// the next.
#[derive(Debug, Default)]
pub struct OpQueue {
    buf: Vec<Op>,
    head: usize,
}

impl OpQueue {
    /// Next queued op, if any.
    #[inline]
    pub fn pop_front(&mut self) -> Option<Op> {
        if self.head < self.buf.len() {
            let op = self.buf[self.head];
            self.head += 1;
            if self.head == self.buf.len() {
                self.buf.clear();
                self.head = 0;
            }
            Some(op)
        } else {
            None
        }
    }

    /// Whether no ops are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// Queued ops not yet popped.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Drop all queued ops.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Append one op.
    pub fn push_back(&mut self, op: Op) {
        self.buf.push(op);
    }

    /// Append-only access to the backing storage, for stream generators
    /// that fill a `Vec<Op>`: anything they push lands at the queue tail.
    pub fn append_buf(&mut self) -> &mut Vec<Op> {
        &mut self.buf
    }
}

/// What the CE is executing on behalf of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CeRole {
    /// Nothing mounted on this CE (idle with respect to concurrent mode).
    Inactive,
    /// The serial portion of the cluster program.
    ClusterSerial,
    /// A self-scheduled loop iteration.
    Worker,
    /// A detached, exclusively-serial process. Detached processes do not
    /// assert the CCB activity line (thesis footnote 1).
    Detached,
}

/// Fine-grained execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CeState {
    /// Executing operations.
    Ready,
    /// Requesting the next loop iteration from the CCB.
    AwaitIter,
    /// Blocked on the CCB synchronization register.
    AwaitSync {
        /// Register value required to proceed.
        target: u64,
    },
    /// Took the final iteration; waiting for all iterations to complete
    /// before continuing serial execution.
    AwaitJoin,
    /// Waiting for a cache miss to fill.
    Stalled {
        /// Resume cycle.
        until: Cycle,
        /// Opcode shown on the CE bus during the resume handshake cycle.
        resume_op: CeBusOp,
    },
    /// Waiting for page-fault service.
    FaultStalled {
        /// Resume cycle.
        until: Cycle,
    },
}

/// Per-CE counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CeStats {
    /// Instructions retired.
    pub instrs: u64,
    /// Cycles the CE bus was busy.
    pub bus_busy_cycles: u64,
    /// Cycles asserted active on the CCB.
    pub active_cycles: u64,
    /// Loop iterations completed.
    pub iters_completed: u64,
    /// Cycles stalled on cache misses.
    pub miss_stall_cycles: u64,
    /// Cycles stalled on page faults.
    pub fault_stall_cycles: u64,
}

/// A Computing Element.
#[derive(Debug)]
pub struct Ce {
    /// This CE's index in the cluster.
    pub id: CeId,
    /// Internal instruction cache.
    pub icache: ICache,
    /// Current role.
    pub role: CeRole,
    /// Current execution state.
    pub state: CeState,
    /// Queued operations (refilled from the mounted streams).
    pub ops: OpQueue,
    /// Operation currently in progress (e.g. a load awaiting crossbar grant).
    pub cur_op: Option<Op>,
    /// Remaining instructions of the current `Compute` burst.
    pub compute_left: u32,
    /// Code region of the mounted stream, if any.
    pub code: Option<CodeRegion>,
    /// Instruction-fetch cursor: byte offset within the code footprint.
    pub fetch_cursor: u64,
    /// Last instruction line checked against the icache.
    pub last_fetch_line: Option<LineId>,
    /// Instruction line that must be fetched from the shared cache before
    /// execution proceeds.
    pub pending_ifetch: Option<LineId>,
    /// Counters.
    pub stats: CeStats,
}

impl Ce {
    /// Build CE `id` with an icache of the given geometry.
    pub fn new(id: CeId, icache_bytes: u64, icache_line_bytes: u64) -> Self {
        Ce {
            id,
            icache: ICache::new(icache_bytes, icache_line_bytes),
            role: CeRole::Inactive,
            state: CeState::Ready,
            ops: OpQueue::default(),
            cur_op: None,
            compute_left: 0,
            code: None,
            fetch_cursor: 0,
            last_fetch_line: None,
            pending_ifetch: None,
            stats: CeStats::default(),
        }
    }

    /// Mount a new code region (phase change): resets the fetch cursor and
    /// in-flight work, keeps the icache warm (same address space reuse is
    /// real; unrelated jobs should call [`Self::flush_icache`] too).
    pub fn set_code(&mut self, code: CodeRegion) {
        self.code = Some(code);
        self.fetch_cursor = 0;
        self.last_fetch_line = None;
        self.pending_ifetch = None;
        self.ops.clear();
        self.cur_op = None;
        self.compute_left = 0;
    }

    /// Drop all mounted work and go inactive.
    pub fn unmount(&mut self) {
        self.role = CeRole::Inactive;
        self.state = CeState::Ready;
        self.code = None;
        self.ops.clear();
        self.cur_op = None;
        self.compute_left = 0;
        self.pending_ifetch = None;
        self.last_fetch_line = None;
    }

    /// Invalidate the internal icache (context switch to an unrelated job).
    pub fn flush_icache(&mut self) {
        self.icache.flush();
    }

    /// Whether this CE asserts its CCB activity line: it is participating
    /// in the cluster program (serially or concurrently). Detached and
    /// inactive CEs do not.
    pub fn is_ccb_active(&self) -> bool {
        matches!(self.role, CeRole::ClusterSerial | CeRole::Worker)
    }

    /// Whether the CE has queued or in-progress work.
    pub fn has_work(&self) -> bool {
        self.cur_op.is_some() || !self.ops.is_empty() || self.compute_left > 0
    }

    /// Advance the instruction-fetch cursor by one instruction and probe
    /// the icache when crossing into a new fetch line. Returns the line to
    /// fetch from the shared cache on an icache miss.
    pub fn ifetch_step(&mut self) -> Option<LineId> {
        let code = self.code?;
        let line_bytes = self.icache.line_bytes();
        let addr = code.base.wrapping_add(self.fetch_cursor);
        let line = addr.line(line_bytes);
        // The cursor stays below the footprint, so the wrap is a compare
        // in the common case — this runs once per compute cycle per CE and
        // the footprint is not a compile-time constant.
        let next = self.fetch_cursor + code.bytes_per_instr;
        let footprint = code.footprint_bytes.max(1);
        self.fetch_cursor = if next >= footprint {
            next % footprint
        } else {
            next
        };
        if self.last_fetch_line == Some(line) {
            return None;
        }
        self.last_fetch_line = Some(line);
        if self.icache.probe(line) {
            None
        } else {
            Some(line)
        }
    }

    /// Complete an instruction fetch: install the line.
    pub fn ifetch_fill(&mut self, line: LineId) {
        self.icache.fill(line);
        if self.pending_ifetch == Some(line) {
            self.pending_ifetch = None;
        }
    }

    /// How many steps of the current compute burst are guaranteed to be
    /// pure retirement — no icache probe, no shared-cache traffic, no state
    /// change beyond the fetch cursor and the instruction counter — so the
    /// fast-forward engine may take them in one bulk pass.
    ///
    /// Conservative by construction: it only counts steps where
    /// [`Self::ifetch_step`] would early-return on the `last_fetch_line`
    /// check, i.e. consecutive fetches within the line already probed. The
    /// count is capped at the line boundary (the next line crossing must
    /// probe the icache, mutating hit/miss stats), at the footprint wrap
    /// (so the bulk cursor update `(c + k*b) % F` matches the iterated
    /// per-step modulo exactly), and at the remaining burst length. Returns
    /// 0 whenever the next per-cycle step could do anything else.
    pub(crate) fn compute_burst_horizon(&self) -> u64 {
        if self.compute_left == 0 || self.pending_ifetch.is_some() {
            return 0;
        }
        let Some(code) = self.code else {
            // No code region: ifetch_step is a no-op, every step is pure
            // retirement.
            return self.compute_left as u64;
        };
        let line_bytes = self.icache.line_bytes();
        let addr = code.base.wrapping_add(self.fetch_cursor);
        if self.last_fetch_line != Some(addr.line(line_bytes)) {
            // The next step crosses into an unprobed line: it must consult
            // the icache (and may miss out to the shared cache).
            return 0;
        }
        // Steps that stay within the already-probed line and short of the
        // footprint wrap, so the bulk cursor update `(c + k*b) % F` matches
        // the iterated per-step modulo exactly; 0 for degenerate geometry.
        let steps = code.fetch_steps_in_line(self.fetch_cursor, line_bytes);
        (self.compute_left as u64).min(steps)
    }

    /// Bulk-apply `k` compute-burst steps previously authorized by
    /// [`Self::compute_burst_horizon`]: advance the fetch cursor, retire
    /// `k` instructions, and shrink the burst — bit-identical to `k`
    /// iterations of the per-cycle dispatch path.
    pub(crate) fn advance_compute_burst(&mut self, k: u64) {
        debug_assert!(k <= self.compute_left as u64);
        if let Some(code) = self.code {
            let footprint = code.footprint_bytes.max(1);
            self.fetch_cursor = (self.fetch_cursor + k * code.bytes_per_instr) % footprint;
        }
        self.compute_left -= k as u32;
        self.stats.instrs += k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VAddr;

    fn region(footprint: u64) -> CodeRegion {
        CodeRegion {
            base: VAddr::new(1, 0),
            footprint_bytes: footprint,
            bytes_per_instr: 4,
        }
    }

    #[test]
    fn small_loop_body_stops_missing_after_first_pass() {
        let mut ce = Ce::new(0, 1024, 32);
        ce.set_code(region(256)); // 8 icache lines, 64 instructions
        let mut misses = 0;
        for _ in 0..64 {
            if let Some(line) = ce.ifetch_step() {
                misses += 1;
                ce.ifetch_fill(line);
            }
        }
        assert_eq!(misses, 8, "first pass: one miss per line");
        for _ in 0..64 {
            assert!(ce.ifetch_step().is_none(), "second pass must hit");
        }
    }

    #[test]
    fn huge_code_footprint_keeps_missing() {
        let mut ce = Ce::new(0, 256, 32); // 8-line icache
        ce.set_code(region(4096)); // 128 lines > capacity
        let mut misses = 0;
        for _ in 0..2048 {
            if let Some(line) = ce.ifetch_step() {
                misses += 1;
                ce.ifetch_fill(line);
            }
        }
        // Two passes over 128 lines through an 8-line direct-mapped cache:
        // nearly every line crossing misses.
        assert!(misses > 200, "only {misses} misses");
    }

    #[test]
    fn set_code_resets_cursor_but_keeps_icache() {
        let mut ce = Ce::new(0, 1024, 32);
        ce.set_code(region(64));
        while let Some(l) = ce.ifetch_step() {
            ce.ifetch_fill(l);
        }
        ce.set_code(region(64)); // same region again (same job)
                                 // Warm icache: no miss on re-entry.
        assert!(ce.ifetch_step().is_none());
        ce.flush_icache();
        ce.set_code(region(64));
        assert!(ce.ifetch_step().is_some(), "flushed icache must miss");
    }

    #[test]
    fn ccb_activity_follows_role() {
        let mut ce = Ce::new(3, 1024, 32);
        assert!(!ce.is_ccb_active());
        ce.role = CeRole::Worker;
        assert!(ce.is_ccb_active());
        ce.role = CeRole::ClusterSerial;
        assert!(ce.is_ccb_active());
        ce.role = CeRole::Detached;
        assert!(
            !ce.is_ccb_active(),
            "detached processes are not concurrent-active"
        );
    }

    /// Drive a compute burst to completion, either per-step (mirroring the
    /// cluster's dispatch path, with instant ifetch fills) or letting the
    /// burst horizon bulk-advance whenever it authorizes a skip. Returns
    /// the CE and the number of simulated cycles consumed.
    fn drain_burst(mut ce: Ce, bulk: bool) -> (Ce, u64) {
        let mut cycles = 0u64;
        while ce.compute_left > 0 {
            let k = if bulk { ce.compute_burst_horizon() } else { 0 };
            if k > 0 {
                ce.advance_compute_burst(k);
                cycles += k;
            } else if let Some(line) = ce.ifetch_step() {
                ce.ifetch_fill(line); // cluster would stall here; fill instantly
                cycles += 1;
            } else {
                ce.compute_left -= 1;
                ce.stats.instrs += 1;
                cycles += 1;
            }
        }
        (ce, cycles)
    }

    #[test]
    fn compute_burst_bulk_matches_per_step() {
        // Awkward geometry on purpose: 6-byte instructions against 32-byte
        // lines and a footprint that is not a multiple of either, so the
        // wrap cap and the line cap both bite at odd offsets.
        let code = CodeRegion {
            base: VAddr::new(1, 0),
            footprint_bytes: 200,
            bytes_per_instr: 6,
        };
        let build = || {
            let mut ce = Ce::new(0, 1024, 32);
            ce.set_code(code);
            ce.compute_left = 500;
            ce
        };
        let (a, ca) = drain_burst(build(), true);
        let (b, cb) = drain_burst(build(), false);
        assert_eq!(a.fetch_cursor, b.fetch_cursor);
        assert_eq!(a.last_fetch_line, b.last_fetch_line);
        assert_eq!(a.stats, b.stats);
        assert_eq!(ca, cb, "bulk skipping must not change the cycle count");
        assert!(ca > 0);
    }

    #[test]
    fn compute_burst_horizon_edge_cases() {
        let mut ce = Ce::new(0, 1024, 32);
        assert_eq!(ce.compute_burst_horizon(), 0, "no burst pending");
        ce.compute_left = 7;
        assert_eq!(
            ce.compute_burst_horizon(),
            7,
            "no code region: every step is pure retirement"
        );
        ce.set_code(region(256));
        ce.compute_left = 7;
        assert_eq!(
            ce.compute_burst_horizon(),
            0,
            "first fetch must probe the icache"
        );
        if let Some(line) = ce.ifetch_step() {
            ce.ifetch_fill(line);
        }
        ce.compute_left -= 1;
        // Cursor is now at byte 4 of a probed 32-byte line: 7 fetches left
        // in-line but only 6 instructions left in the burst.
        assert_eq!(ce.compute_burst_horizon(), 6);
        ce.pending_ifetch = Some(LineId(99));
        assert_eq!(ce.compute_burst_horizon(), 0, "pending ifetch blocks");
    }

    #[test]
    fn unmount_clears_work() {
        let mut ce = Ce::new(0, 1024, 32);
        ce.set_code(region(64));
        ce.ops.push_back(Op::Compute(5));
        ce.cur_op = Some(Op::Compute(1));
        ce.compute_left = 3;
        ce.unmount();
        assert!(!ce.has_work());
        assert_eq!(ce.role, CeRole::Inactive);
    }
}
