//! The logic-analyzer probe word.
//!
//! The DAS 9100 acquired the state of up to 80 signals per record. The
//! study's probes decoded to: one bus opcode per CE bus (8 × a few bits),
//! the memory-bus opcode, and one concurrent-activity line per CE from the
//! Concurrency Control Bus. A [`ProbeWord`] is exactly one such record.

use crate::opcode::{CeBusOp, MemBusOp};
use crate::{Cycle, LaneWord};
use serde::{Deserialize, Serialize};

/// Maximum cluster size the probe word supports: one lane per bit of a
/// [`LaneWord`]. The measured FX/8 used 8 of these lanes; the scaling
/// study sweeps the full range.
pub const MAX_CES: usize = LaneWord::BITS as usize;

/// One captured record: the probed signal state at a single bus cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeWord {
    /// Bus cycle at which this record was captured.
    pub cycle: Cycle,
    /// Opcode on each CE↔cache bus.
    pub ce_ops: [CeBusOp; MAX_CES],
    /// Opcode on the shared memory bus.
    pub mem_op: MemBusOp,
    /// CCB activity lines: bit `j` set iff CE `j` is active in concurrent
    /// (or cluster-serial) operation. Detached, exclusively-serial processes
    /// do not assert their line — the thesis's footnote 1. One bit per
    /// possible lane ([`LaneWord`] wide), so no lane of a wide cluster is
    /// ever truncated.
    pub active_mask: LaneWord,
}

impl ProbeWord {
    /// An all-idle record.
    pub fn idle(cycle: Cycle) -> Self {
        ProbeWord {
            cycle,
            ce_ops: [CeBusOp::Idle; MAX_CES],
            mem_op: MemBusOp::Idle,
            active_mask: 0,
        }
    }

    /// Number of CEs whose CCB activity line is asserted.
    #[inline]
    pub fn active_count(&self) -> u32 {
        self.active_mask.count_ones()
    }

    /// Whether CE `j`'s activity line is asserted.
    #[inline]
    pub fn is_active(&self, j: usize) -> bool {
        debug_assert!(j < MAX_CES);
        self.active_mask & (1 << j) != 0
    }

    /// Whether the record shows concurrency (two or more CEs active).
    #[inline]
    pub fn is_concurrent(&self) -> bool {
        self.active_count() >= 2
    }

    /// Bitmask of CE lanes whose bus carries a non-idle opcode this cycle.
    /// The fixed-width loop unrolls; reducers then walk only the set bits
    /// instead of testing every lane per record.
    #[inline]
    pub fn busy_ce_mask(&self) -> LaneWord {
        let mut m: LaneWord = 0;
        for (j, op) in self.ce_ops.iter().enumerate() {
            m |= (op.is_busy() as LaneWord) << j;
        }
        m
    }

    /// Structural well-formedness for a cluster of `n_ces` CEs: no activity
    /// lines or CE-bus opcodes above the cluster width. The invariant
    /// auditor applies this to every stepped cycle; tests may use it on
    /// captured buffers.
    pub fn check_wellformed(&self, n_ces: usize) -> Result<(), String> {
        debug_assert!((1..=MAX_CES).contains(&n_ces));
        let width_mask = crate::swar::lane_mask(n_ces);
        if self.active_mask & !width_mask != 0 {
            return Err(format!(
                "active_mask {:#b} asserts lines beyond the {n_ces}-CE cluster",
                self.active_mask
            ));
        }
        for (j, op) in self.ce_ops.iter().enumerate().skip(n_ces) {
            if *op != CeBusOp::Idle {
                return Err(format!(
                    "ce_ops[{j}] = {op:?} beyond the {n_ces}-CE cluster"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_record_has_no_activity() {
        let w = ProbeWord::idle(42);
        assert_eq!(w.cycle, 42);
        assert_eq!(w.active_count(), 0);
        assert!(!w.is_concurrent());
        assert!(w.ce_ops.iter().all(|op| !op.is_busy()));
    }

    #[test]
    fn active_mask_counts_and_tests_bits() {
        let mut w = ProbeWord::idle(0);
        w.active_mask = 0b1000_0001;
        assert_eq!(w.active_count(), 2);
        assert!(w.is_active(0));
        assert!(w.is_active(7));
        assert!(!w.is_active(3));
        assert!(w.is_concurrent());
        w.active_mask = 0b0000_0100;
        assert!(!w.is_concurrent());
    }

    #[test]
    fn busy_ce_mask_marks_non_idle_lanes() {
        let mut w = ProbeWord::idle(0);
        assert_eq!(w.busy_ce_mask(), 0);
        w.ce_ops[0] = CeBusOp::Read;
        w.ce_ops[5] = CeBusOp::MissWait;
        assert_eq!(w.busy_ce_mask(), 0b0010_0001);
    }

    /// Regression: `active_mask` was a `u8`, so lanes 8..64 of a wide
    /// cluster were silently dropped by every monitor-path reduction.
    #[test]
    fn lanes_beyond_eight_are_not_truncated() {
        let mut w = ProbeWord::idle(0);
        w.active_mask = (1 << 8) | (1 << 31) | (1 << 63);
        assert_eq!(w.active_count(), 3);
        assert!(w.is_active(8));
        assert!(w.is_active(31));
        assert!(w.is_active(63));
        assert!(w.is_concurrent());
        w.ce_ops[40] = CeBusOp::Read;
        assert_eq!(w.busy_ce_mask(), 1 << 40);
    }

    #[test]
    fn wellformed_bounds_scale_with_width() {
        let mut w = ProbeWord::idle(0);
        w.active_mask = 1 << 31;
        assert!(w.check_wellformed(32).is_ok());
        assert!(w.check_wellformed(31).is_err());
        w.active_mask = u64::MAX;
        assert!(w.check_wellformed(64).is_ok());
        w.ce_ops[63] = CeBusOp::Read;
        assert!(w.check_wellformed(64).is_ok());
        assert!(w.check_wellformed(63).is_err());
    }
}
