//! The abstract operation stream a CE executes.
//!
//! The simulator does not interpret FORTRAN; the workload layer compiles its
//! kernels down to streams of micro operations — compute bursts, operand
//! loads/stores with *real addresses*, and CCB synchronization — and the CE
//! state machine executes them cycle by cycle. Two stream shapes exist,
//! matching the FX/8's execution model (§ 3.2 of the thesis):
//!
//! * [`SerialCode`] — an open-ended instruction stream for serial execution
//!   (phase boundaries are handled at macro level, outside captured windows);
//! * [`LoopBody`] — a concurrent DO-loop: the Concurrency Control Bus grants
//!   iteration indices to CEs in a self-scheduled fashion and the body
//!   generator materializes the ops for each granted iteration.

use crate::addr::VAddr;
use crate::CeId;

/// One micro operation in a CE's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute `n` instructions that touch only registers (includes
    /// register-to-register vector operations, which is why concurrent
    /// vector code can be bus-quiet). Costs `n` cycles and advances the
    /// instruction-fetch cursor by `n` instructions.
    Compute(u32),
    /// Operand load from an address.
    Load(VAddr),
    /// Operand store to an address.
    Store(VAddr),
    /// Wait on the CCB synchronization register until it reaches `target`
    /// (dependence enforcement between loop iterations). Waiting occupies
    /// the CCB only — the CE↔cache bus stays idle, which is why bus
    /// activity saturates at high concurrency levels (§ 5.3).
    AwaitSync(u64),
    /// Advance the CCB synchronization register to at least `value`.
    PostSync(u64),
}

impl Op {
    /// Rewrite the address of a memory operation in place. Trace-template
    /// replay (the workload layer's decoded-iteration cache) funnels every
    /// address patch through here so the panic on a non-memory slot guards
    /// all patch sites at once.
    #[inline]
    pub fn patch_addr(&mut self, a: VAddr) {
        match self {
            Op::Load(x) | Op::Store(x) => *x = a,
            other => unreachable!("address patch hit non-memory op {other:?}"),
        }
    }
}

/// Where a stream's code lives, for instruction-cache modeling.
///
/// The CE walks an instruction-fetch cursor cyclically through
/// `[base, base + footprint_bytes)`; fetch lines that miss the 16 KB
/// internal icache go to the shared cache. Loop bodies that fit the icache
/// therefore stop generating instruction traffic after the first iteration,
/// exactly the effect § 5.1 credits for low miss rates under concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeRegion {
    /// First byte of the code.
    pub base: VAddr,
    /// Bytes of straight-line code the cursor cycles through.
    pub footprint_bytes: u64,
    /// Bytes advanced per instruction (FX/8 CE instructions average ~4 B).
    pub bytes_per_instr: u64,
}

impl CodeRegion {
    /// A region for tests: 256 instructions at the base of an ASID's space.
    pub fn test_region(asid: crate::Asid) -> Self {
        CodeRegion {
            base: VAddr::new(asid, 0),
            footprint_bytes: 1024,
            bytes_per_instr: 4,
        }
    }

    /// How many successive instruction fetches, starting at byte offset
    /// `cursor` into the footprint, both stay inside the current
    /// `line_bytes`-sized fetch line and stop short of the footprint wrap.
    /// This is the geometric core of the CE's compute-burst horizon: each
    /// counted step advances the cursor by `bytes_per_instr` without
    /// crossing a line boundary (which would probe the icache) or taking
    /// the wrap modulo (which would invalidate a bulk cursor update).
    /// Returns 0 for a degenerate `bytes_per_instr` of 0 (the cursor does
    /// not advance; no step can be proven pure); otherwise at least 1,
    /// since `cursor < footprint_bytes` keeps one step of both caps.
    pub fn fetch_steps_in_line(&self, cursor: u64, line_bytes: u64) -> u64 {
        let b = self.bytes_per_instr;
        if b == 0 {
            return 0;
        }
        // line_bytes is a power of two, so the in-line byte offset is the
        // low bits of the address.
        let offset = self.base.wrapping_add(cursor).0 % line_bytes;
        let in_line = (line_bytes - 1 - offset) / b + 1;
        let to_wrap = (self.footprint_bytes.max(1) - cursor).div_ceil(b);
        in_line.min(to_wrap)
    }
}

/// An open-ended serial instruction stream.
pub trait SerialCode: Send {
    /// The code region the stream executes from.
    fn code(&self) -> CodeRegion;
    /// Append the next block of operations for CE `ce` to `out`.
    /// Must append at least one op; the cluster calls this whenever the
    /// CE's op queue runs dry.
    fn gen_block(&mut self, ce: CeId, out: &mut Vec<Op>);
}

/// A concurrent DO-loop body.
pub trait LoopBody: Send {
    /// The code region of the loop body.
    fn code(&self) -> CodeRegion;
    /// Materialize the operations of iteration `iter` as executed on CE
    /// `ce`, appending to `out`. Iterations may differ (conditional
    /// branching, boundary rows) — that per-iteration variance is what
    /// stretches concurrency transitions.
    fn gen_iteration(&mut self, iter: u64, ce: CeId, out: &mut Vec<Op>);
}

/// A trivial serial stream for tests: `compute` cycles then one load,
/// marching through an array with a fixed stride.
pub struct StridedSerial {
    /// Code region reported to the CE.
    pub region: CodeRegion,
    /// Base of the data array.
    pub data: VAddr,
    /// Stride between successive loads, bytes.
    pub stride: u64,
    /// Footprint in bytes before wrapping.
    pub footprint: u64,
    /// Compute instructions between loads.
    pub compute: u32,
    cursor: u64,
}

impl StridedSerial {
    /// Create a strided serial stream.
    pub fn new(region: CodeRegion, data: VAddr, stride: u64, footprint: u64, compute: u32) -> Self {
        assert!(footprint > 0 && stride > 0);
        StridedSerial {
            region,
            data,
            stride,
            footprint,
            compute,
            cursor: 0,
        }
    }
}

impl SerialCode for StridedSerial {
    fn code(&self) -> CodeRegion {
        self.region
    }

    fn gen_block(&mut self, _ce: CeId, out: &mut Vec<Op>) {
        if self.compute > 0 {
            out.push(Op::Compute(self.compute));
        }
        out.push(Op::Load(self.data.wrapping_add(self.cursor)));
        self.cursor = (self.cursor + self.stride) % self.footprint;
    }
}

/// A trivial loop body for tests: per iteration, `compute` instructions,
/// one load and one store at iteration-indexed addresses.
pub struct StridedLoop {
    /// Code region reported to the CE.
    pub region: CodeRegion,
    /// Base of the input array.
    pub src: VAddr,
    /// Base of the output array.
    pub dst: VAddr,
    /// Bytes per element.
    pub elem: u64,
    /// Compute instructions per iteration.
    pub compute: u32,
}

impl LoopBody for StridedLoop {
    fn code(&self) -> CodeRegion {
        self.region
    }

    fn gen_iteration(&mut self, iter: u64, _ce: CeId, out: &mut Vec<Op>) {
        if self.compute > 0 {
            out.push(Op::Compute(self.compute));
        }
        out.push(Op::Load(self.src.wrapping_add(iter * self.elem)));
        out.push(Op::Store(self.dst.wrapping_add(iter * self.elem)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_serial_wraps_at_footprint() {
        let region = CodeRegion::test_region(1);
        let mut s = StridedSerial::new(region, VAddr::new(1, 0x10000), 8, 32, 2);
        let mut out = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..6 {
            out.clear();
            s.gen_block(0, &mut out);
            for op in &out {
                if let Op::Load(a) = op {
                    addrs.push(a.offset() - 0x10000);
                }
            }
        }
        assert_eq!(addrs, vec![0, 8, 16, 24, 0, 8]);
    }

    #[test]
    fn strided_loop_addresses_follow_iteration_index() {
        let region = CodeRegion::test_region(2);
        let mut b = StridedLoop {
            region,
            src: VAddr::new(2, 0),
            dst: VAddr::new(2, 0x100000),
            elem: 8,
            compute: 1,
        };
        let mut out = Vec::new();
        b.gen_iteration(5, 3, &mut out);
        assert_eq!(
            out,
            vec![
                Op::Compute(1),
                Op::Load(VAddr::new(2, 40)),
                Op::Store(VAddr::new(2, 0x100000 + 40)),
            ]
        );
    }

    #[test]
    fn fetch_steps_in_line_counts_to_the_line_boundary() {
        let r = CodeRegion {
            base: VAddr::new(1, 0),
            footprint_bytes: 1024,
            bytes_per_instr: 4,
        };
        // At the line start: a full 32-byte line of 4-byte instructions.
        assert_eq!(r.fetch_steps_in_line(0, 32), 8);
        // Mid-line: only the remaining fetches before the crossing.
        assert_eq!(r.fetch_steps_in_line(28, 32), 1);
        assert_eq!(r.fetch_steps_in_line(20, 32), 3);
        // The count agrees with stepping the cursor one fetch at a time.
        for cursor in (0..64).step_by(4) {
            let n = r.fetch_steps_in_line(cursor, 32);
            let line = |c: u64| r.base.wrapping_add(c).0 / 32;
            for i in 0..n {
                assert_eq!(
                    line(cursor + i * r.bytes_per_instr),
                    line(cursor),
                    "step {i} of {n} from {cursor} crossed a line"
                );
            }
            assert_ne!(
                line(cursor + n * r.bytes_per_instr),
                line(cursor),
                "step {n} from {cursor} should cross"
            );
        }
    }

    #[test]
    fn fetch_steps_in_line_caps_at_the_footprint_wrap() {
        // Footprint not a multiple of the instruction size: the last
        // in-footprint fetch sits at byte 18, and the wrap must cap the
        // count even though the line has room.
        let r = CodeRegion {
            base: VAddr::new(1, 0),
            footprint_bytes: 20,
            bytes_per_instr: 6,
        };
        assert_eq!(r.fetch_steps_in_line(18, 32), 1, "next step wraps");
        assert_eq!(r.fetch_steps_in_line(0, 32), 4, "4 fetches then wrap");
        // Degenerate geometry: a zero instruction size never advances.
        let z = CodeRegion {
            bytes_per_instr: 0,
            ..r
        };
        assert_eq!(z.fetch_steps_in_line(0, 32), 0);
    }

    #[test]
    fn patch_addr_rewrites_loads_and_stores() {
        let mut op = Op::Load(VAddr::new(1, 0));
        op.patch_addr(VAddr::new(1, 64));
        assert_eq!(op, Op::Load(VAddr::new(1, 64)));
        let mut st = Op::Store(VAddr::new(1, 0));
        st.patch_addr(VAddr::new(1, 128));
        assert_eq!(st, Op::Store(VAddr::new(1, 128)));
    }

    #[test]
    fn gen_block_always_produces_ops() {
        let region = CodeRegion::test_region(1);
        let mut s = StridedSerial::new(region, VAddr::new(1, 0), 8, 64, 0);
        let mut out = Vec::new();
        s.gen_block(0, &mut out);
        assert!(!out.is_empty());
    }
}
