//! Virtual addresses.
//!
//! The FX/8 organizes each virtual address space as 1024 segments of 1024
//! pages of 4 KB (Appendix C). Every job gets its own address space,
//! distinguished here by an ASID packed into the high bits, so a single
//! `u64` identifies a byte uniquely across the whole machine. The shared
//! cache and the paging layer both key off these values.

use crate::Asid;

/// ASID reserved for the Concentrix kernel / IP-side OS traffic.
pub const KERNEL_ASID: Asid = 0;

/// Bytes per page (4 KB).
pub const PAGE_BYTES: u64 = 4096;
/// Pages per segment.
pub const PAGES_PER_SEGMENT: u64 = 1024;
/// Segments per address space.
pub const SEGMENTS: u64 = 1024;
/// Bits of within-space offset (1024 * 1024 * 4096 = 2^32).
pub const SPACE_BITS: u32 = 32;

/// A machine-wide virtual address: `[asid:16][space offset:32]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VAddr(pub u64);

impl VAddr {
    /// Build an address from an ASID and a byte offset within that space.
    #[inline]
    pub fn new(asid: Asid, offset: u64) -> Self {
        debug_assert!(offset < (1u64 << SPACE_BITS), "offset exceeds space");
        VAddr(((asid as u64) << SPACE_BITS) | offset)
    }

    /// The owning address space.
    #[inline]
    pub fn asid(self) -> Asid {
        (self.0 >> SPACE_BITS) as Asid
    }

    /// Byte offset within the owning space.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & ((1u64 << SPACE_BITS) - 1)
    }

    /// Machine-wide page number (ASID folded in).
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 / PAGE_BYTES)
    }

    /// Segment index within the owning space.
    #[inline]
    pub fn segment(self) -> u64 {
        self.offset() / (PAGE_BYTES * PAGES_PER_SEGMENT)
    }

    /// Page index within the owning segment.
    #[inline]
    pub fn page_in_segment(self) -> u64 {
        (self.offset() / PAGE_BYTES) % PAGES_PER_SEGMENT
    }

    /// Cache-line number for a given line size (power of two).
    /// The divisor is a power of two by contract, so this compiles to a
    /// shift even when `line_bytes` is not a compile-time constant — the
    /// stepper calls this several times per simulated cycle.
    #[inline]
    pub fn line(self, line_bytes: u64) -> LineId {
        debug_assert!(line_bytes.is_power_of_two());
        LineId(self.0 >> line_bytes.trailing_zeros())
    }

    /// Add a byte displacement, staying in the same space.
    #[inline]
    pub fn wrapping_add(self, delta: u64) -> Self {
        let off = (self.offset().wrapping_add(delta)) & ((1u64 << SPACE_BITS) - 1);
        VAddr::new(self.asid(), off)
    }
}

/// A machine-wide page identifier (`VAddr / PAGE_BYTES`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// The ASID that owns this page.
    #[inline]
    pub fn asid(self) -> Asid {
        ((self.0 * PAGE_BYTES) >> SPACE_BITS) as Asid
    }

    /// First byte of the page.
    #[inline]
    pub fn base(self) -> VAddr {
        VAddr(self.0 * PAGE_BYTES)
    }
}

/// A machine-wide cache-line identifier (`VAddr / line_bytes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineId(pub u64);

impl LineId {
    /// First byte of the line.
    #[inline]
    pub fn base(self, line_bytes: u64) -> VAddr {
        VAddr(self.0 * line_bytes)
    }

    /// The page containing this line.
    #[inline]
    pub fn page(self, line_bytes: u64) -> PageId {
        PageId(self.0 * line_bytes / PAGE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asid_and_offset_round_trip() {
        let a = VAddr::new(7, 0x1234_5678);
        assert_eq!(a.asid(), 7);
        assert_eq!(a.offset(), 0x1234_5678);
    }

    #[test]
    fn page_arithmetic() {
        let a = VAddr::new(3, 2 * PAGE_BYTES + 17);
        assert_eq!(a.page().base().offset(), 2 * PAGE_BYTES);
        assert_eq!(a.page().asid(), 3);
    }

    #[test]
    fn segment_decomposition_matches_fx8_geometry() {
        // Page 1500 of a space sits in segment 1, page 476 of that segment.
        let a = VAddr::new(1, 1500 * PAGE_BYTES);
        assert_eq!(a.segment(), 1);
        assert_eq!(a.page_in_segment(), 1500 - 1024);
        // Last byte of the space sits in the last segment and page.
        let z = VAddr::new(1, (1u64 << SPACE_BITS) - 1);
        assert_eq!(z.segment(), SEGMENTS - 1);
        assert_eq!(z.page_in_segment(), PAGES_PER_SEGMENT - 1);
    }

    #[test]
    fn lines_pack_within_pages() {
        let line_bytes = 32;
        let a = VAddr::new(2, 5 * PAGE_BYTES + 3 * line_bytes + 5);
        let l = a.line(line_bytes);
        assert_eq!(l.base(line_bytes).offset(), 5 * PAGE_BYTES + 3 * line_bytes);
        assert_eq!(l.page(line_bytes), a.page());
    }

    #[test]
    fn distinct_asids_never_alias() {
        let a = VAddr::new(1, 0x1000);
        let b = VAddr::new(2, 0x1000);
        assert_ne!(a, b);
        assert_ne!(a.page(), b.page());
        assert_ne!(a.line(32), b.line(32));
    }

    #[test]
    fn wrapping_add_stays_in_space() {
        let a = VAddr::new(9, (1u64 << SPACE_BITS) - 8);
        let b = a.wrapping_add(16);
        assert_eq!(b.asid(), 9);
        assert_eq!(b.offset(), 8);
    }
}
