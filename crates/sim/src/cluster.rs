//! The assembled Computational Cluster.
//!
//! Wires the CEs, the shared cache system, the crossbar, the memory buses,
//! the Concurrency Control Bus, the paging layer and the IP background load
//! into one machine. [`Cluster::step`] advances a single bus cycle and
//! returns the [`ProbeWord`] a logic analyzer probing the machine would
//! capture in that cycle — the entire measurement methodology sits on top
//! of this function.

use crate::addr::KERNEL_ASID;
use crate::ccb::{Ccb, IterGrant};
use crate::ce::{Ce, CeRole, CeState};
use crate::coherence::{BusTxn, CacheSystem};
use crate::config::MachineConfig;
use crate::crossbar::Crossbar;
use crate::ip::IpSubsystem;
use crate::membus::MemBusSystem;
use crate::opcode::{CeBusOp, MemBusOp};
use crate::probe::{ProbeWord, MAX_CES};
use crate::stream::{LoopBody, Op, SerialCode};
use crate::vm::{FaultMode, Vm};
use crate::{Asid, CeId, Cycle, LaneWord};

/// What is mounted on the cluster.
enum Load {
    /// Nothing scheduled on the cluster.
    Idle,
    /// A serial program section.
    Serial {
        code: Box<dyn SerialCode>,
        asid: Asid,
    },
    /// A concurrent loop; `after` is the serial continuation the
    /// last-iteration CE executes once the loop drains.
    Loop {
        body: Box<dyn LoopBody>,
        after: Box<dyn SerialCode>,
        asid: Asid,
    },
    /// The loop drained inside a window; its serial continuation runs.
    Drained {
        code: Box<dyn SerialCode>,
        asid: Asid,
    },
}

/// Coarse answer to "what is the cluster doing?" for the macro layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// Nothing mounted.
    Idle,
    /// Serial section executing.
    Serial,
    /// Concurrent loop executing.
    Loop,
    /// Loop drained; serial continuation executing.
    Drained,
}

/// A memory request a CE wants to issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    Read,
    Write,
    IFetch,
}

impl ReqKind {
    fn bus_op(self) -> CeBusOp {
        match self {
            ReqKind::Read => CeBusOp::Read,
            ReqKind::Write => CeBusOp::Write,
            ReqKind::IFetch => CeBusOp::IFetch,
        }
    }

    fn is_write(self) -> bool {
        matches!(self, ReqKind::Write)
    }
}

/// Action to finish when a miss stall expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResumeAction {
    /// Install the fetched instruction line.
    FillIFetch(crate::addr::LineId),
    /// Complete the current operand op.
    FinishOp,
}

/// Everything a quiescent window's bulk application needs, computed by
/// [`Cluster::skippable`] in its single pass over the CEs so
/// [`Cluster::advance_bulk`] never rescans them. `k == 0` means the next
/// cycle must be stepped normally (the other fields are then meaningless).
#[derive(Debug, Clone, Copy)]
struct SkipPlan {
    /// Window length in cycles (0 = not skippable).
    k: u64,
    /// Bit per CE frozen retrying a crossbar request against a busy bank.
    retry_mask: u64,
    /// Bit per CE retiring a compute burst inside its probed icache line.
    burst_mask: u64,
    /// Bit per CCB-active CE (accrues `active_cycles`).
    active_mask: u64,
    /// CEs blocked in `AwaitSync` (accrue CCB sync-wait cycles).
    sync_waiters: u64,
    /// CEs blocked in `AwaitIter` (accrue CCB grant-wait cycles).
    iter_requesters: u64,
}

impl SkipPlan {
    fn empty() -> Self {
        SkipPlan {
            k: 0,
            retry_mask: 0,
            burst_mask: 0,
            active_mask: 0,
            sync_waiters: 0,
            iter_requesters: 0,
        }
    }
}

/// Widest cache-bank geometry the dense stepper's fixed-size per-bank
/// requester masks cover; wider (unvalidated, test-only) geometries fall
/// back to the scalar stepper.
const DENSE_MAX_BANKS: usize = 16;

/// How the next stretch of cycles should be advanced, as decided by
/// [`Cluster::step_verdict`]: a provably-quiescent window applied in
/// closed form, a dense loop window run through the SoA batch kernel, or
/// a single scalar cycle.
enum StepVerdict {
    /// Quiescent window: apply [`Cluster::advance_bulk`].
    Bulk(SkipPlan),
    /// Busy concurrent-loop window: run [`Cluster::step_dense`].
    Dense,
    /// Anything else: one [`Cluster::step_cycle`].
    Step,
}

/// The machine.
pub struct Cluster {
    cfg: MachineConfig,
    now: Cycle,
    pub(crate) ces: Vec<Ce>,
    resume_actions: Vec<Option<ResumeAction>>,
    /// Per-CE bit: the current op's VM check has been performed.
    vm_checked: LaneWord,
    /// Per-CE bit: the current op's instruction fetch has been performed.
    op_fetched: LaneWord,
    pub(crate) caches: CacheSystem,
    pub(crate) crossbar: Crossbar,
    pub(crate) membus: MemBusSystem,
    pub(crate) ccb: Ccb,
    vm: Vm,
    ip: IpSubsystem,
    load: Load,
    detached: Vec<Option<(Box<dyn SerialCode>, Asid)>>,
    fault_seq: u64,
    /// Earliest future cycle an armed analyzer needs to observe; the
    /// fast-forward engine never skips up to or past it, so a monitor can
    /// thread its probe/timeout deadline through [`Cluster::set_next_probe_at`]
    /// and still see every cycle it cares about stepped individually.
    next_probe_at: Option<Cycle>,
    /// Cycles advanced by the fast-forward engine (a subset of
    /// `cycles_total`). Intentionally absent from [`Cluster::state_digest`]:
    /// the skip ratio is the one piece of state that differs by design
    /// between the fast-forward and per-cycle trajectories.
    cycles_skipped: u64,
    /// Cycles advanced by the dense SoA batch stepper (a subset of
    /// `cycles_total`, disjoint from `cycles_skipped`). Like the skip
    /// counter, this is bookkeeping about *how* the machine advanced and
    /// is excluded from [`Cluster::state_digest`].
    cycles_dense: u64,
    /// Total cycles advanced, stepped or skipped.
    cycles_total: u64,
    /// `fx8-trace` observability. `None` unless `cfg.trace` arms it, so a
    /// disabled tracer costs one predictable branch at the non-hot hook
    /// sites and nothing inside the dense lane loop. Pure observer: its
    /// state never feeds back into stepping and is excluded from
    /// [`Cluster::state_digest`], like the engine residency counters.
    tracer: Option<Box<crate::trace::Tracer>>,
    /// Per-cycle invariant checker (compiled in under the `audit` feature).
    #[cfg(feature = "audit")]
    auditor: crate::audit::Auditor,
}

impl Cluster {
    /// Build a machine from `cfg`, deterministic under `seed`.
    pub fn new(cfg: MachineConfig, seed: u64) -> Self {
        cfg.validate().expect("valid machine configuration");
        let n = cfg.n_ces;
        let ces = (0..n)
            .map(|i| Ce::new(i, cfg.icache_bytes, cfg.icache_line_bytes))
            .collect();
        let tracer = if cfg.trace.enabled() {
            Some(Box::new(crate::trace::Tracer::new(&cfg.trace)))
        } else {
            None
        };
        Cluster {
            caches: CacheSystem::new(cfg.cache, 32 * 1024),
            crossbar: Crossbar::new(n, cfg.cache.banks, cfg.crossbar_arbitration),
            membus: MemBusSystem::new(
                cfg.mem_buses,
                cfg.mem_interleave,
                cfg.mem_latency_cycles,
                cfg.line_transfer_cycles,
            ),
            ccb: Ccb::new(n, cfg.ccb_arbitration, cfg.ccb_grant_cycles),
            vm: Vm::new(cfg.phys_frames(), n),
            ip: IpSubsystem::new(seed),
            load: Load::Idle,
            detached: (0..n).map(|_| None).collect(),
            resume_actions: vec![None; n],
            vm_checked: 0,
            op_fetched: 0,
            ces,
            now: 0,
            cfg,
            fault_seq: 0,
            next_probe_at: None,
            cycles_skipped: 0,
            cycles_dense: 0,
            cycles_total: 0,
            tracer,
            #[cfg(feature = "audit")]
            auditor: crate::audit::Auditor::default(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Jump the machine clock forward (macro-level time passing between
    /// captured windows). Panics if moving backwards.
    pub fn advance_clock(&mut self, to: Cycle) {
        assert!(to >= self.now, "clock cannot move backwards");
        self.now = to;
        #[cfg(feature = "audit")]
        self.auditor.note_external_change();
    }

    /// Snapshot of the invariant auditor's findings for this machine.
    /// With the `audit` feature off this is always the empty report.
    pub fn audit_report(&self) -> crate::audit::AuditReport {
        #[cfg(feature = "audit")]
        return self.auditor.report().clone();
        #[cfg(not(feature = "audit"))]
        crate::audit::AuditReport::default()
    }

    /// File a violation detected by an external cross-check (the monitor
    /// comparing reduced probe counts against ground-truth counters).
    #[cfg(feature = "audit")]
    pub fn audit_note_violation(&mut self, component: &str, expected: String, actual: String) {
        self.auditor
            .external_violation(self.now, component, expected, actual);
    }

    /// What the cluster is currently doing.
    pub fn load_kind(&self) -> LoadKind {
        match self.load {
            Load::Idle => LoadKind::Idle,
            Load::Serial { .. } => LoadKind::Serial,
            Load::Loop { .. } => LoadKind::Loop,
            Load::Drained { .. } => LoadKind::Drained,
        }
    }

    /// Iterations not yet handed out by the CCB.
    pub fn loop_remaining(&self) -> u64 {
        self.ccb.remaining()
    }

    /// Paging layer (fault counters, residency).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Mutable paging layer (macro fault accounting).
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }

    /// Shared cache system statistics.
    pub fn cache_stats(&self) -> crate::coherence::SystemStats {
        self.caches.stats()
    }

    /// CCB dispatch statistics.
    pub fn ccb_stats(&self) -> &crate::ccb::CcbStats {
        self.ccb.stats()
    }

    /// Crossbar contention statistics.
    pub fn crossbar_stats(&self) -> &crate::crossbar::CrossbarStats {
        self.crossbar.stats()
    }

    /// Memory bus statistics.
    pub fn membus_stats(&self) -> &crate::membus::MemBusStats {
        self.membus.stats()
    }

    /// Per-CE counters.
    pub fn ce_stats(&self, ce: CeId) -> crate::ce::CeStats {
        self.ces[ce].stats
    }

    /// Scale the IP background load (session-level interactive intensity).
    pub fn set_ip_intensity(&mut self, intensity: f64) {
        self.ip.set_intensity(intensity);
    }

    #[inline]
    fn reset_op_flags(&mut self, ce: CeId) {
        let keep = !(1 << ce);
        self.vm_checked &= keep;
        self.op_fetched &= keep;
    }

    /// Unmount everything from the cluster (detached jobs stay).
    pub fn mount_idle(&mut self) {
        #[cfg(feature = "audit")]
        self.auditor.note_external_change();
        self.load = Load::Idle;
        self.ccb.clear();
        for i in 0..self.ces.len() {
            if self.detached[i].is_none() {
                self.ces[i].unmount();
            }
            self.resume_actions[i] = None;
            self.reset_op_flags(i);
        }
        let now = self.now;
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.push(crate::trace::TraceEvent::Mount {
                at: now,
                kind: crate::trace::MountKind::Idle,
            });
        }
    }

    /// CEs not occupied by detached processes.
    fn free_ces(&self) -> Vec<CeId> {
        (0..self.ces.len())
            .filter(|&i| self.detached[i].is_none())
            .collect()
    }

    /// Mount a serial cluster section on `ce` (or the first free CE).
    pub fn mount_serial(&mut self, code: Box<dyn SerialCode>, asid: Asid, ce: Option<CeId>) {
        self.mount_idle();
        let free = self.free_ces();
        assert!(!free.is_empty(), "no free CE for serial work");
        let leader = ce.filter(|c| free.contains(c)).unwrap_or(free[0]);
        self.ces[leader].set_code(code.code());
        self.ces[leader].role = CeRole::ClusterSerial;
        self.ces[leader].state = CeState::Ready;
        self.load = Load::Serial { code, asid };
        let now = self.now;
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.push(crate::trace::TraceEvent::Mount {
                at: now,
                kind: crate::trace::MountKind::Serial,
            });
        }
    }

    /// Mount a concurrent loop: iterations `first..total` remain to run
    /// (macro progress already consumed `0..first`), with `after` as the
    /// serial continuation for the last-iteration CE.
    pub fn mount_loop(
        &mut self,
        body: Box<dyn LoopBody>,
        first: u64,
        total: u64,
        after: Box<dyn SerialCode>,
        asid: Asid,
    ) {
        self.mount_idle();
        let free = self.free_ces();
        assert!(!free.is_empty(), "no free CE for loop work");
        self.ccb.start_loop(first, total);
        let region = body.code();
        for &i in &free {
            self.ces[i].set_code(region);
            self.ces[i].role = CeRole::Worker;
            self.ces[i].state = CeState::AwaitIter;
        }
        self.load = Load::Loop { body, after, asid };
        let now = self.now;
        if let Some(tr) = self.tracer.as_deref_mut() {
            for &i in &free {
                tr.iter_wait_since[i] = now;
            }
            tr.push(crate::trace::TraceEvent::Mount {
                at: now,
                kind: crate::trace::MountKind::Loop,
            });
            tr.push(crate::trace::TraceEvent::LoopStart {
                at: now,
                lanes: free.len() as u32,
                total: total.saturating_sub(first),
            });
        }
    }

    /// Mount a detached, exclusively-serial process on CE `ce`. It will
    /// execute whenever the cluster has not claimed that CE and never
    /// asserts the CCB activity line.
    pub fn mount_detached(&mut self, ce: CeId, code: Box<dyn SerialCode>, asid: Asid) {
        #[cfg(feature = "audit")]
        self.auditor.note_external_change();
        self.ces[ce].unmount();
        self.ces[ce].set_code(code.code());
        self.ces[ce].role = CeRole::Detached;
        self.ces[ce].state = CeState::Ready;
        self.detached[ce] = Some((code, asid));
        self.resume_actions[ce] = None;
        self.reset_op_flags(ce);
        let now = self.now;
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.push(crate::trace::TraceEvent::Mount {
                at: now,
                kind: crate::trace::MountKind::Detached,
            });
        }
    }

    /// Remove the detached process from CE `ce`.
    pub fn clear_detached(&mut self, ce: CeId) {
        #[cfg(feature = "audit")]
        self.auditor.note_external_change();
        self.detached[ce] = None;
        if self.ces[ce].role == CeRole::Detached {
            self.ces[ce].unmount();
        }
    }

    /// Run `n` cycles, discarding the probe words. Takes the quiet fast
    /// path: the machine advances bit-identically to [`Cluster::step`],
    /// but the memory-bus probe decode is skipped since no analyzer is
    /// armed to read it. Each iteration picks the cheapest legal stepper:
    /// quiescent stretches are bulk-skipped, busy loop windows run through
    /// the dense SoA kernel (`Cluster::step_dense`), and everything else
    /// falls back to the scalar per-cycle stepper.
    pub fn run(&mut self, n: u64) {
        let end = self.now + n;
        while self.now < end {
            match self.step_verdict(end - self.now) {
                StepVerdict::Bulk(plan) => self.advance_bulk(plan),
                StepVerdict::Dense => {
                    if self.step_dense(end - self.now) == 0 {
                        self.step_cycle(false);
                    }
                }
                StepVerdict::Step => {
                    self.step_cycle(false);
                }
            }
        }
    }

    /// Decide how the next stretch of cycles should be advanced. Bulk
    /// skipping is preferred (it is pure closed-form accounting), then the
    /// dense kernel, then the scalar stepper. All three produce
    /// bit-identical machine state.
    fn step_verdict(&self, limit: u64) -> StepVerdict {
        let plan = self.skippable(limit);
        if plan.k > 0 {
            return StepVerdict::Bulk(plan);
        }
        if self.dense_eligible() {
            StepVerdict::Dense
        } else {
            StepVerdict::Step
        }
    }

    /// Run `n` cycles, collecting the probe words.
    pub fn capture(&mut self, n: usize) -> Vec<ProbeWord> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Promote the drained loop's serial continuation onto CE `ce`.
    fn promote_to_drained(&mut self, ce: CeId) {
        let load = std::mem::replace(&mut self.load, Load::Idle);
        if let Load::Loop { after, asid, .. } = load {
            self.ces[ce].set_code(after.code());
            self.ces[ce].role = CeRole::ClusterSerial;
            self.ces[ce].state = CeState::Ready;
            self.reset_op_flags(ce);
            self.load = Load::Drained { code: after, asid };
            let now = self.now;
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.push(crate::trace::TraceEvent::CeDrained {
                    at: now,
                    ce: ce as u32,
                });
            }
        } else {
            // Not a loop (should not happen): restore.
            self.load = load;
        }
    }

    /// Refill CE `ce`'s op queue from its mounted stream. Returns false if
    /// there is nothing to execute (worker finished its iteration, or no
    /// stream mounted).
    fn refill_ops(&mut self, ce: CeId) -> bool {
        const REFILL_ATTEMPTS: usize = 4;
        let id = ce;
        // Only ever called with a drained queue, so the generators append
        // straight into the queue's backing storage — no staging copy.
        debug_assert!(self.ces[id].ops.is_empty());
        match self.ces[id].role {
            CeRole::Worker => false, // iteration boundary handled by caller
            CeRole::ClusterSerial => {
                for _ in 0..REFILL_ATTEMPTS {
                    match &mut self.load {
                        Load::Serial { code, .. } | Load::Drained { code, .. } => {
                            code.gen_block(id, self.ces[id].ops.append_buf());
                        }
                        _ => return false,
                    }
                    if !self.ces[id].ops.is_empty() {
                        return true;
                    }
                }
                false
            }
            CeRole::Detached => {
                for _ in 0..REFILL_ATTEMPTS {
                    if let Some((code, _)) = &mut self.detached[id] {
                        code.gen_block(id, self.ces[id].ops.append_buf());
                    } else {
                        return false;
                    }
                    if !self.ces[id].ops.is_empty() {
                        return true;
                    }
                }
                false
            }
            CeRole::Inactive => false,
        }
    }

    /// The address space of the cluster program currently mounted, or the
    /// kernel ASID when idle. Detached per-CE ASIDs are tracked separately.
    pub fn current_asid(&self) -> Asid {
        match &self.load {
            Load::Serial { asid, .. } | Load::Loop { asid, .. } | Load::Drained { asid, .. } => {
                *asid
            }
            Load::Idle => KERNEL_ASID,
        }
    }

    /// Advance one bus cycle; returns the record the probes capture.
    pub fn step(&mut self) -> ProbeWord {
        self.step_cycle(true)
    }

    /// Tell the fast-forward engine the earliest future cycle an armed
    /// analyzer must observe. [`Cluster::skip_quiescent`] will stop short
    /// of it so the monitor steps that cycle itself; pass `None` to lift
    /// the cap.
    pub fn set_next_probe_at(&mut self, at: Option<Cycle>) {
        self.next_probe_at = at;
    }

    /// `(cycles_skipped, cycles_total)` advanced so far: the fast-forward
    /// skip ratio. This is bookkeeping about *how* the machine was
    /// advanced, not machine state — it is excluded from
    /// [`Cluster::state_digest`] on purpose.
    pub fn skip_counters(&self) -> (u64, u64) {
        (self.cycles_skipped, self.cycles_total)
    }

    /// `(cycles_dense, cycles_total)` advanced so far: how much of the
    /// trajectory ran through the dense SoA batch kernel. Like
    /// [`Cluster::skip_counters`], this is advancement bookkeeping, not
    /// machine state, and is excluded from [`Cluster::state_digest`].
    pub fn dense_counters(&self) -> (u64, u64) {
        (self.cycles_dense, self.cycles_total)
    }

    /// Cycles retired per stepping engine. Scalar cycles are the remainder
    /// once the dense and fast-forward engines account for theirs, so the
    /// split always partitions `cycles_total`.
    pub fn engine_cycles(&self) -> crate::trace::EngineCycles {
        crate::trace::EngineCycles {
            scalar: self.cycles_total - self.cycles_dense - self.cycles_skipped,
            dense: self.cycles_dense,
            skipped: self.cycles_skipped,
            total: self.cycles_total,
        }
    }

    /// Sample the `fx8-trace` metrics registry: one consistent snapshot of
    /// every subsystem's monotonic counters. Always available — the
    /// subsystem counters exist regardless of [`crate::config::TraceConfig`] — but
    /// the dispatch-to-grant histogram only fills when `trace.metrics` was
    /// armed at construction.
    pub fn metrics(&self) -> crate::trace::MetricsSnapshot {
        let cache = self.caches.stats();
        let faults = self.vm.total_faults();
        let ccb = self.ccb.stats();
        let xbar = self.crossbar.stats();
        let bus = self.membus.stats();
        crate::trace::MetricsSnapshot {
            cycles: self.engine_cycles(),
            instrs: self.ces.iter().map(|ce| ce.stats.instrs).sum(),
            iters_completed: self.ces.iter().map(|ce| ce.stats.iters_completed).sum(),
            crossbar_grants: xbar.grants,
            crossbar_retries: xbar.denials,
            crossbar_grants_by_bank: xbar.grants_by_bank.clone(),
            membus_busy_cycles: bus.busy_cycles,
            membus_ops_by_kind: bus.by_op.to_vec(),
            cache_ce_accesses: cache.ce_accesses,
            cache_ce_misses: cache.ce_misses,
            ccb_grants_by_ce: ccb.grants_by_ce.clone(),
            ccb_grant_wait_cycles: ccb.grant_wait_cycles,
            ccb_sync_wait_cycles: ccb.sync_wait_cycles,
            ccb_grant_latency: self
                .tracer
                .as_deref()
                .map(|t| t.grant_latency)
                .unwrap_or_default(),
            vm_user_faults: faults.user,
            vm_system_faults: faults.system,
            events_recorded: self.tracer.as_deref().map_or(0, |t| t.recorded()),
            events_dropped: self.tracer.as_deref().map_or(0, |t| t.dropped()),
        }
    }

    /// Snapshot of the retained event trace, oldest first. Empty unless
    /// `trace.events` was armed at construction.
    pub fn trace_events(&self) -> Vec<crate::trace::TraceEvent> {
        self.tracer
            .as_deref()
            .map(|t| t.events())
            .unwrap_or_default()
    }

    /// Events evicted by the bounded trace ring so far.
    pub fn trace_dropped_events(&self) -> u64 {
        self.tracer.as_deref().map_or(0, |t| t.dropped())
    }

    /// Record a probe-trigger event on behalf of an armed analyzer (the
    /// DAS monitor calls this when its trigger condition fires). A no-op
    /// unless the event trace is armed.
    pub fn note_probe_trigger(&mut self, trigger: crate::trace::TriggerKind) {
        let now = self.now;
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.push(crate::trace::TraceEvent::ProbeTrigger { at: now, trigger });
        }
    }

    /// Number of CEs currently concurrency-active: the population count the
    /// next probe word's `active_mask` would report. Armed monitors use
    /// this to decide whether their trigger is dormant (and the machine can
    /// fast-forward) without stepping a cycle.
    pub fn active_count(&self) -> u32 {
        self.ces.iter().filter(|ce| ce.is_ccb_active()).count() as u32
    }

    /// If CE `id` would issue a crossbar request this cycle whose *denial*
    /// has no architectural effect beyond the denial counters and the CE's
    /// bus-busy cycle, return the requested line. That covers a pending
    /// instruction fetch and a Load/Store whose ifetch and paging check
    /// already happened (`op_fetched && vm_checked`): re-dispatching such
    /// an op recomputes the same line from the same operand every cycle
    /// until granted. Anything else (first dispatch, paging touch, burst)
    /// either mutates state on dispatch or makes no request at all.
    fn pure_retry_line(&self, id: CeId) -> Option<crate::addr::LineId> {
        let ce = &self.ces[id];
        if ce.state != CeState::Ready {
            return None;
        }
        if let Some(line) = ce.pending_ifetch {
            return Some(line);
        }
        if ce.compute_left > 0 {
            return None; // burst path: no crossbar request while in-line
        }
        match ce.cur_op {
            Some(Op::Load(a)) | Some(Op::Store(a))
                if self.op_fetched & self.vm_checked & (1 << id) != 0 =>
            {
                Some(a.line(self.cfg.cache.line_bytes))
            }
            _ => None,
        }
    }

    /// Fast-forward through quiescent cycles: if the machine is provably
    /// inert for `k` cycles (`1 <= k <= limit`), advance it `k` cycles in
    /// one bulk pass — bit-identical to `k` calls of [`Cluster::step`] with
    /// the probe words discarded — and return `k`. Returns 0 when the very
    /// next cycle could change observable state (or fast-forward is
    /// disabled), in which case the caller must step normally.
    pub fn skip_quiescent(&mut self, limit: u64) -> u64 {
        let plan = self.skippable(limit);
        if plan.k > 0 {
            self.advance_bulk(plan);
        }
        plan.k
    }

    /// Conservative event horizon: how many cycles (at most `limit`) can be
    /// bulk-advanced because no component can change architecturally
    /// observable state before then. Every term is a *lower bound proof*:
    ///
    /// - a stalled CE cannot act before its `until` stamp;
    /// - an `AwaitSync`/`AwaitJoin` CE cannot unblock unless some Ready CE
    ///   posts/completes — and any CE that could is itself a 0 term;
    /// - `AwaitIter` CEs are frozen exactly while the CCB grant channel is
    ///   busy ([`Ccb::grant_horizon`]);
    /// - a Ready CE mid-compute-burst is inert for as long as its fetches
    ///   stay inside the already-probed icache line
    ///   ([`Ce::compute_burst_horizon`]);
    /// - a Ready CE retrying a request against a busy cache bank cannot be
    ///   granted before [`Crossbar::bank_free_at`], and its denials mutate
    ///   nothing but the denial counters ([`Cluster::pure_retry_line`]);
    /// - any other Ready CE forces 0.
    ///
    /// Stamp-based components contribute no terms: the membus and crossbar
    /// only mutate when a request reaches them (which forces 0 above), and
    /// the caches are purely reactive. The IP subsystem and the membus
    /// start-ring do act every cycle, but deterministically and without
    /// reading CE state — [`Cluster::advance_bulk`] replays them per cycle.
    ///
    /// Returns 0 unconditionally when `fast_forward` is off and under the
    /// `audit` feature, which keeps the per-cycle auditor an independent
    /// oracle rather than a check of the skip logic by itself.
    /// Returns the horizon as described above, plus everything
    /// [`Cluster::advance_bulk`] needs to apply the window without
    /// rescanning the CEs (windows are often a handful of cycles, so a
    /// second scan is a real share of the skip cost).
    fn skippable(&self, limit: u64) -> SkipPlan {
        if cfg!(feature = "audit") || !self.cfg.fast_forward || limit == 0 {
            return SkipPlan::empty();
        }
        let now = self.now;
        let mut end = now.saturating_add(limit);
        if let Some(probe) = self.next_probe_at {
            if probe <= now {
                return SkipPlan::empty();
            }
            end = end.min(probe);
        }
        let mut plan = SkipPlan::empty();
        let mut await_iter = false;
        for (id, ce) in self.ces.iter().enumerate() {
            match ce.state {
                CeState::Stalled { until, .. } | CeState::FaultStalled { until } => {
                    if until <= now {
                        return SkipPlan::empty(); // resume handshake runs this cycle
                    }
                    end = end.min(until);
                }
                CeState::AwaitSync { target } => {
                    if self.ccb.sync_reached(target) {
                        return SkipPlan::empty(); // unblocks this cycle
                    }
                    // Blocked: only a Ready CE's PostSync can move the sync
                    // register, and that CE forces 0 below.
                    plan.sync_waiters += 1;
                }
                CeState::AwaitIter => await_iter = true,
                CeState::AwaitJoin => {
                    if self.ccb.all_complete() {
                        return SkipPlan::empty(); // serial successor promotes this cycle
                    }
                    // Completions come from Ready workers, which force 0.
                }
                CeState::Ready => {
                    if let Some(line) = self.pure_retry_line(id) {
                        // A crossbar request whose denial changes nothing
                        // but the denial counters: the requester is frozen
                        // until its target bank frees up, at which point
                        // the grant cycle must be stepped normally.
                        let free = self.crossbar.bank_free_at(self.caches.bank_of(line));
                        if free <= now {
                            return SkipPlan::empty(); // the bank can grant this cycle
                        }
                        end = end.min(free);
                        plan.retry_mask |= 1 << id;
                    } else {
                        // pending_ifetch is always a pure retry, so from
                        // here on the CE makes no crossbar request.
                        if ce.compute_left > 0 {
                            let burst = ce.compute_burst_horizon();
                            if burst == 0 {
                                return SkipPlan::empty(); // next fetch probes the icache
                            }
                            end = end.min(now + burst);
                            plan.burst_mask |= 1 << id;
                        } else if ce.cur_op.is_some() || !ce.ops.is_empty() {
                            return SkipPlan::empty(); // dispatches an op this cycle
                        } else if ce.role != CeRole::Inactive {
                            // Worker: completes its iteration this cycle.
                            // Serial/detached: refills from its stream
                            // (which mutates generator state) this cycle.
                            return SkipPlan::empty();
                        }
                    }
                }
            }
            if ce.is_ccb_active() {
                plan.active_mask |= 1 << id;
            }
        }
        if await_iter {
            match self.ccb.grant_horizon(now) {
                None => return SkipPlan::empty(), // a grant or Exhausted lands this cycle
                Some(free) => end = end.min(free),
            }
            plan.iter_requesters = self
                .ces
                .iter()
                .filter(|ce| ce.state == CeState::AwaitIter)
                .count() as u64;
        }
        plan.k = end.saturating_sub(now);
        plan
    }

    /// Bulk-advance `k` cycles previously authorized by
    /// [`Cluster::skippable`]. Applies exactly the state changes `k` calls
    /// to [`Cluster::step_cycle`] would have made on a quiescent machine:
    ///
    /// - the IP subsystem steps every cycle (its RNG consumes one draw per
    ///   cycle regardless of intensity, so it must be replayed, not
    ///   jumped);
    /// - the membus start-ring gc runs once at the window end: gc is a
    ///   monotone threshold-pop and `schedule`'s insertion search never
    ///   lands on stale entries, so deferring it is invisible (see the
    ///   `deferred_gc_matches_per_cycle_gc` membus test);
    /// - blocked `AwaitSync` CEs and `AwaitIter` requesters accrue their
    ///   per-cycle wait statistics in closed form;
    /// - Ready CEs mid-burst retire `k` instructions in one pass;
    /// - Ready CEs retrying against a busy bank (flagged in the plan's
    ///   `retry_mask`, as computed by [`Cluster::skippable`] for this same
    ///   window) accrue `k` crossbar denials and `k` bus-busy cycles, the
    ///   only effects of a denial;
    /// - CCB-active CEs accrue `k` active cycles (roles cannot change
    ///   inside a quiescent window).
    ///
    /// Everything else is provably untouched per the horizon argument.
    fn advance_bulk(&mut self, plan: SkipPlan) {
        let k = plan.k;
        debug_assert!(k > 0);
        self.ip
            .replay(self.now, k, &mut self.caches, &mut self.membus);
        self.membus.gc(self.now + k - 1);
        if plan.sync_waiters > 0 {
            self.ccb.note_sync_waits(k * plan.sync_waiters);
        }
        if plan.iter_requesters > 0 {
            self.ccb.note_grant_waits(k * plan.iter_requesters);
        }
        let mut retry = plan.retry_mask;
        while retry != 0 {
            let id = retry.trailing_zeros() as usize;
            retry &= retry - 1;
            // The denied request occupies the CE bus every cycle.
            self.ces[id].stats.bus_busy_cycles += k;
            self.crossbar.note_denied_retries(id, k);
        }
        let mut burst = plan.burst_mask;
        while burst != 0 {
            let id = burst.trailing_zeros() as usize;
            burst &= burst - 1;
            self.ces[id].advance_compute_burst(k);
        }
        let mut active = plan.active_mask;
        while active != 0 {
            let id = active.trailing_zeros() as usize;
            active &= active - 1;
            self.ces[id].stats.active_cycles += k;
        }
        let from = self.now;
        self.now += k;
        self.cycles_total += k;
        // Only genuine bulk advancement counts toward the skip ratio: a
        // single-cycle "window" did the same work a scalar step would have
        // (the horizon scan just proved it inert first), so reporting it
        // as skipped would overstate how much the fast-forward engine
        // actually saved.
        if k >= 2 {
            self.cycles_skipped += k;
            if let Some(tr) = self.tracer.as_deref_mut() {
                tr.push(crate::trace::TraceEvent::FastForward { from, cycles: k });
            }
        }
    }

    /// Whether the machine is in the dense stepper's domain: a mounted
    /// concurrent loop whose CEs are all either workers or fully inert
    /// unmounted lanes. In that regime every per-cycle effect is one the
    /// SoA kernel replicates inline — the CCB-resolution cycles it cannot
    /// (grants, exhaustion, promotion) make it bail back to the scalar
    /// stepper. Forced off under the `audit` feature so the per-cycle
    /// auditor keeps observing every cycle, and by the `dense_stepping`
    /// config knob.
    fn dense_eligible(&self) -> bool {
        if cfg!(feature = "audit") || !self.cfg.dense_stepping {
            return false;
        }
        if !matches!(self.load, Load::Loop { .. }) {
            return false;
        }
        // The kernel's bank-conflict masks are fixed-width.
        if self.cfg.cache.banks > DENSE_MAX_BANKS {
            return false;
        }
        self.ces.iter().all(|ce| match ce.role {
            CeRole::Worker => true,
            // An unmounted lane is eligible only when provably inert: it
            // then contributes nothing to any cycle, so the kernel can
            // ignore it entirely.
            CeRole::Inactive => {
                ce.state == CeState::Ready
                    && ce.cur_op.is_none()
                    && ce.ops.is_empty()
                    && ce.compute_left == 0
                    && ce.pending_ifetch.is_none()
            }
            CeRole::ClusterSerial | CeRole::Detached => false,
        })
    }

    /// The dense SoA batch stepper: run up to `limit` cycles of a busy
    /// concurrent-loop window in one fused pass, bit-identically to the
    /// same number of [`Cluster::step_cycle`] calls (probe words
    /// discarded). Returns how many cycles were advanced; 0 means the very
    /// next cycle is a CCB-resolution cycle the scalar stepper must run.
    ///
    /// Where the scalar stepper re-derives every CE's situation from its
    /// state enum each cycle, this kernel packs the lane structure once at
    /// window entry — ready/await-iter/await-sync/stalled/fault lanes as
    /// [`LaneWord`] bitmasks, wake stamps and sync targets in fixed
    /// per-lane arrays — and then advances the masks as whole-word boolean
    /// algebra, spending per-lane scalar work only on the cycles where a
    /// lane *acts* (dispatches an op, wakes from a stall, crosses an
    /// icache line, parks or posts a sync):
    ///
    /// * a lane whose crossbar request was denied is not revisited: the
    ///   request (line, kind, bank) is invariant until granted, so the
    ///   lane sits in a persistent `pending` word and a persistent
    ///   bank×word requester table that [`Crossbar::arbitrate_masks_swar`]
    ///   resolves by scanning only occupied banks;
    /// * a lane retiring a compute burst inside its probed icache line is
    ///   not revisited: its pure-retirement segment is bounded by
    ///   [`Ce::compute_burst_horizon`] and applied in closed form at the
    ///   segment end ([`Ce::advance_compute_burst`]), exactly as the
    ///   fast-forward engine does across quiescent windows;
    /// * sync waiters are revisited only on cycles adjacent to a
    ///   `PostSync` (the sync register cannot otherwise move), with the
    ///   same-cycle lower-to-higher lane visibility of the scalar loop
    ///   preserved by re-arming the visit word mid-pass;
    /// * per-cycle classification — who issues, who is denied, who waits —
    ///   is mask expressions (`pending & !won`, popcounts), not branches.
    ///
    /// Per-lane counters that move by +1 per masked lane per cycle
    /// (bus-busy occupancy, crossbar denials) accumulate via SWAR masked
    /// adds ([`crate::swar::packed_add`]) into packed byte-lane words,
    /// flushed into the real `u64` counters at window exit or before any
    /// byte lane could saturate. The membus start-ring gc is deferred to
    /// the window end (legal per the deferred-gc membus proof), and the
    /// denial counters flush through [`Crossbar::note_denied_retries`] —
    /// the same closed-form movement the fast-forward engine uses.
    ///
    /// The window ends at `limit`, at the armed-probe deadline, or at the
    /// first cycle where the CCB would resolve an iteration request (grant
    /// or exhaustion): those cycles run iteration generation, daisy-chain
    /// stalls, unmounting and serial promotion, which stay scalar.
    fn step_dense(&mut self, mut limit: u64) -> u64 {
        debug_assert!(self.dense_eligible());
        let mut now = self.now;
        if let Some(probe) = self.next_probe_at {
            // Never run into a cycle an armed analyzer must observe.
            if probe <= now {
                return 0;
            }
            limit = limit.min(probe - now);
        }
        let n = self.ces.len();
        debug_assert!(n <= MAX_CES);

        // --- Pack the lane structure.
        let mut ready_mask: LaneWord = 0;
        let mut iter_mask: LaneWord = 0;
        let mut sync_mask: LaneWord = 0;
        let mut stall_mask: LaneWord = 0;
        let mut fault_mask: LaneWord = 0;
        let mut active_lanes: LaneWord = 0;
        let mut until_arr = [0u64; MAX_CES];
        let mut stall_resume = [CeBusOp::Idle; MAX_CES];
        let mut sync_target_arr = [0u64; MAX_CES];
        let mut next_wake = u64::MAX;
        for (id, ce) in self.ces.iter().enumerate() {
            if ce.role != CeRole::Worker {
                continue; // inert unmounted lane (checked by eligibility)
            }
            let bit: LaneWord = 1 << id;
            active_lanes |= bit;
            match ce.state {
                CeState::Ready => ready_mask |= bit,
                CeState::AwaitIter => iter_mask |= bit,
                CeState::AwaitSync { target } => {
                    sync_mask |= bit;
                    sync_target_arr[id] = target;
                }
                // A worker only parks in AwaitJoin on a CCB-resolution
                // cycle, which the scalar stepper owns.
                CeState::AwaitJoin => return 0,
                CeState::Stalled { until, resume_op } => {
                    stall_mask |= bit;
                    until_arr[id] = until;
                    stall_resume[id] = resume_op;
                    next_wake = next_wake.min(until);
                }
                CeState::FaultStalled { until } => {
                    fault_mask |= bit;
                    until_arr[id] = until;
                    next_wake = next_wake.min(until);
                }
            }
        }

        // --- Persistent request state. A lane that has materialized a
        // crossbar request keeps it — line, kind, and bank are invariant
        // across denials — so denied lanes are never revisited; they live
        // in `pending_mask` and in the bank×word requester table that
        // `arbitrate_masks_swar` scans via the `occupied` bank bitmask.
        let mut pending_mask: LaneWord = 0;
        let mut bank_req: [LaneWord; DENSE_MAX_BANKS] = [0; DENSE_MAX_BANKS];
        let mut occupied = 0u32;
        let mut req_line = [crate::addr::LineId(0); MAX_CES];
        let mut req_kind = [ReqKind::Read; MAX_CES];
        let mut req_bank = [0usize; MAX_CES];

        // --- Pure compute-burst segments. A lane retiring inside its
        // probed icache line is inert (one retirement per cycle, no shared
        // state): it parks in `burst_mask` with its segment end in
        // `until_arr` and the retirements are applied in closed form when
        // the segment ends or the window exits.
        let mut burst_mask: LaneWord = 0;
        let mut burst_from = [0u64; MAX_CES];

        // --- Per-window accumulators, flushed once at exit. Bus-busy
        // occupancy and crossbar denials move by +1 per masked lane per
        // cycle, so they accumulate as SWAR packed byte lanes; the rest
        // see at most a handful of scalar adds per cycle.
        let mut instrs_acc = [0u64; MAX_CES];
        let mut busbusy_acc = [0u64; MAX_CES];
        let mut deny_acc = [0u64; MAX_CES];
        // One packed word per 8-lane group: the measured 8-CE machine pays
        // for exactly one word; a 64-CE cluster carries eight.
        let pk_groups = crate::swar::lane_groups(n);
        let mut busbusy_pk = [0u64; crate::swar::lane_groups(MAX_CES)];
        let mut deny_pk = [0u64; crate::swar::lane_groups(MAX_CES)];
        let mut pk_budget = crate::swar::PACKED_MAX;
        let mut sync_wait_acc = 0u64;
        let mut grant_wait_acc = 0u64;
        // Sync waiters re-check the register only when it can have moved:
        // at window entry and on cycles adjacent to a PostSync.
        let mut sync_dirty = sync_mask != 0;
        let line_bytes = self.cfg.cache.line_bytes;
        let hit_cycles = self.cfg.cache_hit_cycles;
        let mut done = 0u64;

        while done < limit {
            // A pending iteration request resolves (grant or exhaustion)
            // the moment the grant channel is idle: that cycle runs the
            // scalar stepper. While the channel is busy, requesters only
            // accrue wait cycles — exactly what the scalar arbitration
            // would have recorded.
            if iter_mask != 0 && self.ccb.grant_horizon(now).is_none() {
                break;
            }

            // Interactive processors: one RNG draw per cycle, replayed in
            // lockstep with the scalar stepper.
            self.ip.step(now, &mut self.caches, &mut self.membus);

            if iter_mask != 0 {
                grant_wait_acc += iter_mask.count_ones() as u64;
            }

            // Which stalled/fault lanes wake this cycle; burst segments
            // ending now materialize their retirements and rejoin the
            // per-lane pass as ordinary Ready lanes.
            let mut due: LaneWord = 0;
            if now >= next_wake {
                next_wake = u64::MAX;
                let mut m = stall_mask | fault_mask | burst_mask;
                while m != 0 {
                    let id = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if until_arr[id] <= now {
                        let bit: LaneWord = 1 << id;
                        if burst_mask & bit != 0 {
                            self.ces[id].advance_compute_burst(now - burst_from[id]);
                            burst_mask &= !bit;
                        } else {
                            due |= bit;
                        }
                    } else {
                        next_wake = next_wake.min(until_arr[id]);
                    }
                }
            }

            // --- Lane pass over the lanes that can *act* this cycle,
            // ascending id (same order as the scalar per-CE loop: VM touch
            // stamps and same-cycle PostSync → AwaitSync visibility depend
            // on it). Denied requesters, mid-segment bursts and (on clean
            // cycles) parked sync waiters are excluded: their per-cycle
            // effects are pure accrual, applied as word-wide mask
            // arithmetic below. `impure` records whether any visited lane
            // did more than pure waiting; a cycle that stays pure with no
            // grant means the machine has gone quiescent, and the run
            // loop's horizon scan can bulk-advance it far more cheaply
            // than this kernel can step it.
            let mut impure = false;
            let sync_check: LaneWord = if sync_dirty { sync_mask } else { 0 };
            sync_dirty = false;
            let mut sync_handled: LaneWord = 0;
            let mut visit = (ready_mask & !pending_mask & !burst_mask) | due | sync_check;
            while visit != 0 {
                let id = visit.trailing_zeros() as usize;
                visit &= visit - 1;
                let bit: LaneWord = 1 << id;

                if due & bit != 0 {
                    impure = true;
                    if stall_mask & bit != 0 {
                        // Completion handshake cycle.
                        if stall_resume[id].is_busy() {
                            busbusy_acc[id] += 1;
                        }
                        match self.resume_actions[id].take() {
                            Some(ResumeAction::FillIFetch(line)) => {
                                self.ces[id].ifetch_fill(line);
                            }
                            Some(ResumeAction::FinishOp) => {
                                self.ces[id].cur_op = None;
                                instrs_acc[id] += 1;
                                self.reset_op_flags(id);
                            }
                            None => {}
                        }
                        stall_mask &= !bit;
                    } else {
                        fault_mask &= !bit;
                    }
                    self.ces[id].state = CeState::Ready;
                    ready_mask |= bit;
                    continue;
                }

                if sync_mask & bit != 0 {
                    sync_handled |= bit;
                    if self.ccb.sync_reached(sync_target_arr[id]) {
                        impure = true;
                        self.ces[id].state = CeState::Ready;
                        sync_mask &= !bit;
                        ready_mask |= bit;
                    } else {
                        sync_wait_acc += 1;
                    }
                    continue;
                }

                // Ready lane. Pending instruction fetch first (window
                // entry, or re-entry after a stall fill).
                if let Some(line) = self.ces[id].pending_ifetch {
                    let b = self.caches.bank_of(line);
                    pending_mask |= bit;
                    req_line[id] = line;
                    req_kind[id] = ReqKind::IFetch;
                    req_bank[id] = b;
                    bank_req[b] |= bit;
                    occupied |= 1 << b;
                    continue;
                }

                // Continue a compute burst: one instruction per cycle.
                // Reached only at segment boundaries (window entry, line
                // crossing, post-fill) — pure in-line retirement parks the
                // lane in `burst_mask` below.
                if self.ces[id].compute_left > 0 {
                    if let Some(line) = self.ces[id].ifetch_step() {
                        impure = true;
                        self.ces[id].pending_ifetch = Some(line);
                        let b = self.caches.bank_of(line);
                        pending_mask |= bit;
                        req_line[id] = line;
                        req_kind[id] = ReqKind::IFetch;
                        req_bank[id] = b;
                        bank_req[b] |= bit;
                        occupied |= 1 << b;
                    } else {
                        self.ces[id].compute_left -= 1;
                        instrs_acc[id] += 1;
                        let h = self.ces[id].compute_burst_horizon();
                        if h > 0 {
                            burst_mask |= bit;
                            burst_from[id] = now + 1;
                            until_arr[id] = now + 1 + h;
                            next_wake = next_wake.min(until_arr[id]);
                        }
                    }
                    continue;
                }

                // Need a current op.
                if self.ces[id].cur_op.is_none() {
                    impure = true;
                    if let Some(op) = self.ces[id].ops.pop_front() {
                        self.ces[id].cur_op = Some(op);
                        self.reset_op_flags(id);
                    } else {
                        // Worker iteration boundary: request the next one.
                        // (Inactive lanes never enter the masks.)
                        self.ccb.complete_iter();
                        self.ces[id].stats.iters_completed += 1;
                        self.ces[id].state = CeState::AwaitIter;
                        if let Some(tr) = self.tracer.as_deref_mut() {
                            tr.iter_wait_since[id] = now;
                        }
                        ready_mask &= !bit;
                        iter_mask |= bit;
                        continue;
                    }
                }

                let Some(op) = self.ces[id].cur_op else {
                    continue;
                };
                match op {
                    Op::Compute(c) => {
                        impure = true;
                        if let Some(line) = self.ces[id].ifetch_step() {
                            self.ces[id].pending_ifetch = Some(line);
                            let b = self.caches.bank_of(line);
                            pending_mask |= bit;
                            req_line[id] = line;
                            req_kind[id] = ReqKind::IFetch;
                            req_bank[id] = b;
                            bank_req[b] |= bit;
                            occupied |= 1 << b;
                            continue;
                        }
                        instrs_acc[id] += 1;
                        self.ces[id].compute_left = c.saturating_sub(1);
                        self.ces[id].cur_op = None;
                        let h = self.ces[id].compute_burst_horizon();
                        if h > 0 {
                            burst_mask |= bit;
                            burst_from[id] = now + 1;
                            until_arr[id] = now + 1 + h;
                            next_wake = next_wake.min(until_arr[id]);
                        }
                    }
                    Op::Load(a) | Op::Store(a) => {
                        let kind = if matches!(op, Op::Store(_)) {
                            ReqKind::Write
                        } else {
                            ReqKind::Read
                        };
                        if self.op_fetched & bit == 0 {
                            impure = true;
                            self.op_fetched |= bit;
                            if let Some(line) = self.ces[id].ifetch_step() {
                                self.ces[id].pending_ifetch = Some(line);
                                let b = self.caches.bank_of(line);
                                pending_mask |= bit;
                                req_line[id] = line;
                                req_kind[id] = ReqKind::IFetch;
                                req_bank[id] = b;
                                bank_req[b] |= bit;
                                occupied |= 1 << b;
                                continue;
                            }
                        }
                        if self.vm_checked & bit == 0 {
                            impure = true;
                            self.vm_checked |= bit;
                            let mode = if a.asid() == KERNEL_ASID {
                                FaultMode::System
                            } else {
                                FaultMode::User
                            };
                            if !self.vm.touch(id, a.page(), mode) {
                                self.fault_seq += 1;
                                if self.fault_seq.is_multiple_of(4) {
                                    self.vm.charge_faults(id, 0, 1);
                                }
                                let until = now + self.cfg.fault_stall_cycles;
                                self.ces[id].state = CeState::FaultStalled { until };
                                self.ces[id].stats.fault_stall_cycles +=
                                    self.cfg.fault_stall_cycles;
                                ready_mask &= !bit;
                                fault_mask |= bit;
                                until_arr[id] = until;
                                next_wake = next_wake.min(until);
                                continue;
                            }
                        }
                        let line = a.line(line_bytes);
                        let b = self.caches.bank_of(line);
                        pending_mask |= bit;
                        req_line[id] = line;
                        req_kind[id] = kind;
                        req_bank[id] = b;
                        bank_req[b] |= bit;
                        occupied |= 1 << b;
                    }
                    Op::AwaitSync(t) => {
                        impure = true;
                        self.ces[id].cur_op = None;
                        if self.ccb.sync_reached(t) {
                            // Proceeds next cycle; the check costs this one.
                        } else {
                            self.ces[id].state = CeState::AwaitSync { target: t };
                            ready_mask &= !bit;
                            sync_mask |= bit;
                            sync_target_arr[id] = t;
                            // No wait accrues on the parking cycle.
                            sync_handled |= bit;
                        }
                    }
                    Op::PostSync(v) => {
                        impure = true;
                        self.ccb.post_sync(v);
                        instrs_acc[id] += 1;
                        self.ces[id].cur_op = None;
                        // Scalar same-cycle visibility: parked lanes with a
                        // *higher* id see the new value this cycle (they
                        // come later in the per-CE order); lower ids were
                        // already passed and re-check next cycle.
                        visit |= sync_mask & !((bit << 1) - 1);
                        sync_dirty = true;
                    }
                }
            }

            // Parked sync waiters not individually visited this cycle all
            // stayed blocked (the register cannot have moved for them):
            // accrue their wait in one popcount.
            sync_wait_acc += (sync_mask & !sync_handled).count_ones() as u64;

            // --- Crossbar arbitration over the persistent bank table and
            // cache access for the winners, mask-native.
            let mut won: LaneWord = 0;
            if pending_mask != 0 {
                won = self
                    .crossbar
                    .arbitrate_masks_swar(now, &bank_req, occupied, hit_cycles);
                // Every requester occupies its CE bus this cycle, granted
                // or not; the denied set is exactly `pending & !won`. Both
                // accrue as SWAR masked adds, flushed before any packed
                // byte lane could saturate.
                if pk_budget == 0 {
                    for id in 0..n {
                        let (g, l) = (
                            id / crate::swar::PACKED_LANES,
                            id % crate::swar::PACKED_LANES,
                        );
                        busbusy_acc[id] += crate::swar::packed_lane(busbusy_pk[g], l);
                        deny_acc[id] += crate::swar::packed_lane(deny_pk[g], l);
                    }
                    busbusy_pk = [0; crate::swar::lane_groups(MAX_CES)];
                    deny_pk = [0; crate::swar::lane_groups(MAX_CES)];
                    pk_budget = crate::swar::PACKED_MAX;
                }
                pk_budget -= 1;
                let denied_mask = pending_mask & !won;
                for g in 0..pk_groups {
                    busbusy_pk[g] = crate::swar::packed_add(
                        busbusy_pk[g],
                        crate::swar::group_mask(pending_mask, g),
                        1,
                    );
                    deny_pk[g] = crate::swar::packed_add(
                        deny_pk[g],
                        crate::swar::group_mask(denied_mask, g),
                        1,
                    );
                }

                let mut m = won;
                while m != 0 {
                    let id = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let bit: LaneWord = 1 << id;
                    // The grant consumes the request: retire it from the
                    // persistent table.
                    pending_mask &= !bit;
                    let b = req_bank[id];
                    bank_req[b] &= !bit;
                    if bank_req[b] == 0 {
                        occupied &= !(1u32 << b);
                    }
                    let line = req_line[id];
                    let kind = req_kind[id];
                    let outcome = self.caches.ce_access(line, kind.is_write());
                    let mut fetch_complete: Option<Cycle> = None;
                    for txn in &outcome.bus {
                        let op = match txn {
                            BusTxn::Fetch => MemBusOp::Fetch,
                            BusTxn::WriteBack => MemBusOp::WriteBack,
                            BusTxn::Coherence => MemBusOp::Coherence,
                            BusTxn::IpFetch => MemBusOp::IpTraffic,
                        };
                        let ticket = self.membus.schedule(now, op, line);
                        if *txn == BusTxn::Fetch {
                            fetch_complete = Some(ticket.complete);
                        }
                    }
                    if outcome.hit {
                        match kind {
                            ReqKind::IFetch => self.ces[id].ifetch_fill(line),
                            ReqKind::Read | ReqKind::Write => {
                                self.ces[id].cur_op = None;
                                instrs_acc[id] += 1;
                                self.reset_op_flags(id);
                            }
                        }
                    } else {
                        let until = fetch_complete.unwrap_or(now + self.cfg.mem_latency_cycles);
                        self.ces[id].stats.miss_stall_cycles += until.saturating_sub(now);
                        self.ces[id].state = CeState::Stalled {
                            until,
                            resume_op: CeBusOp::MissWait,
                        };
                        self.resume_actions[id] = Some(match kind {
                            ReqKind::IFetch => ResumeAction::FillIFetch(line),
                            ReqKind::Read | ReqKind::Write => ResumeAction::FinishOp,
                        });
                        ready_mask &= !bit;
                        stall_mask |= bit;
                        until_arr[id] = until;
                        stall_resume[id] = CeBusOp::MissWait;
                        next_wake = next_wake.min(until);
                    }
                }
            }

            now += 1;
            done += 1;

            // Quiescent cycle: nothing beyond pure waits, in-segment burst
            // retirement, or all-denied retry requests happened (a grant
            // mutates the caches, so `won != 0` keeps the kernel going).
            // Hand back to the run loop so the closed-form fast-forward
            // engine can take the stretch from here.
            if won == 0 && !impure {
                break;
            }
        }

        if done == 0 {
            return 0;
        }
        // --- Window-exit flush: the per-cycle effects accrued in closed
        // form. The start-ring gc is deferred to the window end (the same
        // legality argument as `advance_bulk`'s).
        let mut m = burst_mask;
        while m != 0 {
            let id = m.trailing_zeros() as usize;
            m &= m - 1;
            // Open burst segments: `now` is the first unexecuted cycle, so
            // `now - from` retirements happened (capped by the horizon
            // that armed the segment).
            self.ces[id].advance_compute_burst(now - burst_from[id]);
        }
        self.membus.gc(now - 1);
        if sync_wait_acc > 0 {
            self.ccb.note_sync_waits(sync_wait_acc);
        }
        if grant_wait_acc > 0 {
            self.ccb.note_grant_waits(grant_wait_acc);
        }
        for id in 0..n {
            let stats = &mut self.ces[id].stats;
            stats.instrs += instrs_acc[id];
            let (g, l) = (
                id / crate::swar::PACKED_LANES,
                id % crate::swar::PACKED_LANES,
            );
            stats.bus_busy_cycles += busbusy_acc[id] + crate::swar::packed_lane(busbusy_pk[g], l);
            let denied = deny_acc[id] + crate::swar::packed_lane(deny_pk[g], l);
            if denied > 0 {
                self.crossbar.note_denied_retries(id, denied);
            }
        }
        let mut m = active_lanes;
        while m != 0 {
            let id = m.trailing_zeros() as usize;
            m &= m - 1;
            // Roles only change on the scalar CCB-resolution cycles, so
            // every worker was CCB-active for the whole window.
            self.ces[id].stats.active_cycles += done;
        }
        let from = self.now;
        self.now = now;
        self.cycles_total += done;
        self.cycles_dense += done;
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.push(crate::trace::TraceEvent::DenseWindow { from, cycles: done });
        }
        done
    }

    /// Render every architecturally observable piece of machine state into
    /// a deterministic string, so differential tests can assert that
    /// fast-forward on/off trajectories are bit-identical. Excludes the
    /// skip counters (they differ by design); the IP issue count stands in
    /// for the RNG stream position (equal draws => equal position).
    pub fn state_digest(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "now={} load={:?} asid={} fault_seq={} faults={:?} ip_issued={}",
            self.now,
            self.load_kind(),
            self.current_asid(),
            self.fault_seq,
            self.vm.total_faults(),
            self.ip.issued(),
        );
        for (i, ce) in self.ces.iter().enumerate() {
            let _ = write!(
                s,
                "\nce{}={:?} resume={:?} vm_checked={} op_fetched={}",
                i,
                ce,
                self.resume_actions[i],
                self.vm_checked >> i & 1 != 0,
                self.op_fetched >> i & 1 != 0,
            );
        }
        let _ = write!(
            s,
            "\nccb: progress={:?} sync={} stats={:?}",
            self.ccb.progress(),
            self.ccb.sync_value(),
            self.ccb.stats(),
        );
        let _ = write!(s, "\ncrossbar={:?}", self.crossbar.stats());
        let _ = write!(s, "\nmembus={:?}", self.membus.stats());
        let _ = write!(s, "\ncaches={:?}", self.caches.stats());
        s
    }

    /// One bus cycle. `probed` selects whether the memory-bus probe is
    /// decoded into the returned word; everything that advances machine
    /// state (and every statistic) is identical on both paths, so quiet
    /// `run` and probed `capture` produce bit-identical trajectories.
    fn step_cycle(&mut self, probed: bool) -> ProbeWord {
        let now = self.now;
        let n = self.ces.len();
        debug_assert!(n <= MAX_CES);
        let mut word = ProbeWord::idle(now);

        // --- Interactive processors: background cache/bus traffic.
        self.ip.step(now, &mut self.caches, &mut self.membus);

        // --- CCB: self-scheduled iteration dispatch.
        let mut requesting = [false; MAX_CES];
        for (req, ce) in requesting.iter_mut().zip(&self.ces) {
            *req = ce.state == CeState::AwaitIter;
        }
        let requesting = &requesting[..n];
        if requesting.iter().any(|&r| r) {
            let mut grants = [IterGrant::Wait; MAX_CES];
            self.ccb.arbitrate_into(now, requesting, &mut grants[..n]);
            for (id, &grant) in grants[..n].iter().enumerate() {
                match grant {
                    IterGrant::Wait => {}
                    IterGrant::Iter(i) => {
                        // A worker only requests at an iteration boundary,
                        // i.e. with a drained queue: the body generates
                        // straight into the queue's backing storage.
                        debug_assert!(self.ces[id].ops.is_empty());
                        if let Load::Loop { body, .. } = &mut self.load {
                            body.gen_iteration(i, id, self.ces[id].ops.append_buf());
                        }
                        // The grant propagates down the daisy chain before
                        // the CE can begin (middle CEs are farther from
                        // either chain driver).
                        let delay = self.cfg.ccb_chain_delay(id);
                        self.ces[id].state = if delay > 0 {
                            CeState::Stalled {
                                until: now + delay,
                                resume_op: CeBusOp::Idle,
                            }
                        } else {
                            CeState::Ready
                        };
                        self.reset_op_flags(id);
                        // Grants only ever land in the scalar stepper (the
                        // dense kernel bails on grant cycles and bulk
                        // windows never contain one), so this is the single
                        // dispatch-to-grant measurement point.
                        if let Some(tr) = self.tracer.as_deref_mut() {
                            let waited = now.saturating_sub(tr.iter_wait_since[id]);
                            if tr.metrics_on {
                                tr.grant_latency.record(waited);
                            }
                            tr.push(crate::trace::TraceEvent::CcbGrant {
                                at: now,
                                ce: id as u32,
                                iter: i,
                                waited,
                            });
                        }
                    }
                    IterGrant::Exhausted => {
                        if self.ccb.serial_successor() == Some(id) {
                            if self.ccb.all_complete() {
                                self.promote_to_drained(id);
                            } else {
                                self.ces[id].state = CeState::AwaitJoin;
                            }
                        } else if self.ccb.serial_successor().is_none()
                            && self.ccb.all_complete()
                            && matches!(self.load, Load::Loop { .. })
                        {
                            // The loop was mounted with no iterations left
                            // (macro progress consumed them all): no CE ever
                            // took a "last iteration", so the first CE to
                            // observe exhaustion continues serially.
                            self.promote_to_drained(id);
                        } else {
                            // Out of iterations: this CE leaves concurrent
                            // operation (its CCB line drops).
                            self.ces[id].unmount();
                        }
                    }
                }
            }
        }
        // Join completion for the serial successor.
        for id in 0..n {
            if self.ces[id].state == CeState::AwaitJoin && self.ccb.all_complete() {
                self.promote_to_drained(id);
            }
        }

        // --- Per-CE execution: figure out who wants the crossbar.
        let mut req_bank = [None::<usize>; MAX_CES];
        let mut req_info = [None::<(crate::addr::LineId, ReqKind)>; MAX_CES];
        for id in 0..n {
            match self.ces[id].state {
                CeState::Stalled { until, resume_op } => {
                    if now >= until {
                        // Completion handshake cycle.
                        word.ce_ops[id] = resume_op;
                        match self.resume_actions[id].take() {
                            Some(ResumeAction::FillIFetch(line)) => {
                                self.ces[id].ifetch_fill(line);
                            }
                            Some(ResumeAction::FinishOp) => {
                                self.ces[id].cur_op = None;
                                self.ces[id].stats.instrs += 1;
                                self.reset_op_flags(id);
                            }
                            None => {}
                        }
                        self.ces[id].state = CeState::Ready;
                    }
                    continue;
                }
                CeState::FaultStalled { until } => {
                    if now >= until {
                        self.ces[id].state = CeState::Ready;
                    }
                    continue;
                }
                CeState::AwaitSync { target } => {
                    if self.ccb.sync_reached(target) {
                        self.ces[id].state = CeState::Ready;
                    } else {
                        self.ccb.note_sync_wait();
                    }
                    continue;
                }
                CeState::AwaitIter | CeState::AwaitJoin => continue,
                CeState::Ready => {}
            }

            // Pending instruction fetch takes priority over everything.
            if let Some(line) = self.ces[id].pending_ifetch {
                req_bank[id] = Some(self.caches.bank_of(line));
                req_info[id] = Some((line, ReqKind::IFetch));
                continue;
            }

            // Continue a compute burst: one instruction per cycle.
            if self.ces[id].compute_left > 0 {
                if let Some(line) = self.ces[id].ifetch_step() {
                    self.ces[id].pending_ifetch = Some(line);
                    req_bank[id] = Some(self.caches.bank_of(line));
                    req_info[id] = Some((line, ReqKind::IFetch));
                } else {
                    self.ces[id].compute_left -= 1;
                    self.ces[id].stats.instrs += 1;
                }
                continue;
            }

            // Need a current op.
            if self.ces[id].cur_op.is_none() {
                if let Some(op) = self.ces[id].ops.pop_front() {
                    self.ces[id].cur_op = Some(op);
                    self.reset_op_flags(id);
                } else {
                    match self.ces[id].role {
                        CeRole::Worker => {
                            // Iteration complete: request the next one.
                            self.ccb.complete_iter();
                            self.ces[id].stats.iters_completed += 1;
                            self.ces[id].state = CeState::AwaitIter;
                            if let Some(tr) = self.tracer.as_deref_mut() {
                                tr.iter_wait_since[id] = now;
                            }
                            continue;
                        }
                        _ => {
                            if !self.refill_ops(id) {
                                continue; // nothing to do this cycle
                            }
                            self.ces[id].cur_op = self.ces[id].ops.pop_front();
                            self.reset_op_flags(id);
                        }
                    }
                }
            }

            let Some(op) = self.ces[id].cur_op else {
                continue;
            };
            match op {
                Op::Compute(c) => {
                    // Fetch check for the first instruction of the burst.
                    if let Some(line) = self.ces[id].ifetch_step() {
                        self.ces[id].pending_ifetch = Some(line);
                        req_bank[id] = Some(self.caches.bank_of(line));
                        req_info[id] = Some((line, ReqKind::IFetch));
                        // Burst starts after the fetch completes; rewind the
                        // cursor effect by leaving cur_op in place.
                        continue;
                    }
                    self.ces[id].stats.instrs += 1;
                    self.ces[id].compute_left = c.saturating_sub(1);
                    self.ces[id].cur_op = None;
                }
                Op::Load(a) | Op::Store(a) => {
                    let kind = if matches!(op, Op::Store(_)) {
                        ReqKind::Write
                    } else {
                        ReqKind::Read
                    };
                    // Instruction fetch for this operand instruction.
                    if self.op_fetched & (1 << id) == 0 {
                        self.op_fetched |= 1 << id;
                        if let Some(line) = self.ces[id].ifetch_step() {
                            self.ces[id].pending_ifetch = Some(line);
                            req_bank[id] = Some(self.caches.bank_of(line));
                            req_info[id] = Some((line, ReqKind::IFetch));
                            continue;
                        }
                    }
                    // Paging: first touch of the op.
                    if self.vm_checked & (1 << id) == 0 {
                        self.vm_checked |= 1 << id;
                        let mode = if a.asid() == KERNEL_ASID {
                            FaultMode::System
                        } else {
                            FaultMode::User
                        };
                        if !self.vm.touch(id, a.page(), mode) {
                            // Page fault: CE stalls while an IP services it.
                            self.fault_seq += 1;
                            // Fault handling itself occasionally faults in
                            // the kernel (handler paths, page tables).
                            if self.fault_seq.is_multiple_of(4) {
                                self.vm.charge_faults(id, 0, 1);
                            }
                            let until = now + self.cfg.fault_stall_cycles;
                            self.ces[id].state = CeState::FaultStalled { until };
                            self.ces[id].stats.fault_stall_cycles += self.cfg.fault_stall_cycles;
                            continue;
                        }
                    }
                    let line = a.line(self.cfg.cache.line_bytes);
                    req_bank[id] = Some(self.caches.bank_of(line));
                    req_info[id] = Some((line, kind));
                }
                Op::AwaitSync(t) => {
                    self.ces[id].cur_op = None;
                    if self.ccb.sync_reached(t) {
                        // Proceeds immediately; the check itself costs this cycle.
                    } else {
                        self.ces[id].state = CeState::AwaitSync { target: t };
                    }
                }
                Op::PostSync(v) => {
                    self.ccb.post_sync(v);
                    self.ces[id].stats.instrs += 1;
                    self.ces[id].cur_op = None;
                }
            }
        }

        // --- Crossbar arbitration and cache access. With no requester the
        // arbiter is a no-op (no grants, denials, rotor or busy-window
        // changes), so skip its banks×CEs scan entirely.
        let mut granted = [false; MAX_CES];
        let any_request = req_bank[..n].iter().any(|r| r.is_some());
        if any_request {
            self.crossbar.arbitrate_into(
                now,
                &req_bank[..n],
                self.cfg.cache_hit_cycles,
                &mut granted[..n],
            );
        }
        for id in 0..n {
            let Some((line, kind)) = req_info[id] else {
                continue;
            };
            // The request occupies the CE bus whether or not it wins.
            word.ce_ops[id] = kind.bus_op();
            if !granted[id] {
                continue; // retry next cycle
            }
            let outcome = self.caches.ce_access(line, kind.is_write());
            let mut fetch_complete: Option<Cycle> = None;
            for txn in &outcome.bus {
                let op = match txn {
                    BusTxn::Fetch => MemBusOp::Fetch,
                    BusTxn::WriteBack => MemBusOp::WriteBack,
                    BusTxn::Coherence => MemBusOp::Coherence,
                    BusTxn::IpFetch => MemBusOp::IpTraffic,
                };
                let ticket = self.membus.schedule(now, op, line);
                if *txn == BusTxn::Fetch {
                    fetch_complete = Some(ticket.complete);
                }
            }
            if outcome.hit {
                // Data returns within the hit latency; the op completes.
                match kind {
                    ReqKind::IFetch => self.ces[id].ifetch_fill(line),
                    ReqKind::Read | ReqKind::Write => {
                        self.ces[id].cur_op = None;
                        self.ces[id].stats.instrs += 1;
                        self.reset_op_flags(id);
                    }
                }
            } else {
                let until = fetch_complete.unwrap_or(now + self.cfg.mem_latency_cycles);
                self.ces[id].stats.miss_stall_cycles += until.saturating_sub(now);
                self.ces[id].state = CeState::Stalled {
                    until,
                    resume_op: CeBusOp::MissWait,
                };
                self.resume_actions[id] = Some(match kind {
                    ReqKind::IFetch => ResumeAction::FillIFetch(line),
                    ReqKind::Read | ReqKind::Write => ResumeAction::FinishOp,
                });
            }
        }

        // --- Probe assembly.
        for id in 0..n {
            if self.ces[id].is_ccb_active() {
                word.active_mask |= 1 << id;
                self.ces[id].stats.active_cycles += 1;
            }
            if word.ce_ops[id].is_busy() {
                self.ces[id].stats.bus_busy_cycles += 1;
            }
        }
        // Concurrency-transition edges. Activity is role-derived, so it is
        // constant inside dense and bulk-skipped windows — every change is
        // observable from a scalar cycle (or a mount, handled there).
        if let Some(tr) = self.tracer.as_deref_mut() {
            if tr.events_on {
                let active = word.active_mask.count_ones();
                if active != tr.last_active {
                    tr.push(crate::trace::TraceEvent::Transition {
                        at: now,
                        from: tr.last_active,
                        to: active,
                    });
                    tr.last_active = active;
                }
            }
        }
        if probed {
            word.mem_op = self.membus.probe_op(now);
        } else {
            // No analyzer armed: skip the probe decode, but still bound
            // the start-record ring (the probe normally collects it).
            self.membus.gc(now);
        }

        // --- Invariant audit (compiled out without the `audit` feature).
        // The auditor is taken out of `self` so it can borrow the rest of
        // the machine; the swapped-in default is heap-free.
        #[cfg(feature = "audit")]
        {
            let mut aud = std::mem::take(&mut self.auditor);
            aud.check_cycle(self, &word, &req_bank[..n], &granted[..n]);
            self.auditor = aud;
        }

        self.now += 1;
        self.cycles_total += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VAddr;
    use crate::stream::{CodeRegion, StridedLoop, StridedSerial};

    fn serial_code(asid: Asid) -> Box<dyn SerialCode> {
        Box::new(StridedSerial::new(
            CodeRegion {
                base: VAddr::new(asid, 0),
                footprint_bytes: 512,
                bytes_per_instr: 4,
            },
            VAddr::new(asid, 0x10_0000),
            8,
            4096,
            3,
        ))
    }

    fn loop_body(asid: Asid) -> Box<dyn LoopBody> {
        Box::new(StridedLoop {
            region: CodeRegion {
                base: VAddr::new(asid, 0x1000),
                footprint_bytes: 256,
                bytes_per_instr: 4,
            },
            src: VAddr::new(asid, 0x20_0000),
            dst: VAddr::new(asid, 0x30_0000),
            elem: 8,
            compute: 120,
        })
    }

    fn cluster() -> Cluster {
        let mut c = Cluster::new(MachineConfig::fx8(), 42);
        c.set_ip_intensity(0.0);
        c
    }

    #[test]
    fn idle_cluster_produces_idle_records() {
        let mut c = cluster();
        for w in c.capture(100) {
            assert_eq!(w.active_count(), 0);
            assert!(w.ce_ops.iter().all(|op| !op.is_busy()));
        }
    }

    #[test]
    fn serial_section_shows_exactly_one_active_ce() {
        let mut c = cluster();
        c.mount_serial(serial_code(1), 1, Some(2));
        let words = c.capture(500);
        for w in &words {
            assert_eq!(w.active_count(), 1, "serial = 1-active");
            assert!(w.is_active(2));
        }
        // It actually executes: some bus activity appears.
        assert!(words.iter().any(|w| w.ce_ops[2].is_busy()));
    }

    #[test]
    fn long_loop_reaches_full_concurrency() {
        let mut c = cluster();
        c.mount_loop(loop_body(1), 0, 100_000, serial_code(1), 1);
        c.run(200); // let dispatch ramp up
        let words = c.capture(500);
        let full = words.iter().filter(|w| w.active_count() == 8).count();
        assert!(full > 450, "only {full}/500 records at 8-active");
    }

    #[test]
    fn loop_drains_and_serial_continuation_takes_over() {
        let mut c = cluster();
        c.mount_loop(loop_body(1), 0, 40, serial_code(1), 1);
        let mut kinds = Vec::new();
        for _ in 0..10_000 {
            c.step();
            kinds.push(c.load_kind());
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        assert_eq!(c.load_kind(), LoadKind::Drained, "loop must drain");
        // After draining, exactly one CE is active (the serial successor).
        c.run(10);
        let w = c.step();
        assert_eq!(w.active_count(), 1, "post-loop serial continuation");
    }

    #[test]
    fn transition_passes_through_decreasing_activity() {
        let mut c = cluster();
        c.mount_loop(loop_body(1), 0, 200, serial_code(1), 1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50_000 {
            let w = c.step();
            seen.insert(w.active_count());
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        // The drain must pass through intermediate concurrency levels.
        assert!(seen.contains(&8));
        assert!(seen.contains(&1));
        assert!(
            seen.iter().any(|&k| (2..8).contains(&k)),
            "no intermediate levels observed: {seen:?}"
        );
    }

    #[test]
    fn iterations_complete_exactly_once() {
        let mut c = cluster();
        let total = 137;
        c.mount_loop(loop_body(1), 0, total, serial_code(1), 1);
        for _ in 0..100_000 {
            c.step();
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        let done: u64 = (0..8).map(|i| c.ce_stats(i).iters_completed).sum();
        assert_eq!(done, total);
    }

    #[test]
    fn resumed_loop_executes_only_remaining_iterations() {
        let mut c = cluster();
        c.mount_loop(loop_body(1), 95, 100, serial_code(1), 1);
        for _ in 0..50_000 {
            c.step();
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        let done: u64 = (0..8).map(|i| c.ce_stats(i).iters_completed).sum();
        assert_eq!(done, 5, "only the 5 remaining iterations run");
    }

    #[test]
    fn detached_process_is_never_ccb_active() {
        let mut c = cluster();
        c.mount_detached(5, serial_code(9), 9);
        let words = c.capture(300);
        for w in &words {
            assert_eq!(
                w.active_count(),
                0,
                "detached work must not assert CCB lines"
            );
        }
        // But it does generate bus traffic.
        assert!(words.iter().any(|w| w.ce_ops[5].is_busy()));
    }

    #[test]
    fn detached_ce_excluded_from_loop_scheduling() {
        let mut c = cluster();
        c.mount_detached(0, serial_code(9), 9);
        c.mount_loop(loop_body(1), 0, 50_000, serial_code(1), 1);
        c.run(200);
        let words = c.capture(300);
        for w in &words {
            assert!(!w.is_active(0), "detached CE0 must not join the loop");
        }
        let full = words.iter().filter(|w| w.active_count() == 7).count();
        assert!(full > 200, "remaining 7 CEs should run the loop: {full}");
    }

    #[test]
    fn misses_generate_memory_bus_fetches() {
        let mut c = cluster();
        c.mount_serial(serial_code(1), 1, None);
        let words = c.capture(3_000);
        let fetches = words.iter().filter(|w| w.mem_op == MemBusOp::Fetch).count();
        assert!(fetches > 0, "strided serial march must miss sometimes");
    }

    #[test]
    fn page_faults_are_counted_and_stall() {
        let mut c = cluster();
        c.mount_serial(serial_code(1), 1, None);
        c.run(5_000);
        assert!(c.vm().total_faults().total() > 0, "cold pages must fault");
    }

    #[test]
    fn dependent_loop_obeys_sync_order() {
        // A loop whose iterations post in order: iteration i awaits i, posts i+1.
        struct DepLoop {
            region: CodeRegion,
            log: std::sync::Arc<parking_lot_free::Log>,
        }
        // Minimal shared log without external deps.
        mod parking_lot_free {
            use std::sync::Mutex;
            #[derive(Default)]
            pub struct Log(pub Mutex<Vec<u64>>);
        }
        impl LoopBody for DepLoop {
            fn code(&self) -> CodeRegion {
                self.region
            }
            fn gen_iteration(&mut self, iter: u64, _ce: CeId, out: &mut Vec<Op>) {
                out.push(Op::Compute(3));
                out.push(Op::AwaitSync(iter));
                out.push(Op::PostSync(iter + 1));
                self.log.0.lock().unwrap().push(iter);
            }
        }
        let log = std::sync::Arc::new(parking_lot_free::Log::default());
        let body = DepLoop {
            region: CodeRegion {
                base: VAddr::new(1, 0),
                footprint_bytes: 128,
                bytes_per_instr: 4,
            },
            log: log.clone(),
        };
        let mut c = cluster();
        c.mount_loop(Box::new(body), 0, 40, serial_code(1), 1);
        for _ in 0..200_000 {
            c.step();
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        assert_eq!(
            c.load_kind(),
            LoadKind::Drained,
            "dependent loop must not deadlock"
        );
        let done: u64 = (0..8).map(|i| c.ce_stats(i).iters_completed).sum();
        assert_eq!(done, 40);
        assert!(
            c.ccb_stats().sync_wait_cycles > 0,
            "dependence must cause waiting"
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut c = Cluster::new(MachineConfig::fx8(), seed);
            c.set_ip_intensity(0.05);
            c.mount_loop(loop_body(1), 0, 10_000, serial_code(1), 1);
            c.capture(2_000)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn advance_clock_moves_time_forward_only() {
        let mut c = cluster();
        c.advance_clock(1_000);
        assert_eq!(c.now(), 1_000);
        let w = c.step();
        assert_eq!(w.cycle, 1_000);
    }

    #[test]
    #[should_panic(expected = "clock cannot move backwards")]
    fn advance_clock_rejects_backwards() {
        let mut c = cluster();
        c.advance_clock(10);
        c.advance_clock(5);
    }

    fn ff_off_config() -> MachineConfig {
        let mut cfg = MachineConfig::fx8();
        cfg.fast_forward = false;
        cfg
    }

    /// Drive a workload with fast-forward on and off and assert the
    /// trajectories are bit-identical: same digest of all observable state
    /// and same probe words captured afterwards. Returns the cycles the
    /// fast-forward run actually skipped.
    fn assert_ff_identical(mount: impl Fn(&mut Cluster), run_cycles: u64) -> u64 {
        let drive = |cfg: MachineConfig| {
            let mut c = Cluster::new(cfg, 42);
            c.set_ip_intensity(0.12);
            mount(&mut c);
            c.run(run_cycles);
            let words = c.capture(200);
            let skipped = c.skip_counters().0;
            (c.state_digest(), words, skipped)
        };
        let (d_on, w_on, sk_on) = drive(MachineConfig::fx8());
        let (d_off, w_off, sk_off) = drive(ff_off_config());
        assert_eq!(sk_off, 0, "knob off must never skip");
        assert_eq!(d_on, d_off, "fast-forward diverged the machine state");
        assert_eq!(w_on, w_off, "fast-forward diverged the probe stream");
        sk_on
    }

    #[cfg(not(feature = "audit"))]
    #[test]
    fn fast_forward_bit_identical_on_idle() {
        let skipped = assert_ff_identical(|_| {}, 20_000);
        assert!(skipped > 15_000, "idle machine barely skipped: {skipped}");
    }

    #[cfg(not(feature = "audit"))]
    #[test]
    fn fast_forward_bit_identical_on_serial() {
        let skipped = assert_ff_identical(|c| c.mount_serial(serial_code(1), 1, None), 30_000);
        assert!(skipped > 5_000, "serial kernel barely skipped: {skipped}");
    }

    #[cfg(not(feature = "audit"))]
    #[test]
    fn fast_forward_bit_identical_on_loop() {
        let skipped = assert_ff_identical(
            |c| c.mount_loop(loop_body(1), 0, 5_000, serial_code(1), 1),
            60_000,
        );
        assert!(skipped > 5_000, "loop kernel barely skipped: {skipped}");
    }

    #[cfg(not(feature = "audit"))]
    #[test]
    fn fast_forward_bit_identical_with_detached_and_drain() {
        let skipped = assert_ff_identical(
            |c| {
                c.mount_detached(5, serial_code(9), 9);
                c.mount_loop(loop_body(1), 0, 60, serial_code(1), 1);
            },
            40_000,
        );
        assert!(skipped > 0);
    }

    /// Exercise the crossbar-retry horizon: with a slow cache service time
    /// every grant parks its bank for 9 cycles, so denied CEs spin in
    /// pure-retry windows that the fast-forward engine must skip — and
    /// account (denials, bus-busy cycles) — bit-identically.
    #[cfg(not(feature = "audit"))]
    #[test]
    fn fast_forward_bit_identical_under_bank_contention() {
        let slow = |ff: bool| {
            let mut cfg = MachineConfig::fx8();
            cfg.cache_hit_cycles = 9;
            cfg.fast_forward = ff;
            cfg
        };
        let drive = |cfg: MachineConfig| {
            let mut c = Cluster::new(cfg, 42);
            c.set_ip_intensity(0.12);
            c.mount_loop(loop_body(1), 0, 5_000, serial_code(1), 1);
            c.run(60_000);
            let words = c.capture(200);
            let skipped = c.skip_counters().0;
            (c.state_digest(), words, skipped)
        };
        let (d_on, w_on, sk_on) = drive(slow(true));
        let (d_off, w_off, sk_off) = drive(slow(false));
        assert_eq!(sk_off, 0);
        assert_eq!(d_on, d_off, "retry skipping diverged the machine state");
        assert_eq!(w_on, w_off, "retry skipping diverged the probe stream");
        assert!(sk_on > 5_000, "contended loop barely skipped: {sk_on}");
    }

    #[cfg(not(feature = "audit"))]
    #[test]
    fn next_probe_at_caps_skipping() {
        let mut c = cluster();
        c.set_next_probe_at(Some(10));
        assert_eq!(c.skip_quiescent(1_000), 10, "skip stops at the probe");
        assert_eq!(c.now(), 10);
        assert_eq!(
            c.skip_quiescent(1_000),
            0,
            "the probe cycle itself must be stepped, not skipped"
        );
        c.set_next_probe_at(None);
        assert_eq!(c.skip_quiescent(1_000), 1_000, "cap lifted");
    }

    #[test]
    fn fast_forward_knob_off_disables_skipping() {
        let mut c = Cluster::new(ff_off_config(), 42);
        c.set_ip_intensity(0.0);
        c.run(1_000);
        assert_eq!(c.skip_counters(), (0, 1_000));
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audit_builds_never_skip() {
        // The auditor must stay an independent per-cycle oracle: even with
        // the knob on (the default), audit builds step every cycle.
        let mut c = cluster();
        c.run(1_000);
        assert_eq!(c.skip_counters(), (0, 1_000));
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audit_builds_never_dense_step() {
        // Same oracle-independence for the SWAR batch kernel: it retires
        // whole loop windows without ever calling the per-cycle auditor,
        // so `dense_eligible` is compile-time false under the feature and
        // a concurrent loop — the kernel's home turf — must run entirely
        // through the audited scalar stepper, and audit clean.
        let mut c = cluster();
        c.mount_loop(loop_body(1), 0, 10_000, serial_code(1), 1);
        c.run(20_000);
        assert_eq!(c.dense_counters().0, 0, "audit build dense-stepped");
        let report = c.audit_report();
        assert!(report.is_clean(), "audit violations: {report:?}");
    }

    #[test]
    fn tiny_machine_also_runs_loops() {
        let mut c = Cluster::new(MachineConfig::tiny(), 1);
        c.set_ip_intensity(0.0);
        c.mount_loop(loop_body(1), 0, 30, serial_code(1), 1);
        for _ in 0..100_000 {
            c.step();
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        assert_eq!(c.load_kind(), LoadKind::Drained);
        let done: u64 = (0..2).map(|i| c.ce_stats(i).iters_completed).sum();
        assert_eq!(done, 30);
    }

    /// Arming the tracer must be a pure observation: identical machine
    /// trajectory, digest and probe stream with it on or off.
    #[test]
    fn tracing_never_perturbs_the_machine() {
        let drive = |trace: crate::config::TraceConfig| {
            let mut cfg = MachineConfig::fx8();
            cfg.trace = trace;
            let mut c = Cluster::new(cfg, 42);
            c.set_ip_intensity(0.12);
            c.mount_loop(loop_body(1), 0, 2_000, serial_code(1), 1);
            c.run(30_000);
            let words = c.capture(200);
            (c.state_digest(), words)
        };
        let (d_off, w_off) = drive(crate::config::TraceConfig::off());
        let (d_on, w_on) = drive(crate::config::TraceConfig::full());
        assert_eq!(d_on, d_off, "tracing diverged the machine state");
        assert_eq!(w_on, w_off, "tracing diverged the probe stream");
    }

    #[test]
    fn armed_tracer_records_loop_lifecycle_and_metrics() {
        use crate::trace::TraceEvent as E;
        let mut cfg = MachineConfig::fx8();
        cfg.trace = crate::config::TraceConfig::full();
        let mut c = Cluster::new(cfg, 7);
        c.set_ip_intensity(0.0);
        c.mount_loop(loop_body(1), 0, 200, serial_code(1), 1);
        c.run(100_000);
        let events = c.trace_events();
        assert!(events.iter().any(|e| matches!(e, E::Mount { .. })));
        assert!(events.iter().any(|e| matches!(e, E::LoopStart { .. })));
        assert!(events.iter().any(|e| matches!(e, E::CcbGrant { .. })));
        assert!(events.iter().any(|e| matches!(e, E::Transition { .. })));
        let m = c.metrics();
        assert!(m.cycles.consistent(), "engine split must partition total");
        assert_eq!(m.cycles.total, 100_000);
        // Every CCB grant passed through the latency histogram (grants
        // only ever land in the scalar stepper).
        assert_eq!(
            m.ccb_grant_latency.count,
            m.ccb_grants_by_ce.iter().sum::<u64>()
        );
        // Per-bank grants partition total crossbar grants.
        assert_eq!(
            m.crossbar_grants_by_bank.iter().sum::<u64>(),
            m.crossbar_grants
        );
        assert_eq!(
            m.events_recorded,
            events.len() as u64 + c.trace_dropped_events()
        );
    }

    #[test]
    fn disabled_tracer_reports_empty_observability() {
        let mut c = cluster();
        c.mount_loop(loop_body(1), 0, 50, serial_code(1), 1);
        c.run(10_000);
        assert!(c.trace_events().is_empty());
        let m = c.metrics();
        assert!(m.cycles.consistent());
        assert_eq!(m.events_recorded, 0);
        assert_eq!(m.ccb_grant_latency.count, 0);
    }
}

#[cfg(test)]
mod ff_profile {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    #[ignore]
    fn classify_serial_stepped_cycles() {
        let mut c = Cluster::new(MachineConfig::fx8(), 2);
        c.set_ip_intensity(0.015);
        // Approximates the bench's scalar-serial kernel: ~5 compute per
        // memory ref over a 64 KB hot set and a 48 KB code footprint.
        c.mount_serial(
            Box::new(crate::stream::StridedSerial::new(
                crate::stream::CodeRegion {
                    base: crate::addr::VAddr::new(1, 0),
                    footprint_bytes: 48 * 1024,
                    bytes_per_instr: 4,
                },
                crate::addr::VAddr::new(1, 0x10_0000),
                96,
                64 * 1024,
                5,
            )),
            1,
            None,
        );
        c.run(5_000);
        let mut stepped = 0u64;
        let mut skipped = 0u64;
        let mut windows = std::collections::BTreeMap::new();
        let mut classes = std::collections::BTreeMap::new();
        let end = c.now + 500_000;
        while c.now < end {
            let plan = c.skippable(end - c.now);
            if plan.k > 0 {
                let k = plan.k;
                skipped += k;
                *windows.entry(k.min(16)).or_insert(0u64) += 1;
                c.advance_bulk(plan);
            } else {
                stepped += 1;
                let ce = &c.ces[0];
                let class = match ce.state {
                    CeState::Stalled { until, .. } if until <= c.now => "resume",
                    CeState::Stalled { .. } => "stall-other",
                    CeState::Ready if ce.pending_ifetch.is_some() => "ifetch-retry",
                    CeState::Ready if ce.compute_left > 0 => "burst-boundary",
                    CeState::Ready if ce.cur_op.is_some() => "cur-op",
                    CeState::Ready if !ce.ops.is_empty() => "dispatch",
                    CeState::Ready => "refill",
                    _ => "other",
                };
                *classes.entry(class).or_insert(0u64) += 1;
                c.step_cycle(false);
            }
        }
        eprintln!("stepped={stepped} skipped={skipped}");
        eprintln!("window sizes (capped 16): {windows:?}");
        eprintln!("stepped classes: {classes:?}");
    }
}
