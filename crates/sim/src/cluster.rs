//! The assembled Computational Cluster.
//!
//! Wires the CEs, the shared cache system, the crossbar, the memory buses,
//! the Concurrency Control Bus, the paging layer and the IP background load
//! into one machine. [`Cluster::step`] advances a single bus cycle and
//! returns the [`ProbeWord`] a logic analyzer probing the machine would
//! capture in that cycle — the entire measurement methodology sits on top
//! of this function.

use crate::addr::KERNEL_ASID;
use crate::ccb::{Ccb, IterGrant};
use crate::ce::{Ce, CeRole, CeState};
use crate::coherence::{BusTxn, CacheSystem};
use crate::config::MachineConfig;
use crate::crossbar::Crossbar;
use crate::ip::IpSubsystem;
use crate::membus::MemBusSystem;
use crate::opcode::{CeBusOp, MemBusOp};
use crate::probe::{ProbeWord, MAX_CES};
use crate::stream::{LoopBody, Op, SerialCode};
use crate::vm::{FaultMode, Vm};
use crate::{Asid, CeId, Cycle};

/// What is mounted on the cluster.
enum Load {
    /// Nothing scheduled on the cluster.
    Idle,
    /// A serial program section.
    Serial {
        code: Box<dyn SerialCode>,
        asid: Asid,
    },
    /// A concurrent loop; `after` is the serial continuation the
    /// last-iteration CE executes once the loop drains.
    Loop {
        body: Box<dyn LoopBody>,
        after: Box<dyn SerialCode>,
        asid: Asid,
    },
    /// The loop drained inside a window; its serial continuation runs.
    Drained {
        code: Box<dyn SerialCode>,
        asid: Asid,
    },
}

/// Coarse answer to "what is the cluster doing?" for the macro layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// Nothing mounted.
    Idle,
    /// Serial section executing.
    Serial,
    /// Concurrent loop executing.
    Loop,
    /// Loop drained; serial continuation executing.
    Drained,
}

/// A memory request a CE wants to issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    Read,
    Write,
    IFetch,
}

impl ReqKind {
    fn bus_op(self) -> CeBusOp {
        match self {
            ReqKind::Read => CeBusOp::Read,
            ReqKind::Write => CeBusOp::Write,
            ReqKind::IFetch => CeBusOp::IFetch,
        }
    }

    fn is_write(self) -> bool {
        matches!(self, ReqKind::Write)
    }
}

/// Action to finish when a miss stall expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResumeAction {
    /// Install the fetched instruction line.
    FillIFetch(crate::addr::LineId),
    /// Complete the current operand op.
    FinishOp,
}

/// The machine.
pub struct Cluster {
    cfg: MachineConfig,
    now: Cycle,
    pub(crate) ces: Vec<Ce>,
    resume_actions: Vec<Option<ResumeAction>>,
    /// Whether the current op's VM check has been performed.
    vm_checked: Vec<bool>,
    /// Whether the current op's instruction fetch has been performed.
    op_fetched: Vec<bool>,
    pub(crate) caches: CacheSystem,
    pub(crate) crossbar: Crossbar,
    pub(crate) membus: MemBusSystem,
    pub(crate) ccb: Ccb,
    vm: Vm,
    ip: IpSubsystem,
    load: Load,
    detached: Vec<Option<(Box<dyn SerialCode>, Asid)>>,
    fault_seq: u64,
    /// Scratch op buffer for serial/detached refills, reused across cycles
    /// so the steady-state stepper never touches the heap.
    refill_buf: Vec<Op>,
    /// Scratch op buffer for loop-iteration generation, likewise reused.
    iter_buf: Vec<Op>,
    /// Per-cycle invariant checker (compiled in under the `audit` feature).
    #[cfg(feature = "audit")]
    auditor: crate::audit::Auditor,
}

impl Cluster {
    /// Build a machine from `cfg`, deterministic under `seed`.
    pub fn new(cfg: MachineConfig, seed: u64) -> Self {
        cfg.validate().expect("valid machine configuration");
        let n = cfg.n_ces;
        let ces = (0..n)
            .map(|i| Ce::new(i, cfg.icache_bytes, cfg.icache_line_bytes))
            .collect();
        Cluster {
            caches: CacheSystem::new(cfg.cache, 32 * 1024),
            crossbar: Crossbar::new(n, cfg.cache.banks, cfg.crossbar_arbitration),
            membus: MemBusSystem::new(
                cfg.mem_buses,
                cfg.mem_interleave,
                cfg.mem_latency_cycles,
                cfg.line_transfer_cycles,
            ),
            ccb: Ccb::new(n, cfg.ccb_arbitration, cfg.ccb_grant_cycles),
            vm: Vm::new(cfg.phys_frames(), n),
            ip: IpSubsystem::new(seed),
            load: Load::Idle,
            detached: (0..n).map(|_| None).collect(),
            resume_actions: vec![None; n],
            vm_checked: vec![false; n],
            op_fetched: vec![false; n],
            ces,
            now: 0,
            cfg,
            fault_seq: 0,
            refill_buf: Vec::new(),
            iter_buf: Vec::new(),
            #[cfg(feature = "audit")]
            auditor: crate::audit::Auditor::default(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Jump the machine clock forward (macro-level time passing between
    /// captured windows). Panics if moving backwards.
    pub fn advance_clock(&mut self, to: Cycle) {
        assert!(to >= self.now, "clock cannot move backwards");
        self.now = to;
        #[cfg(feature = "audit")]
        self.auditor.note_external_change();
    }

    /// Snapshot of the invariant auditor's findings for this machine.
    /// With the `audit` feature off this is always the empty report.
    pub fn audit_report(&self) -> crate::audit::AuditReport {
        #[cfg(feature = "audit")]
        return self.auditor.report().clone();
        #[cfg(not(feature = "audit"))]
        crate::audit::AuditReport::default()
    }

    /// File a violation detected by an external cross-check (the monitor
    /// comparing reduced probe counts against ground-truth counters).
    #[cfg(feature = "audit")]
    pub fn audit_note_violation(&mut self, component: &str, expected: String, actual: String) {
        self.auditor
            .external_violation(self.now, component, expected, actual);
    }

    /// What the cluster is currently doing.
    pub fn load_kind(&self) -> LoadKind {
        match self.load {
            Load::Idle => LoadKind::Idle,
            Load::Serial { .. } => LoadKind::Serial,
            Load::Loop { .. } => LoadKind::Loop,
            Load::Drained { .. } => LoadKind::Drained,
        }
    }

    /// Iterations not yet handed out by the CCB.
    pub fn loop_remaining(&self) -> u64 {
        self.ccb.remaining()
    }

    /// Paging layer (fault counters, residency).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Mutable paging layer (macro fault accounting).
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }

    /// Shared cache system statistics.
    pub fn cache_stats(&self) -> crate::coherence::SystemStats {
        self.caches.stats()
    }

    /// CCB dispatch statistics.
    pub fn ccb_stats(&self) -> &crate::ccb::CcbStats {
        self.ccb.stats()
    }

    /// Crossbar contention statistics.
    pub fn crossbar_stats(&self) -> &crate::crossbar::CrossbarStats {
        self.crossbar.stats()
    }

    /// Memory bus statistics.
    pub fn membus_stats(&self) -> &crate::membus::MemBusStats {
        self.membus.stats()
    }

    /// Per-CE counters.
    pub fn ce_stats(&self, ce: CeId) -> crate::ce::CeStats {
        self.ces[ce].stats
    }

    /// Scale the IP background load (session-level interactive intensity).
    pub fn set_ip_intensity(&mut self, intensity: f64) {
        self.ip.set_intensity(intensity);
    }

    fn reset_op_flags(&mut self, ce: CeId) {
        self.vm_checked[ce] = false;
        self.op_fetched[ce] = false;
    }

    /// Unmount everything from the cluster (detached jobs stay).
    pub fn mount_idle(&mut self) {
        #[cfg(feature = "audit")]
        self.auditor.note_external_change();
        self.load = Load::Idle;
        self.ccb.clear();
        for i in 0..self.ces.len() {
            if self.detached[i].is_none() {
                self.ces[i].unmount();
            }
            self.resume_actions[i] = None;
            self.reset_op_flags(i);
        }
    }

    /// CEs not occupied by detached processes.
    fn free_ces(&self) -> Vec<CeId> {
        (0..self.ces.len())
            .filter(|&i| self.detached[i].is_none())
            .collect()
    }

    /// Mount a serial cluster section on `ce` (or the first free CE).
    pub fn mount_serial(&mut self, code: Box<dyn SerialCode>, asid: Asid, ce: Option<CeId>) {
        self.mount_idle();
        let free = self.free_ces();
        assert!(!free.is_empty(), "no free CE for serial work");
        let leader = ce.filter(|c| free.contains(c)).unwrap_or(free[0]);
        self.ces[leader].set_code(code.code());
        self.ces[leader].role = CeRole::ClusterSerial;
        self.ces[leader].state = CeState::Ready;
        self.load = Load::Serial { code, asid };
    }

    /// Mount a concurrent loop: iterations `first..total` remain to run
    /// (macro progress already consumed `0..first`), with `after` as the
    /// serial continuation for the last-iteration CE.
    pub fn mount_loop(
        &mut self,
        body: Box<dyn LoopBody>,
        first: u64,
        total: u64,
        after: Box<dyn SerialCode>,
        asid: Asid,
    ) {
        self.mount_idle();
        let free = self.free_ces();
        assert!(!free.is_empty(), "no free CE for loop work");
        self.ccb.start_loop(first, total);
        let region = body.code();
        for &i in &free {
            self.ces[i].set_code(region);
            self.ces[i].role = CeRole::Worker;
            self.ces[i].state = CeState::AwaitIter;
        }
        self.load = Load::Loop { body, after, asid };
    }

    /// Mount a detached, exclusively-serial process on CE `ce`. It will
    /// execute whenever the cluster has not claimed that CE and never
    /// asserts the CCB activity line.
    pub fn mount_detached(&mut self, ce: CeId, code: Box<dyn SerialCode>, asid: Asid) {
        #[cfg(feature = "audit")]
        self.auditor.note_external_change();
        self.ces[ce].unmount();
        self.ces[ce].set_code(code.code());
        self.ces[ce].role = CeRole::Detached;
        self.ces[ce].state = CeState::Ready;
        self.detached[ce] = Some((code, asid));
        self.resume_actions[ce] = None;
        self.reset_op_flags(ce);
    }

    /// Remove the detached process from CE `ce`.
    pub fn clear_detached(&mut self, ce: CeId) {
        #[cfg(feature = "audit")]
        self.auditor.note_external_change();
        self.detached[ce] = None;
        if self.ces[ce].role == CeRole::Detached {
            self.ces[ce].unmount();
        }
    }

    /// Run `n` cycles, discarding the probe words. Takes the quiet fast
    /// path: the machine advances bit-identically to [`Cluster::step`],
    /// but the memory-bus probe decode is skipped since no analyzer is
    /// armed to read it.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step_cycle(false);
        }
    }

    /// Run `n` cycles, collecting the probe words.
    pub fn capture(&mut self, n: usize) -> Vec<ProbeWord> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Promote the drained loop's serial continuation onto CE `ce`.
    fn promote_to_drained(&mut self, ce: CeId) {
        let load = std::mem::replace(&mut self.load, Load::Idle);
        if let Load::Loop { after, asid, .. } = load {
            self.ces[ce].set_code(after.code());
            self.ces[ce].role = CeRole::ClusterSerial;
            self.ces[ce].state = CeState::Ready;
            self.reset_op_flags(ce);
            self.load = Load::Drained { code: after, asid };
        } else {
            // Not a loop (should not happen): restore.
            self.load = load;
        }
    }

    /// Refill CE `ce`'s op queue from its mounted stream. Returns false if
    /// there is nothing to execute (worker finished its iteration, or no
    /// stream mounted).
    fn refill_ops(&mut self, ce: CeId) -> bool {
        const REFILL_ATTEMPTS: usize = 4;
        let id = ce;
        // The scratch buffer is taken out of self so the stream (also
        // borrowed from self) can fill it; it goes back before returning.
        let mut buf = std::mem::take(&mut self.refill_buf);
        buf.clear();
        let refilled = match self.ces[id].role {
            CeRole::Worker => false, // iteration boundary handled by caller
            CeRole::ClusterSerial => 'serial: {
                for _ in 0..REFILL_ATTEMPTS {
                    match &mut self.load {
                        Load::Serial { code, .. } | Load::Drained { code, .. } => {
                            code.gen_block(id, &mut buf);
                        }
                        _ => break 'serial false,
                    }
                    if !buf.is_empty() {
                        self.ces[id].ops.extend(buf.drain(..));
                        break 'serial true;
                    }
                }
                false
            }
            CeRole::Detached => 'detached: {
                for _ in 0..REFILL_ATTEMPTS {
                    if let Some((code, _)) = &mut self.detached[id] {
                        code.gen_block(id, &mut buf);
                    } else {
                        break 'detached false;
                    }
                    if !buf.is_empty() {
                        self.ces[id].ops.extend(buf.drain(..));
                        break 'detached true;
                    }
                }
                false
            }
            CeRole::Inactive => false,
        };
        self.refill_buf = buf;
        refilled
    }

    /// The address space of the cluster program currently mounted, or the
    /// kernel ASID when idle. Detached per-CE ASIDs are tracked separately.
    pub fn current_asid(&self) -> Asid {
        match &self.load {
            Load::Serial { asid, .. } | Load::Loop { asid, .. } | Load::Drained { asid, .. } => {
                *asid
            }
            Load::Idle => KERNEL_ASID,
        }
    }

    /// Advance one bus cycle; returns the record the probes capture.
    pub fn step(&mut self) -> ProbeWord {
        self.step_cycle(true)
    }

    /// One bus cycle. `probed` selects whether the memory-bus probe is
    /// decoded into the returned word; everything that advances machine
    /// state (and every statistic) is identical on both paths, so quiet
    /// `run` and probed `capture` produce bit-identical trajectories.
    fn step_cycle(&mut self, probed: bool) -> ProbeWord {
        let now = self.now;
        let n = self.ces.len();
        debug_assert!(n <= MAX_CES);
        let mut word = ProbeWord::idle(now);

        // --- Interactive processors: background cache/bus traffic.
        self.ip.step(now, &mut self.caches, &mut self.membus);

        // --- CCB: self-scheduled iteration dispatch.
        let mut requesting = [false; MAX_CES];
        for (req, ce) in requesting.iter_mut().zip(&self.ces) {
            *req = ce.state == CeState::AwaitIter;
        }
        let requesting = &requesting[..n];
        if requesting.iter().any(|&r| r) {
            let mut grants = [IterGrant::Wait; MAX_CES];
            self.ccb.arbitrate_into(now, requesting, &mut grants[..n]);
            for (id, &grant) in grants[..n].iter().enumerate() {
                match grant {
                    IterGrant::Wait => {}
                    IterGrant::Iter(i) => {
                        let mut buf = std::mem::take(&mut self.iter_buf);
                        buf.clear();
                        if let Load::Loop { body, .. } = &mut self.load {
                            body.gen_iteration(i, id, &mut buf);
                        }
                        self.ces[id].ops.extend(buf.drain(..));
                        self.iter_buf = buf;
                        // The grant propagates down the daisy chain before
                        // the CE can begin (middle CEs are farther from
                        // either chain driver).
                        let delay = self.cfg.ccb_chain_delay(id);
                        self.ces[id].state = if delay > 0 {
                            CeState::Stalled {
                                until: now + delay,
                                resume_op: CeBusOp::Idle,
                            }
                        } else {
                            CeState::Ready
                        };
                        self.reset_op_flags(id);
                    }
                    IterGrant::Exhausted => {
                        if self.ccb.serial_successor() == Some(id) {
                            if self.ccb.all_complete() {
                                self.promote_to_drained(id);
                            } else {
                                self.ces[id].state = CeState::AwaitJoin;
                            }
                        } else if self.ccb.serial_successor().is_none()
                            && self.ccb.all_complete()
                            && matches!(self.load, Load::Loop { .. })
                        {
                            // The loop was mounted with no iterations left
                            // (macro progress consumed them all): no CE ever
                            // took a "last iteration", so the first CE to
                            // observe exhaustion continues serially.
                            self.promote_to_drained(id);
                        } else {
                            // Out of iterations: this CE leaves concurrent
                            // operation (its CCB line drops).
                            self.ces[id].unmount();
                        }
                    }
                }
            }
        }
        // Join completion for the serial successor.
        for id in 0..n {
            if self.ces[id].state == CeState::AwaitJoin && self.ccb.all_complete() {
                self.promote_to_drained(id);
            }
        }

        // --- Per-CE execution: figure out who wants the crossbar.
        let mut req_bank = [None::<usize>; MAX_CES];
        let mut req_info = [None::<(crate::addr::LineId, ReqKind)>; MAX_CES];
        for id in 0..n {
            match self.ces[id].state {
                CeState::Stalled { until, resume_op } => {
                    if now >= until {
                        // Completion handshake cycle.
                        word.ce_ops[id] = resume_op;
                        match self.resume_actions[id].take() {
                            Some(ResumeAction::FillIFetch(line)) => {
                                self.ces[id].ifetch_fill(line);
                            }
                            Some(ResumeAction::FinishOp) => {
                                self.ces[id].cur_op = None;
                                self.ces[id].stats.instrs += 1;
                                self.reset_op_flags(id);
                            }
                            None => {}
                        }
                        self.ces[id].state = CeState::Ready;
                    }
                    continue;
                }
                CeState::FaultStalled { until } => {
                    if now >= until {
                        self.ces[id].state = CeState::Ready;
                    }
                    continue;
                }
                CeState::AwaitSync { target } => {
                    if self.ccb.sync_reached(target) {
                        self.ces[id].state = CeState::Ready;
                    } else {
                        self.ccb.note_sync_wait();
                    }
                    continue;
                }
                CeState::AwaitIter | CeState::AwaitJoin => continue,
                CeState::Ready => {}
            }

            // Pending instruction fetch takes priority over everything.
            if let Some(line) = self.ces[id].pending_ifetch {
                req_bank[id] = Some(self.caches.bank_of(line));
                req_info[id] = Some((line, ReqKind::IFetch));
                continue;
            }

            // Continue a compute burst: one instruction per cycle.
            if self.ces[id].compute_left > 0 {
                if let Some(line) = self.ces[id].ifetch_step() {
                    self.ces[id].pending_ifetch = Some(line);
                    req_bank[id] = Some(self.caches.bank_of(line));
                    req_info[id] = Some((line, ReqKind::IFetch));
                } else {
                    self.ces[id].compute_left -= 1;
                    self.ces[id].stats.instrs += 1;
                }
                continue;
            }

            // Need a current op.
            if self.ces[id].cur_op.is_none() {
                if let Some(op) = self.ces[id].ops.pop_front() {
                    self.ces[id].cur_op = Some(op);
                    self.reset_op_flags(id);
                } else {
                    match self.ces[id].role {
                        CeRole::Worker => {
                            // Iteration complete: request the next one.
                            self.ccb.complete_iter();
                            self.ces[id].stats.iters_completed += 1;
                            self.ces[id].state = CeState::AwaitIter;
                            continue;
                        }
                        _ => {
                            if !self.refill_ops(id) {
                                continue; // nothing to do this cycle
                            }
                            self.ces[id].cur_op = self.ces[id].ops.pop_front();
                            self.reset_op_flags(id);
                        }
                    }
                }
            }

            let Some(op) = self.ces[id].cur_op else {
                continue;
            };
            match op {
                Op::Compute(c) => {
                    // Fetch check for the first instruction of the burst.
                    if let Some(line) = self.ces[id].ifetch_step() {
                        self.ces[id].pending_ifetch = Some(line);
                        req_bank[id] = Some(self.caches.bank_of(line));
                        req_info[id] = Some((line, ReqKind::IFetch));
                        // Burst starts after the fetch completes; rewind the
                        // cursor effect by leaving cur_op in place.
                        continue;
                    }
                    self.ces[id].stats.instrs += 1;
                    self.ces[id].compute_left = c.saturating_sub(1);
                    self.ces[id].cur_op = None;
                }
                Op::Load(a) | Op::Store(a) => {
                    let kind = if matches!(op, Op::Store(_)) {
                        ReqKind::Write
                    } else {
                        ReqKind::Read
                    };
                    // Instruction fetch for this operand instruction.
                    if !self.op_fetched[id] {
                        self.op_fetched[id] = true;
                        if let Some(line) = self.ces[id].ifetch_step() {
                            self.ces[id].pending_ifetch = Some(line);
                            req_bank[id] = Some(self.caches.bank_of(line));
                            req_info[id] = Some((line, ReqKind::IFetch));
                            continue;
                        }
                    }
                    // Paging: first touch of the op.
                    if !self.vm_checked[id] {
                        self.vm_checked[id] = true;
                        let mode = if a.asid() == KERNEL_ASID {
                            FaultMode::System
                        } else {
                            FaultMode::User
                        };
                        if !self.vm.touch(id, a.page(), mode) {
                            // Page fault: CE stalls while an IP services it.
                            self.fault_seq += 1;
                            // Fault handling itself occasionally faults in
                            // the kernel (handler paths, page tables).
                            if self.fault_seq.is_multiple_of(4) {
                                self.vm.charge_faults(id, 0, 1);
                            }
                            let until = now + self.cfg.fault_stall_cycles;
                            self.ces[id].state = CeState::FaultStalled { until };
                            self.ces[id].stats.fault_stall_cycles += self.cfg.fault_stall_cycles;
                            continue;
                        }
                    }
                    let line = a.line(self.cfg.cache.line_bytes);
                    req_bank[id] = Some(self.caches.bank_of(line));
                    req_info[id] = Some((line, kind));
                }
                Op::AwaitSync(t) => {
                    self.ces[id].cur_op = None;
                    if self.ccb.sync_reached(t) {
                        // Proceeds immediately; the check itself costs this cycle.
                    } else {
                        self.ces[id].state = CeState::AwaitSync { target: t };
                    }
                }
                Op::PostSync(v) => {
                    self.ccb.post_sync(v);
                    self.ces[id].stats.instrs += 1;
                    self.ces[id].cur_op = None;
                }
            }
        }

        // --- Crossbar arbitration and cache access.
        let mut granted = [false; MAX_CES];
        self.crossbar.arbitrate_into(
            now,
            &req_bank[..n],
            self.cfg.cache_hit_cycles,
            &mut granted[..n],
        );
        for id in 0..n {
            let Some((line, kind)) = req_info[id] else {
                continue;
            };
            // The request occupies the CE bus whether or not it wins.
            word.ce_ops[id] = kind.bus_op();
            if !granted[id] {
                continue; // retry next cycle
            }
            let outcome = self.caches.ce_access(line, kind.is_write());
            let mut fetch_complete: Option<Cycle> = None;
            for txn in &outcome.bus {
                let op = match txn {
                    BusTxn::Fetch => MemBusOp::Fetch,
                    BusTxn::WriteBack => MemBusOp::WriteBack,
                    BusTxn::Coherence => MemBusOp::Coherence,
                    BusTxn::IpFetch => MemBusOp::IpTraffic,
                };
                let ticket = self.membus.schedule(now, op, line);
                if *txn == BusTxn::Fetch {
                    fetch_complete = Some(ticket.complete);
                }
            }
            if outcome.hit {
                // Data returns within the hit latency; the op completes.
                match kind {
                    ReqKind::IFetch => self.ces[id].ifetch_fill(line),
                    ReqKind::Read | ReqKind::Write => {
                        self.ces[id].cur_op = None;
                        self.ces[id].stats.instrs += 1;
                        self.reset_op_flags(id);
                    }
                }
            } else {
                let until = fetch_complete.unwrap_or(now + self.cfg.mem_latency_cycles);
                self.ces[id].stats.miss_stall_cycles += until.saturating_sub(now);
                self.ces[id].state = CeState::Stalled {
                    until,
                    resume_op: CeBusOp::MissWait,
                };
                self.resume_actions[id] = Some(match kind {
                    ReqKind::IFetch => ResumeAction::FillIFetch(line),
                    ReqKind::Read | ReqKind::Write => ResumeAction::FinishOp,
                });
            }
        }

        // --- Probe assembly.
        for id in 0..n {
            if self.ces[id].is_ccb_active() {
                word.active_mask |= 1 << id;
                self.ces[id].stats.active_cycles += 1;
            }
            if word.ce_ops[id].is_busy() {
                self.ces[id].stats.bus_busy_cycles += 1;
            }
        }
        if probed {
            word.mem_op = self.membus.probe_op(now);
        } else {
            // No analyzer armed: skip the probe decode, but still bound
            // the start-record ring (the probe normally collects it).
            self.membus.gc(now);
        }

        // --- Invariant audit (compiled out without the `audit` feature).
        // The auditor is taken out of `self` so it can borrow the rest of
        // the machine; the swapped-in default is heap-free.
        #[cfg(feature = "audit")]
        {
            let mut aud = std::mem::take(&mut self.auditor);
            aud.check_cycle(self, &word, &req_bank[..n], &granted[..n]);
            self.auditor = aud;
        }

        self.now += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VAddr;
    use crate::stream::{CodeRegion, StridedLoop, StridedSerial};

    fn serial_code(asid: Asid) -> Box<dyn SerialCode> {
        Box::new(StridedSerial::new(
            CodeRegion {
                base: VAddr::new(asid, 0),
                footprint_bytes: 512,
                bytes_per_instr: 4,
            },
            VAddr::new(asid, 0x10_0000),
            8,
            4096,
            3,
        ))
    }

    fn loop_body(asid: Asid) -> Box<dyn LoopBody> {
        Box::new(StridedLoop {
            region: CodeRegion {
                base: VAddr::new(asid, 0x1000),
                footprint_bytes: 256,
                bytes_per_instr: 4,
            },
            src: VAddr::new(asid, 0x20_0000),
            dst: VAddr::new(asid, 0x30_0000),
            elem: 8,
            compute: 120,
        })
    }

    fn cluster() -> Cluster {
        let mut c = Cluster::new(MachineConfig::fx8(), 42);
        c.set_ip_intensity(0.0);
        c
    }

    #[test]
    fn idle_cluster_produces_idle_records() {
        let mut c = cluster();
        for w in c.capture(100) {
            assert_eq!(w.active_count(), 0);
            assert!(w.ce_ops.iter().all(|op| !op.is_busy()));
        }
    }

    #[test]
    fn serial_section_shows_exactly_one_active_ce() {
        let mut c = cluster();
        c.mount_serial(serial_code(1), 1, Some(2));
        let words = c.capture(500);
        for w in &words {
            assert_eq!(w.active_count(), 1, "serial = 1-active");
            assert!(w.is_active(2));
        }
        // It actually executes: some bus activity appears.
        assert!(words.iter().any(|w| w.ce_ops[2].is_busy()));
    }

    #[test]
    fn long_loop_reaches_full_concurrency() {
        let mut c = cluster();
        c.mount_loop(loop_body(1), 0, 100_000, serial_code(1), 1);
        c.run(200); // let dispatch ramp up
        let words = c.capture(500);
        let full = words.iter().filter(|w| w.active_count() == 8).count();
        assert!(full > 450, "only {full}/500 records at 8-active");
    }

    #[test]
    fn loop_drains_and_serial_continuation_takes_over() {
        let mut c = cluster();
        c.mount_loop(loop_body(1), 0, 40, serial_code(1), 1);
        let mut kinds = Vec::new();
        for _ in 0..10_000 {
            c.step();
            kinds.push(c.load_kind());
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        assert_eq!(c.load_kind(), LoadKind::Drained, "loop must drain");
        // After draining, exactly one CE is active (the serial successor).
        c.run(10);
        let w = c.step();
        assert_eq!(w.active_count(), 1, "post-loop serial continuation");
    }

    #[test]
    fn transition_passes_through_decreasing_activity() {
        let mut c = cluster();
        c.mount_loop(loop_body(1), 0, 200, serial_code(1), 1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50_000 {
            let w = c.step();
            seen.insert(w.active_count());
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        // The drain must pass through intermediate concurrency levels.
        assert!(seen.contains(&8));
        assert!(seen.contains(&1));
        assert!(
            seen.iter().any(|&k| (2..8).contains(&k)),
            "no intermediate levels observed: {seen:?}"
        );
    }

    #[test]
    fn iterations_complete_exactly_once() {
        let mut c = cluster();
        let total = 137;
        c.mount_loop(loop_body(1), 0, total, serial_code(1), 1);
        for _ in 0..100_000 {
            c.step();
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        let done: u64 = (0..8).map(|i| c.ce_stats(i).iters_completed).sum();
        assert_eq!(done, total);
    }

    #[test]
    fn resumed_loop_executes_only_remaining_iterations() {
        let mut c = cluster();
        c.mount_loop(loop_body(1), 95, 100, serial_code(1), 1);
        for _ in 0..50_000 {
            c.step();
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        let done: u64 = (0..8).map(|i| c.ce_stats(i).iters_completed).sum();
        assert_eq!(done, 5, "only the 5 remaining iterations run");
    }

    #[test]
    fn detached_process_is_never_ccb_active() {
        let mut c = cluster();
        c.mount_detached(5, serial_code(9), 9);
        let words = c.capture(300);
        for w in &words {
            assert_eq!(
                w.active_count(),
                0,
                "detached work must not assert CCB lines"
            );
        }
        // But it does generate bus traffic.
        assert!(words.iter().any(|w| w.ce_ops[5].is_busy()));
    }

    #[test]
    fn detached_ce_excluded_from_loop_scheduling() {
        let mut c = cluster();
        c.mount_detached(0, serial_code(9), 9);
        c.mount_loop(loop_body(1), 0, 50_000, serial_code(1), 1);
        c.run(200);
        let words = c.capture(300);
        for w in &words {
            assert!(!w.is_active(0), "detached CE0 must not join the loop");
        }
        let full = words.iter().filter(|w| w.active_count() == 7).count();
        assert!(full > 200, "remaining 7 CEs should run the loop: {full}");
    }

    #[test]
    fn misses_generate_memory_bus_fetches() {
        let mut c = cluster();
        c.mount_serial(serial_code(1), 1, None);
        let words = c.capture(3_000);
        let fetches = words.iter().filter(|w| w.mem_op == MemBusOp::Fetch).count();
        assert!(fetches > 0, "strided serial march must miss sometimes");
    }

    #[test]
    fn page_faults_are_counted_and_stall() {
        let mut c = cluster();
        c.mount_serial(serial_code(1), 1, None);
        c.run(5_000);
        assert!(c.vm().total_faults().total() > 0, "cold pages must fault");
    }

    #[test]
    fn dependent_loop_obeys_sync_order() {
        // A loop whose iterations post in order: iteration i awaits i, posts i+1.
        struct DepLoop {
            region: CodeRegion,
            log: std::sync::Arc<parking_lot_free::Log>,
        }
        // Minimal shared log without external deps.
        mod parking_lot_free {
            use std::sync::Mutex;
            #[derive(Default)]
            pub struct Log(pub Mutex<Vec<u64>>);
        }
        impl LoopBody for DepLoop {
            fn code(&self) -> CodeRegion {
                self.region
            }
            fn gen_iteration(&mut self, iter: u64, _ce: CeId, out: &mut Vec<Op>) {
                out.push(Op::Compute(3));
                out.push(Op::AwaitSync(iter));
                out.push(Op::PostSync(iter + 1));
                self.log.0.lock().unwrap().push(iter);
            }
        }
        let log = std::sync::Arc::new(parking_lot_free::Log::default());
        let body = DepLoop {
            region: CodeRegion {
                base: VAddr::new(1, 0),
                footprint_bytes: 128,
                bytes_per_instr: 4,
            },
            log: log.clone(),
        };
        let mut c = cluster();
        c.mount_loop(Box::new(body), 0, 40, serial_code(1), 1);
        for _ in 0..200_000 {
            c.step();
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        assert_eq!(
            c.load_kind(),
            LoadKind::Drained,
            "dependent loop must not deadlock"
        );
        let done: u64 = (0..8).map(|i| c.ce_stats(i).iters_completed).sum();
        assert_eq!(done, 40);
        assert!(
            c.ccb_stats().sync_wait_cycles > 0,
            "dependence must cause waiting"
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut c = Cluster::new(MachineConfig::fx8(), seed);
            c.set_ip_intensity(0.05);
            c.mount_loop(loop_body(1), 0, 10_000, serial_code(1), 1);
            c.capture(2_000)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn advance_clock_moves_time_forward_only() {
        let mut c = cluster();
        c.advance_clock(1_000);
        assert_eq!(c.now(), 1_000);
        let w = c.step();
        assert_eq!(w.cycle, 1_000);
    }

    #[test]
    #[should_panic(expected = "clock cannot move backwards")]
    fn advance_clock_rejects_backwards() {
        let mut c = cluster();
        c.advance_clock(10);
        c.advance_clock(5);
    }

    #[test]
    fn tiny_machine_also_runs_loops() {
        let mut c = Cluster::new(MachineConfig::tiny(), 1);
        c.set_ip_intensity(0.0);
        c.mount_loop(loop_body(1), 0, 30, serial_code(1), 1);
        for _ in 0..100_000 {
            c.step();
            if c.load_kind() == LoadKind::Drained {
                break;
            }
        }
        assert_eq!(c.load_kind(), LoadKind::Drained);
        let done: u64 = (0..2).map(|i| c.ce_stats(i).iters_completed).sum();
        assert_eq!(done, 30);
    }
}
