//! Cycle-level invariant auditor.
//!
//! The whole measurement methodology rests on the claim that the probe
//! words coming out of [`crate::Cluster::step`] faithfully describe what
//! the simulated machine did that cycle. This module is the independent
//! oracle for that claim: under the `audit` feature, every stepped cycle is
//! cross-checked against conservation laws the machine must obey —
//!
//! * the probe word is structurally well-formed (no activity lines or bus
//!   opcodes above the configured cluster width);
//! * `active_mask` agrees exactly with the per-CE CCB roles;
//! * crossbar grants never exceed capacity (a grant implies a request, at
//!   most one grant per bank per cycle, and the granted bank is claimed);
//! * no requester starves beyond a bounded wait, neither at the crossbar
//!   nor at the CCB grant channel (dependence waits via `AwaitSync` and
//!   join waits are legitimately unbounded and excluded);
//! * CCB loop bookkeeping only moves along legal edges (`done ≤ next ≤
//!   total`, at most one dispatch per cycle, completions bounded by the
//!   cluster width, the sync register monotone);
//! * per-CE execution states transition only along the edges the hardware
//!   has (e.g. a miss stall may not release before its fill completes);
//! * the memory-bus start record stays strictly ordered (one start per
//!   cycle, the arbitration rule the probe decodes);
//! * cache coherence keeps a single dirty/unique owner per line.
//!
//! The monitor adds an end-to-end layer on top: after each acquisition it
//! compares the reduced [`EventCounts`](../../fx8_monitor/reduce) deltas
//! against the simulator's own ground-truth counters and files mismatches
//! here via `Cluster::audit_note_violation` (compiled under the same
//! feature).
//!
//! With the feature off (the default), none of this code is compiled into
//! the stepper and [`crate::Cluster::audit_report`] returns an empty
//! report — the zero-allocation hot path is unchanged. With the feature on,
//! the checks themselves are allocation-free (fixed-size scratch, reused
//! buffers); only an actual violation formats strings.

use serde::{Deserialize, Serialize};

/// Cap on individually-recorded violations per report; a systematically
/// broken invariant would otherwise flood memory at one violation per
/// cycle. Overflow is counted, not lost.
pub const MAX_RECORDED_VIOLATIONS: usize = 64;

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Machine cycle at which the check failed.
    pub cycle: u64,
    /// Component whose invariant failed (e.g. `crossbar`, `ce.transition`).
    pub component: String,
    /// What the invariant required.
    pub expected: String,
    /// What the machine actually showed.
    pub actual: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {} [{}] expected {}; got {}",
            self.cycle, self.component, self.expected, self.actual
        )
    }
}

/// Accumulated audit findings for one machine (or one session).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Cycles the auditor examined.
    pub checked_cycles: u64,
    /// Recorded violations, capped at [`MAX_RECORDED_VIOLATIONS`].
    pub violations: Vec<Violation>,
    /// Violations beyond the cap (counted but not recorded).
    pub dropped_violations: u64,
}

impl AuditReport {
    /// Whether no invariant was ever violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped_violations == 0
    }

    /// Total violations observed, including dropped ones.
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.dropped_violations
    }

    /// Fold another report into this one (study-level pooling).
    pub fn merge(&mut self, other: &AuditReport) {
        self.checked_cycles += other.checked_cycles;
        for v in &other.violations {
            if self.violations.len() < MAX_RECORDED_VIOLATIONS {
                self.violations.push(v.clone());
            } else {
                self.dropped_violations += 1;
            }
        }
        self.dropped_violations += other.dropped_violations;
    }
}

#[cfg(feature = "audit")]
pub(crate) use active::Auditor;

#[cfg(feature = "audit")]
mod active {
    use super::{AuditReport, Violation, MAX_RECORDED_VIOLATIONS};
    use crate::ce::{CeRole, CeState};
    use crate::cluster::Cluster;
    use crate::probe::ProbeWord;
    use crate::Cycle;

    /// Consecutive cycles a CE may be denied the crossbar while requesting
    /// before the auditor calls it starvation. Fixed-priority arbitration
    /// can legitimately deny a low-priority CE for long contended bursts;
    /// a logic error (a requester the arbiter never sees) is unbounded.
    const XBAR_WAIT_BOUND: u32 = 25_000;

    /// Consecutive cycles a CE may wait on the CCB grant channel. Grants
    /// take `ccb_grant_cycles` (~12) each, so even a full cluster queueing
    /// behind one channel clears in ~100 cycles.
    const ITER_WAIT_BOUND: u32 = 10_000;

    /// End-of-cycle CE state, for legal-edge checking.
    #[derive(Clone, Copy, PartialEq, Eq)]
    struct CeSnap {
        role: CeRole,
        state: CeState,
    }

    /// The per-cluster invariant checker. Owned by the `Cluster` and
    /// invoked at the end of every stepped cycle.
    #[derive(Default)]
    pub(crate) struct Auditor {
        report: AuditReport,
        /// CE snapshots from the previous stepped cycle.
        prev: Vec<CeSnap>,
        prev_valid: bool,
        /// CCB `(next, done, total)` from the previous stepped cycle.
        prev_ccb: Option<(u64, u64, u64)>,
        prev_sync: u64,
        /// Consecutive crossbar denials per CE.
        xbar_streak: Vec<u32>,
        /// Consecutive cycles per CE spent in `AwaitIter`.
        iter_streak: Vec<u32>,
    }

    impl Auditor {
        pub(crate) fn report(&self) -> &AuditReport {
            &self.report
        }

        /// The cluster was externally re-mounted or its clock jumped:
        /// cross-cycle state (snapshots, streaks) no longer applies.
        pub(crate) fn note_external_change(&mut self) {
            self.prev_valid = false;
            self.prev_ccb = None;
            self.xbar_streak.iter_mut().for_each(|s| *s = 0);
            self.iter_streak.iter_mut().for_each(|s| *s = 0);
        }

        /// File a violation detected outside the stepper (the monitor's
        /// ground-truth cross-checks).
        pub(crate) fn external_violation(
            &mut self,
            cycle: Cycle,
            component: &str,
            expected: String,
            actual: String,
        ) {
            self.push(cycle, component, expected, actual);
        }

        fn push(&mut self, cycle: Cycle, component: &str, expected: String, actual: String) {
            if self.report.violations.len() < MAX_RECORDED_VIOLATIONS {
                self.report.violations.push(Violation {
                    cycle,
                    component: component.to_string(),
                    expected,
                    actual,
                });
            } else {
                self.report.dropped_violations += 1;
            }
        }

        /// Check every per-cycle invariant. Called by `Cluster::step_cycle`
        /// after probe assembly, with the cycle's crossbar requests and
        /// grants still in hand.
        pub(crate) fn check_cycle(
            &mut self,
            cl: &mut Cluster,
            word: &ProbeWord,
            req_bank: &[Option<usize>],
            granted: &[bool],
        ) {
            let now = word.cycle;
            let n = cl.ces.len();
            if self.xbar_streak.len() != n {
                self.xbar_streak = vec![0; n];
                self.iter_streak = vec![0; n];
            }
            self.report.checked_cycles += 1;

            // Probe word shape: nothing above the cluster width.
            if let Err(e) = word.check_wellformed(n) {
                self.push(now, "probe", "well-formed probe word".into(), e);
            }

            // CCB activity lines agree with the CE roles.
            let mut expect_mask: crate::LaneWord = 0;
            for (id, ce) in cl.ces.iter().enumerate() {
                if ce.is_ccb_active() {
                    expect_mask |= 1 << id;
                }
            }
            if expect_mask != word.active_mask {
                self.push(
                    now,
                    "probe.active_mask",
                    format!("{expect_mask:#b} (from CE roles)"),
                    format!("{:#b}", word.active_mask),
                );
            }

            // Crossbar: grants within capacity.
            if let Err(e) = cl.crossbar.audit_check(now, req_bank, granted) {
                self.push(now, "crossbar", "grants within capacity".into(), e);
            }

            // Bounded waits.
            for id in 0..n {
                if req_bank[id].is_some() && !granted[id] {
                    self.xbar_streak[id] += 1;
                    if self.xbar_streak[id] == XBAR_WAIT_BOUND {
                        self.push(
                            now,
                            "crossbar.starvation",
                            format!("CE{id} granted within {XBAR_WAIT_BOUND} cycles"),
                            format!("denied {XBAR_WAIT_BOUND} consecutive cycles"),
                        );
                    }
                } else {
                    self.xbar_streak[id] = 0;
                }
                if cl.ces[id].state == CeState::AwaitIter {
                    self.iter_streak[id] += 1;
                    if self.iter_streak[id] == ITER_WAIT_BOUND {
                        self.push(
                            now,
                            "ccb.starvation",
                            format!("CE{id} granted an iteration within {ITER_WAIT_BOUND} cycles"),
                            format!("waiting {ITER_WAIT_BOUND} consecutive cycles"),
                        );
                    }
                } else {
                    self.iter_streak[id] = 0;
                }
            }

            // CCB loop bookkeeping.
            if let Some((next, done, total)) = cl.ccb.progress() {
                if !(done <= next && next <= total) {
                    self.push(
                        now,
                        "ccb",
                        "done <= next <= total".into(),
                        format!("next={next} done={done} total={total}"),
                    );
                }
                let sync = cl.ccb.sync_value();
                if let Some((pn, pd, pt)) = self.prev_ccb {
                    if pt == total {
                        if next < pn || next - pn > 1 {
                            self.push(
                                now,
                                "ccb",
                                "at most one iteration dispatched per cycle".into(),
                                format!("next {pn} -> {next}"),
                            );
                        }
                        if done < pd || done - pd > n as u64 {
                            self.push(
                                now,
                                "ccb",
                                format!("0..={n} completions per cycle"),
                                format!("done {pd} -> {done}"),
                            );
                        }
                        if sync < self.prev_sync {
                            self.push(
                                now,
                                "ccb.sync",
                                "monotone synchronization register".into(),
                                format!("{} -> {sync}", self.prev_sync),
                            );
                        }
                    }
                }
                self.prev_ccb = Some((next, done, total));
                self.prev_sync = sync;
            } else {
                self.prev_ccb = None;
            }

            // Per-CE state machine: only hardware edges.
            if self.prev_valid && self.prev.len() == n {
                for id in 0..n {
                    let cur = CeSnap {
                        role: cl.ces[id].role,
                        state: cl.ces[id].state,
                    };
                    if let Err(e) = legal_edge(&self.prev[id], &cur, now) {
                        self.push(now, "ce.transition", format!("CE{id} legal state edge"), e);
                    }
                }
            }
            self.prev.clear();
            self.prev.extend(cl.ces.iter().map(|ce| CeSnap {
                role: ce.role,
                state: ce.state,
            }));
            self.prev_valid = true;

            // Memory-bus start record: strictly one start per cycle.
            if let Err(e) = cl.membus.audit_check() {
                self.push(now, "membus", "strictly increasing start records".into(), e);
            }

            // Coherence violations logged by the cache system this cycle.
            if !cl.caches.audit_log_is_empty() {
                for (line, msg) in cl.caches.take_audit_log() {
                    self.push(
                        now,
                        "cache.coherence",
                        "single dirty/unique owner per line".into(),
                        format!("line {:#x}: {msg}", line.0),
                    );
                }
            }
        }
    }

    /// Whether the hardware has an edge from `prev` to `cur` within one
    /// cycle. `now` is the cycle in which the transition was observed.
    fn legal_edge(prev: &CeSnap, cur: &CeSnap, now: Cycle) -> Result<(), String> {
        use CeState::*;
        if prev.role != cur.role {
            // The only within-step role changes: a worker leaving the loop,
            // either unmounting (iterations exhausted) or promoting to the
            // serial continuation (last-iteration CE / join complete). A
            // promoted CE resumes serial execution in the same cycle, so by
            // cycle end it may already be stalled on a miss or a fault —
            // but it cannot be back in a loop wait state.
            let promoted = matches!(
                (prev.role, cur.role),
                (CeRole::Worker, CeRole::Inactive) | (CeRole::Worker, CeRole::ClusterSerial)
            );
            let from_wait = matches!(prev.state, AwaitIter | AwaitJoin);
            let to_serial = matches!(cur.state, Ready | Stalled { .. } | FaultStalled { .. });
            if promoted && from_wait && to_serial {
                return Ok(());
            }
            return Err(format!(
                "role {:?}/{:?} -> {:?}/{:?}",
                prev.role, prev.state, cur.role, cur.state
            ));
        }
        let ok = match (prev.state, cur.state) {
            (a, b) if a == b => true,
            // Ready may initiate anything: stall, fault, sync, next iter.
            (Ready, _) => true,
            // Grant, chain-delay stall, or last-iteration join wait.
            (AwaitIter, Ready | Stalled { .. } | AwaitJoin) => true,
            // The sync register reached the target.
            (AwaitSync { .. }, Ready) => true,
            // Stalls may only release once their deadline has passed.
            (Stalled { until, .. } | FaultStalled { until }, Ready) => now >= until,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("{:?} -> {:?}", prev.state, cur.state))
        }
    }
}
