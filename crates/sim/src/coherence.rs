//! The shared cache system: CPC banks + IP cache + coherence.
//!
//! All data traffic between processors and shared memory goes through the
//! processors' caches: the CEs share the four-way-interleaved CE cache
//! (two CPC modules), the IPs share (here, an aggregated) IP cache, and
//! "the caches maintain data coherency by requiring that a cache possess a
//! 'unique' copy of data before modifying it" (Appendix C). This module
//! implements both caches and that ownership rule, and reports the
//! memory-bus transactions each access implies so the cluster can schedule
//! them with real contention.

use crate::addr::LineId;
use crate::cache::{CacheStats, SetAssocCache};
use crate::config::CacheGeometry;
use serde::{Deserialize, Serialize};

/// A memory-bus transaction implied by a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusTxn {
    /// Line fetch into the CE cache (a CE-cache miss — the numerator of
    /// the study's Missrate).
    Fetch,
    /// Dirty line written back to memory.
    WriteBack,
    /// Ownership traffic with no data payload (upgrade / invalidate).
    Coherence,
    /// Line fetch into the IP cache.
    IpFetch,
}

/// The most bus transactions one access can imply: coherence traffic,
/// the other cache's dirty flush, the fetch, and a dirty victim's
/// write-back.
pub const MAX_BUS_TXNS: usize = 4;

/// Fixed-capacity, inline list of the bus transactions one access implies.
/// Accesses happen nearly every bus cycle, so the outcome must not touch
/// the heap. Derefs to a slice for iteration and comparison.
#[derive(Debug, Clone, Copy)]
pub struct BusList {
    items: [BusTxn; MAX_BUS_TXNS],
    len: u8,
}

impl BusList {
    /// An empty list.
    pub fn new() -> Self {
        BusList {
            items: [BusTxn::Fetch; MAX_BUS_TXNS],
            len: 0,
        }
    }

    /// Append a transaction. Panics if the access implied more than
    /// [`MAX_BUS_TXNS`] transactions (impossible by construction).
    pub fn push(&mut self, txn: BusTxn) {
        self.items[self.len as usize] = txn;
        self.len += 1;
    }
}

impl Default for BusList {
    fn default() -> Self {
        BusList::new()
    }
}

impl std::ops::Deref for BusList {
    type Target = [BusTxn];
    fn deref(&self) -> &[BusTxn] {
        &self.items[..self.len as usize]
    }
}

impl PartialEq for BusList {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for BusList {}

impl PartialEq<Vec<BusTxn>> for BusList {
    fn eq(&self, other: &Vec<BusTxn>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<[BusTxn]> for BusList {
    fn eq(&self, other: &[BusTxn]) -> bool {
        **self == *other
    }
}

impl IntoIterator for BusList {
    type Item = BusTxn;
    type IntoIter = std::iter::Take<std::array::IntoIter<BusTxn, MAX_BUS_TXNS>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a BusList {
    type Item = &'a BusTxn;
    type IntoIter = std::slice::Iter<'a, BusTxn>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Outcome of a CE-side access to the shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit in the cache.
    pub hit: bool,
    /// Bus transactions that must be scheduled, in order. On a miss the
    /// `Fetch` is the transaction the requesting CE stalls on; write-backs
    /// and coherence traffic proceed asynchronously.
    pub bus: BusList,
}

/// Which side of the machine is accessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Ce,
    Ip,
}

/// Aggregate statistics for the cache system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    /// CE-side accesses.
    pub ce_accesses: u64,
    /// CE-side misses.
    pub ce_misses: u64,
    /// IP-side accesses.
    pub ip_accesses: u64,
    /// IP-side misses.
    pub ip_misses: u64,
    /// Cross-cache invalidations (either direction).
    pub cross_invalidations: u64,
}

/// The two-cache system with unique-copy-before-modify coherence.
#[derive(Debug)]
pub struct CacheSystem {
    geom: CacheGeometry,
    banks: Vec<SetAssocCache>,
    ipc: SetAssocCache,
    /// Precomputed index arithmetic: the validated geometry is all powers
    /// of two, so bank/set routing is mask-and-shift instead of the
    /// div/mod chains `CacheGeometry::{bank_of, set_of}` would recompute
    /// on every access (several times per simulated cycle).
    bank_mask: u64,
    bank_shift: u32,
    set_mask: u64,
    ipc_mask: u64,
    stats: SystemStats,
    /// Coherence-rule violations observed after accesses, drained by the
    /// invariant auditor once per cycle. Empty (and allocation-free) unless
    /// the coherence protocol is actually broken.
    #[cfg(feature = "audit")]
    audit_log: Vec<(LineId, String)>,
}

impl CacheSystem {
    /// Build the CE cache from `geom` and an IP cache of `ipc_bytes`.
    pub fn new(geom: CacheGeometry, ipc_bytes: u64) -> Self {
        geom.validate().expect("valid CE-cache geometry");
        let sets = geom.sets_per_bank();
        let banks = (0..geom.banks)
            .map(|_| SetAssocCache::new(sets, geom.assoc))
            .collect();
        let ipc_lines = (ipc_bytes / geom.line_bytes).max(1);
        let ipc_assoc = 2.min(ipc_lines as usize);
        let ipc_sets = (ipc_lines / ipc_assoc as u64).max(1);
        assert!(
            ipc_sets.is_power_of_two(),
            "IPC sets must be a power of two"
        );
        CacheSystem {
            geom,
            banks,
            ipc: SetAssocCache::new(ipc_sets as usize, ipc_assoc),
            bank_mask: geom.banks as u64 - 1,
            bank_shift: (geom.banks as u64).trailing_zeros(),
            set_mask: sets as u64 - 1,
            ipc_mask: ipc_sets - 1,
            stats: SystemStats::default(),
            #[cfg(feature = "audit")]
            audit_log: Vec::new(),
        }
    }

    /// Geometry of the CE cache.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Bank index serving `line` (what the crossbar routes on).
    #[inline]
    pub fn bank_of(&self, line: LineId) -> usize {
        (line.0 & self.bank_mask) as usize
    }

    #[inline]
    fn cpc_set(&self, line: LineId) -> usize {
        ((line.0 >> self.bank_shift) & self.set_mask) as usize
    }

    #[inline]
    fn ipc_set(&self, line: LineId) -> usize {
        (line.0 & self.ipc_mask) as usize
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Per-bank CE-cache statistics (hits/misses include only that bank).
    pub fn bank_stats(&self, bank: usize) -> CacheStats {
        self.banks[bank].stats()
    }

    /// IP-cache statistics.
    pub fn ipc_stats(&self) -> CacheStats {
        self.ipc.stats()
    }

    /// Whether the CE cache currently holds `line` (no LRU side effects).
    pub fn cpc_contains(&self, line: LineId) -> bool {
        let bank = self.bank_of(line);
        self.banks[bank].contains(self.cpc_set(line), line)
    }

    /// Whether the IP cache currently holds `line`.
    pub fn ipc_contains(&self, line: LineId) -> bool {
        self.ipc.contains(self.ipc_set(line), line)
    }

    /// A CE reads or writes `line`. Applies all cache and coherence state
    /// transitions immediately and reports the implied bus transactions.
    #[inline]
    pub fn ce_access(&mut self, line: LineId, is_write: bool) -> AccessOutcome {
        self.access::<true>(line, is_write)
    }

    /// An IP reads or writes `line` through the IP cache.
    #[inline]
    pub fn ip_access(&mut self, line: LineId, is_write: bool) -> AccessOutcome {
        self.access::<false>(line, is_write)
    }

    /// Shared access logic, monomorphized per side: `CE` is a compile-time
    /// constant so the per-side dispatch below folds away in the build,
    /// keeping the CE hit path (several times per simulated cycle)
    /// branch-free of side selection.
    fn access<const CE: bool>(&mut self, line: LineId, is_write: bool) -> AccessOutcome {
        let side = if CE { Side::Ce } else { Side::Ip };
        match side {
            Side::Ce => self.stats.ce_accesses += 1,
            Side::Ip => self.stats.ip_accesses += 1,
        }
        let mut bus = BusList::new();

        // Split borrows: local cache is the one being accessed.
        let (local_set, other_set) = match side {
            Side::Ce => (self.cpc_set(line), self.ipc_set(line)),
            Side::Ip => (self.ipc_set(line), self.cpc_set(line)),
        };
        let bank = self.bank_of(line);

        let hit = {
            let local = match side {
                Side::Ce => &mut self.banks[bank],
                Side::Ip => &mut self.ipc,
            };
            local.lookup(local_set, line).is_some()
        };

        if hit {
            if is_write {
                // Unique-copy-before-modify: kick the other cache's copy out.
                let other_had = {
                    let other = match side {
                        Side::Ce => &mut self.ipc,
                        Side::Ip => &mut self.banks[bank],
                    };
                    other.invalidate(other_set, line)
                };
                if let Some(e) = other_had {
                    self.stats.cross_invalidations += 1;
                    bus.push(BusTxn::Coherence);
                    if e.dirty {
                        // The other cache held the only valid data: flush it.
                        bus.push(BusTxn::WriteBack);
                    }
                }
                let local = match side {
                    Side::Ce => &mut self.banks[bank],
                    Side::Ip => &mut self.ipc,
                };
                local.mark_dirty(local_set, line);
            }
            #[cfg(feature = "audit")]
            self.audit_line(line);
            return AccessOutcome { hit: true, bus };
        }

        // Miss path.
        match side {
            Side::Ce => self.stats.ce_misses += 1,
            Side::Ip => self.stats.ip_misses += 1,
        }

        // If the other cache holds the line: on a read we may share (it
        // supplies data over the memory bus as a coherence transfer); on a
        // write we must invalidate it first.
        let other_entry = {
            let other = match side {
                Side::Ce => &mut self.ipc,
                Side::Ip => &mut self.banks[bank],
            };
            if is_write {
                other.invalidate(other_set, line)
            } else {
                // Reads demote the other copy to shared.
                if other.contains(other_set, line) {
                    // Flush if dirty so memory supplies current data.
                    let e = other.invalidate(other_set, line).expect("contains checked");
                    // Re-install clean + shared (read keeps both copies).
                    other.fill(other_set, line, false, false);
                    Some(e)
                } else {
                    None
                }
            }
        };
        if let Some(e) = other_entry {
            self.stats.cross_invalidations += u64::from(is_write);
            bus.push(BusTxn::Coherence);
            if e.dirty {
                bus.push(BusTxn::WriteBack);
            }
        }

        // Fetch into the local cache.
        bus.push(match side {
            Side::Ce => BusTxn::Fetch,
            Side::Ip => BusTxn::IpFetch,
        });
        let other_has = match side {
            Side::Ce => self.ipc.contains(other_set, line),
            Side::Ip => self.banks[bank].contains(other_set, line),
        };
        let unique = is_write || !other_has;
        let victim = {
            let local = match side {
                Side::Ce => &mut self.banks[bank],
                Side::Ip => &mut self.ipc,
            };
            local.fill(local_set, line, is_write, unique)
        };
        if let Some(v) = victim {
            if v.dirty {
                bus.push(BusTxn::WriteBack);
            }
        }
        #[cfg(feature = "audit")]
        self.audit_line(line);
        AccessOutcome { hit: false, bus }
    }

    /// Check the unique-copy-before-modify invariant for `line` after an
    /// access: if both caches hold the line neither copy may be dirty or
    /// unique, and within one cache a dirty copy must be unique.
    #[cfg(feature = "audit")]
    fn audit_line(&mut self, line: LineId) {
        let bank = self.bank_of(line);
        let cpc = self.banks[bank].entry(self.cpc_set(line), line);
        let ipc = self.ipc.entry(self.ipc_set(line), line);
        if let (Some(c), Some(i)) = (cpc, ipc) {
            if c.dirty || i.dirty || c.unique || i.unique {
                self.audit_log.push((
                    line,
                    format!(
                        "both caches hold the line but it is not clean-shared \
                         (cpc dirty={} unique={}, ipc dirty={} unique={})",
                        c.dirty, c.unique, i.dirty, i.unique
                    ),
                ));
            }
        }
        for (name, entry) in [("cpc", cpc), ("ipc", ipc)] {
            if let Some(e) = entry {
                if e.dirty && !e.unique {
                    self.audit_log
                        .push((line, format!("{name} holds the line dirty but not unique")));
                }
            }
        }
    }

    /// Whether any coherence violations are pending collection.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_log_is_empty(&self) -> bool {
        self.audit_log.is_empty()
    }

    /// Drain the pending coherence violations.
    #[cfg(feature = "audit")]
    pub(crate) fn take_audit_log(&mut self) -> Vec<(LineId, String)> {
        std::mem::take(&mut self.audit_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn sys() -> CacheSystem {
        CacheSystem::new(MachineConfig::fx8().cache, 32 * 1024)
    }

    #[test]
    fn ce_read_miss_fetches_then_hits() {
        let mut s = sys();
        let out = s.ce_access(LineId(100), false);
        assert!(!out.hit);
        assert_eq!(out.bus, vec![BusTxn::Fetch]);
        let out2 = s.ce_access(LineId(100), false);
        assert!(out2.hit);
        assert!(out2.bus.is_empty());
    }

    #[test]
    fn cross_ce_reuse_is_free() {
        // A line fetched for one CE is a hit for every other CE: the cache
        // is shared. This is the cross-processor locality effect of § 5.1.
        let mut s = sys();
        s.ce_access(LineId(7), false);
        let again = s.ce_access(LineId(7), false);
        assert!(again.hit);
    }

    #[test]
    fn write_miss_installs_dirty_unique() {
        let mut s = sys();
        let out = s.ce_access(LineId(40), true);
        assert!(!out.hit);
        assert_eq!(out.bus, vec![BusTxn::Fetch]);
        // Eviction of that line later must write back.
        assert!(s.cpc_contains(LineId(40)));
    }

    #[test]
    fn ce_write_invalidates_ip_copy() {
        let mut s = sys();
        s.ip_access(LineId(55), false); // IPC holds it clean
        assert!(s.ipc_contains(LineId(55)));
        let out = s.ce_access(LineId(55), true);
        assert!(!out.hit);
        assert!(out.bus.contains(&BusTxn::Coherence));
        assert!(out.bus.contains(&BusTxn::Fetch));
        assert!(!s.ipc_contains(LineId(55)), "unique-before-modify");
        assert_eq!(s.stats().cross_invalidations, 1);
    }

    #[test]
    fn ip_write_invalidates_dirty_ce_copy_with_flush() {
        let mut s = sys();
        s.ce_access(LineId(60), true); // CPC dirty unique
        let out = s.ip_access(LineId(60), true);
        assert!(!out.hit);
        assert!(out.bus.contains(&BusTxn::Coherence));
        assert!(
            out.bus.contains(&BusTxn::WriteBack),
            "dirty copy must flush"
        );
        assert!(!s.cpc_contains(LineId(60)));
    }

    #[test]
    fn read_sharing_keeps_both_copies() {
        let mut s = sys();
        s.ip_access(LineId(70), false);
        let out = s.ce_access(LineId(70), false);
        assert!(!out.hit);
        assert!(s.cpc_contains(LineId(70)));
        assert!(s.ipc_contains(LineId(70)), "read sharing keeps IPC copy");
    }

    #[test]
    fn capacity_eviction_writes_back_dirty_lines() {
        // Fill one set of one bank beyond associativity with dirty lines.
        let geom = MachineConfig::fx8().cache;
        let mut s = sys();
        let sets = geom.sets_per_bank() as u64;
        let stride = geom.banks as u64 * sets; // same bank, same set
        let mut wrote_back = false;
        for i in 0..=(geom.assoc as u64) {
            let out = s.ce_access(LineId(i * stride), true);
            if out.bus.contains(&BusTxn::WriteBack) {
                wrote_back = true;
            }
        }
        assert!(
            wrote_back,
            "overflowing a set with dirty lines must write back"
        );
    }

    #[test]
    fn adjacent_lines_route_to_different_banks() {
        let s = sys();
        assert_ne!(s.bank_of(LineId(0)), s.bank_of(LineId(1)));
        assert_eq!(s.bank_of(LineId(0)), s.bank_of(LineId(4)));
    }

    #[test]
    fn stats_count_both_sides() {
        let mut s = sys();
        s.ce_access(LineId(1), false);
        s.ce_access(LineId(1), false);
        s.ip_access(LineId(2), false);
        let st = s.stats();
        assert_eq!(st.ce_accesses, 2);
        assert_eq!(st.ce_misses, 1);
        assert_eq!(st.ip_accesses, 1);
        assert_eq!(st.ip_misses, 1);
    }
}
