//! Demand-paged virtual memory.
//!
//! The FX/8's virtual address spaces are 1024 segments of 1024 4 KB pages
//! (Appendix C). This module tracks the machine-wide resident page set with
//! LRU replacement over the configured physical frames, counts user- and
//! system-mode page faults per CE (the counters the Concentrix kernel logs
//! and the study's software instrumentation reads), and supports bulk macro
//! operations for working-set changes between captured windows.

use crate::addr::PageId;
use crate::CeId;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for `PageId` keys. Page numbers are small dense
/// integers; SipHash dominates the cost of the residency check that runs
/// once per memory operand, and none of its DoS resistance is needed for
/// simulator-internal keys. Map iteration order is never observable:
/// eviction picks the minimum stamp and stamps are unique.
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

type PageMap = HashMap<PageId, u32, BuildHasherDefault<PageHasher>>;

/// An invalid slot index used to mark a free-list entry / empty memo.
const NO_SLOT: u32 = u32::MAX;

/// Per-CE fault counters, split by mode as Concentrix logged them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Faults taken in user mode.
    pub user: u64,
    /// Faults taken in system mode.
    pub system: u64,
}

impl FaultCounts {
    /// Sum of user and system faults — the study's Page Fault Rate numerator.
    pub fn total(&self) -> u64 {
        self.user + self.system
    }
}

/// Whether a touch was charged as user- or system-mode work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// User-mode access (application data and code).
    User,
    /// System-mode access (kernel buffers, fault handling itself).
    System,
}

/// The machine-wide paging state.
///
/// Residency is a map from page to a *slot* in a stable slab of
/// `(page, stamp)` pairs. The indirection exists for one reason: the
/// per-CE touch memo. A CE's operand stream walks its panel with small
/// strides, so consecutive touches from the same CE overwhelmingly hit
/// the page they hit last time; the memo caches `(page, slot)` per CE and
/// the hot path updates the slot's stamp directly — no hash, no probe.
/// Any eviction bumps `epoch`, invalidating every memo at once (evictions
/// are rare once a working set is resident, and correctness never depends
/// on the memo: it is a pure cache over the map).
#[derive(Debug)]
pub struct Vm {
    frames: usize,
    /// Resident pages, each mapping to its slot in `slots`.
    resident: PageMap,
    /// Stable `(page, last-touch stamp)` storage; slot indices stay valid
    /// until the page is evicted (freed slots are recycled via `free`).
    slots: Vec<(PageId, u64)>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Lazy min-heap of (Reverse(stamp), page) candidates for eviction.
    /// Re-touches update only the slab; eviction re-heaps entries whose
    /// stamp has moved on, so the hot resident-touch path never pushes.
    lru: BinaryHeap<(std::cmp::Reverse<u64>, PageId)>,
    stamp: u64,
    /// Bumped on every eviction; memos from an older epoch are dead.
    epoch: u64,
    /// Per-CE `(page, slot, epoch)` last-touch memo.
    memo: Vec<(PageId, u32, u64)>,
    faults: Vec<FaultCounts>,
    evictions: u64,
}

impl Vm {
    /// Build with `frames` physical page frames and `n_ces` fault counters.
    pub fn new(frames: u64, n_ces: usize) -> Self {
        assert!(frames > 0);
        Vm {
            frames: frames as usize,
            resident: PageMap::with_capacity_and_hasher(frames as usize, Default::default()),
            slots: Vec::new(),
            free: Vec::new(),
            lru: BinaryHeap::new(),
            stamp: 0,
            epoch: 1,
            memo: vec![(PageId(0), NO_SLOT, 0); n_ces],
            faults: vec![FaultCounts::default(); n_ces],
            evictions: 0,
        }
    }

    /// Number of pages currently resident.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Whether `page` is resident (no side effects).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.resident.contains_key(&page)
    }

    /// Pages evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Fault counters for CE `ce`.
    pub fn fault_counts(&self, ce: CeId) -> FaultCounts {
        self.faults[ce]
    }

    /// Sum of fault counters across all CEs.
    pub fn total_faults(&self) -> FaultCounts {
        let mut t = FaultCounts::default();
        for f in &self.faults {
            t.user += f.user;
            t.system += f.system;
        }
        t
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Touch `page` on behalf of CE `ce`. Returns `true` if it was
    /// resident; otherwise counts a fault, makes it resident (evicting the
    /// LRU page if memory is full) and returns `false`.
    #[inline]
    pub fn touch(&mut self, ce: CeId, page: PageId, mode: FaultMode) -> bool {
        let stamp = self.next_stamp();
        // Same CE, same page as last time, no eviction since: refresh the
        // stamp straight in the slab.
        let m = self.memo[ce];
        if m.2 == self.epoch && m.0 == page {
            self.slots[m.1 as usize].1 = stamp;
            return true;
        }
        self.touch_slow(ce, page, mode, stamp)
    }

    /// Memo-miss path of [`Vm::touch`]: full residency lookup.
    fn touch_slow(&mut self, ce: CeId, page: PageId, mode: FaultMode, stamp: u64) -> bool {
        if let Some(&slot) = self.resident.get(&page) {
            // Lazy LRU: record the new stamp in the slab only. The heap
            // entry goes stale; eviction re-heaps it at the live stamp
            // when (and only when) it surfaces, so the choice of victim —
            // the minimum live stamp — is unchanged.
            self.slots[slot as usize].1 = stamp;
            self.memo[ce] = (page, slot, self.epoch);
            return true;
        }
        match mode {
            FaultMode::User => self.faults[ce].user += 1,
            FaultMode::System => self.faults[ce].system += 1,
        }
        let slot = self.make_resident(page, stamp);
        self.memo[ce] = (page, slot, self.epoch);
        false
    }

    /// Live stamp of a resident page (for eviction bookkeeping).
    #[inline]
    fn live_stamp(&self, page: PageId) -> Option<u64> {
        self.resident
            .get(&page)
            .map(|&slot| self.slots[slot as usize].1)
    }

    fn make_resident(&mut self, page: PageId, stamp: u64) -> u32 {
        while self.resident.len() >= self.frames {
            self.evict_lru();
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = (page, stamp);
                s
            }
            None => {
                self.slots.push((page, stamp));
                (self.slots.len() - 1) as u32
            }
        };
        self.resident.insert(page, slot);
        self.lru.push((std::cmp::Reverse(stamp), page));
        self.maybe_compact();
        slot
    }

    /// Safety net: with lazy re-heaping the heap tracks the resident set
    /// one-to-one (plus transients inside an eviction), but rebuild it from
    /// the live map if it ever outgrows the frame count so memory stays
    /// bounded no matter what.
    fn maybe_compact(&mut self) {
        if self.lru.len() > 4 * self.frames + 64 {
            self.lru.clear();
            let slots = &self.slots;
            self.lru.extend(
                self.resident
                    .values()
                    .map(|&s| (std::cmp::Reverse(slots[s as usize].1), slots[s as usize].0)),
            );
        }
    }

    /// Drop `page` from the resident set, recycling its slot and killing
    /// every memo (the epoch moves).
    fn remove_resident(&mut self, page: PageId) {
        if let Some(slot) = self.resident.remove(&page) {
            self.free.push(slot);
            self.epoch += 1;
            self.evictions += 1;
        }
    }

    fn evict_lru(&mut self) {
        // Pop entries until one matches the live stamp. A popped entry
        // whose page was re-touched since it was pushed re-enters the heap
        // at its live stamp: every resident page keeps an entry at or
        // below its live stamp, so the first exact match is the page with
        // the minimum live stamp — identical to eager per-touch pushes.
        while let Some((std::cmp::Reverse(stamp), page)) = self.lru.pop() {
            match self.live_stamp(page) {
                Some(live) if live == stamp => {
                    self.remove_resident(page);
                    return;
                }
                Some(live) => self.lru.push((std::cmp::Reverse(live), page)),
                None => {}
            }
        }
        // Heap exhausted but map non-empty (stale entries dropped): rebuild.
        if let Some(page) = self
            .resident
            .values()
            .min_by_key(|&&s| self.slots[s as usize].1)
            .map(|&s| self.slots[s as usize].0)
        {
            self.remove_resident(page);
        }
    }

    /// Macro-level: make a whole working set resident at once, charging
    /// faults for the pages that were absent. Used by the workload layer at
    /// phase boundaries between captured windows. Returns how many faulted.
    pub fn install_set<I: IntoIterator<Item = PageId>>(
        &mut self,
        ce: CeId,
        pages: I,
        mode: FaultMode,
    ) -> u64 {
        let mut faulted = 0;
        for p in pages {
            if !self.touch(ce, p, mode) {
                faulted += 1;
            }
        }
        faulted
    }

    /// Macro-level: charge faults without touching residency (steady-state
    /// locality drift integrated analytically between windows).
    pub fn charge_faults(&mut self, ce: CeId, user: u64, system: u64) {
        self.faults[ce].user += user;
        self.faults[ce].system += system;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn first_touch_faults_second_hits() {
        let mut vm = Vm::new(16, 2);
        assert!(!vm.touch(0, page(5), FaultMode::User));
        assert!(vm.touch(0, page(5), FaultMode::User));
        assert_eq!(vm.fault_counts(0).user, 1);
        assert_eq!(vm.fault_counts(0).system, 0);
    }

    #[test]
    fn lru_eviction_keeps_recently_touched_pages() {
        let mut vm = Vm::new(2, 1);
        vm.touch(0, page(1), FaultMode::User);
        vm.touch(0, page(2), FaultMode::User);
        vm.touch(0, page(1), FaultMode::User); // refresh 1; 2 is now LRU
        vm.touch(0, page(3), FaultMode::User); // evicts 2
        assert!(vm.is_resident(page(1)));
        assert!(!vm.is_resident(page(2)));
        assert!(vm.is_resident(page(3)));
        assert_eq!(vm.evictions(), 1);
    }

    #[test]
    fn residency_never_exceeds_frames() {
        let mut vm = Vm::new(8, 1);
        for i in 0..1000 {
            vm.touch(0, page(i % 37), FaultMode::User);
            assert!(vm.resident_count() <= 8);
        }
    }

    #[test]
    fn fault_modes_split_counters() {
        let mut vm = Vm::new(4, 2);
        vm.touch(1, page(10), FaultMode::System);
        vm.touch(1, page(11), FaultMode::User);
        let f = vm.fault_counts(1);
        assert_eq!((f.user, f.system), (1, 1));
        assert_eq!(f.total(), 2);
        assert_eq!(vm.fault_counts(0).total(), 0);
        assert_eq!(vm.total_faults().total(), 2);
    }

    #[test]
    fn install_set_counts_only_absent_pages() {
        let mut vm = Vm::new(16, 1);
        vm.touch(0, page(1), FaultMode::User);
        let faulted = vm.install_set(0, (0..4).map(page), FaultMode::User);
        assert_eq!(faulted, 3);
        assert_eq!(vm.fault_counts(0).user, 4);
    }

    #[test]
    fn charge_faults_is_pure_accounting() {
        let mut vm = Vm::new(4, 1);
        vm.charge_faults(0, 100, 7);
        assert_eq!(vm.fault_counts(0).user, 100);
        assert_eq!(vm.fault_counts(0).system, 7);
        assert_eq!(vm.resident_count(), 0);
    }

    #[test]
    fn lru_heap_stays_bounded_under_retouching() {
        let mut vm = Vm::new(8, 1);
        for i in 0..100_000u64 {
            vm.touch(0, page(i % 4), FaultMode::User);
        }
        assert!(vm.lru.len() <= 4 * 8 + 64, "heap grew to {}", vm.lru.len());
        // LRU semantics survive compaction.
        vm.touch(0, page(100), FaultMode::User);
        assert!(
            vm.is_resident(page(3)),
            "recently touched pages stay resident"
        );
    }

    #[test]
    fn working_set_larger_than_memory_thrashes() {
        let mut vm = Vm::new(4, 1);
        // Cyclic access over 8 pages with 4 frames under LRU: every touch faults.
        for _ in 0..3 {
            for i in 0..8 {
                vm.touch(0, page(i), FaultMode::User);
            }
        }
        assert_eq!(vm.fault_counts(0).user, 24);
    }
}
