//! SWAR (SIMD-within-a-register) primitives for the dense lane kernel.
//!
//! The dense stepper keeps one bit per CE lane in a [`LaneWord`] and needs
//! per-lane counters (bus-busy cycles, crossbar denials) that move by +1
//! per masked lane per cycle. Instead of a `trailing_zeros` loop over the
//! mask, the counters live as eight packed byte lanes inside a `u64`
//! accumulator word: a masked add is one multiply-spread plus one
//! wordwide add, and the packed word is flushed into the real per-CE `u64`
//! counters at window exit (or before any byte lane could saturate).
//! Clusters wider than [`PACKED_LANES`] chunk their lanes into 8-lane
//! groups ([`lane_groups`]), one accumulator word per group — an 8-CE
//! machine still pays for exactly one word.
//!
//! Everything here is plain stable-Rust integer arithmetic — no
//! `std::simd`, no target-feature gates — so it costs the same on every
//! platform the simulator builds for.

use crate::LaneWord;

/// Lanes a single packed accumulator word carries (one byte each).
pub const PACKED_LANES: usize = 8;

/// Highest per-lane count a packed byte lane can hold; adds beyond this
/// must be flushed first or byte lanes would carry into their neighbours.
pub const PACKED_MAX: u64 = u8::MAX as u64;

/// Accumulator words needed to carry one byte lane per CE of an
/// `n_ces`-wide cluster: clusters up to [`PACKED_LANES`] CEs (the measured
/// FX/8 among them) fit one word; wider clusters chunk their lanes into
/// 8-lane groups, each with its own packed word.
#[inline]
pub const fn lane_groups(n_ces: usize) -> usize {
    n_ces.div_ceil(PACKED_LANES)
}

/// Bitmask selecting the lanes of an `n_ces`-wide cluster: the width mask
/// every lane-word computation must confine itself to. Saturates at the
/// full [`LaneWord`].
#[inline]
pub const fn lane_mask(n_ces: usize) -> LaneWord {
    if n_ces >= LaneWord::BITS as usize {
        LaneWord::MAX
    } else {
        (1 << n_ces) - 1
    }
}

/// The 8-lane slice of `mask` belonging to packed-word group `g`, shifted
/// down to bits 0..8 — always within [`spread8`]'s lane bound.
#[inline]
pub const fn group_mask(mask: LaneWord, g: usize) -> LaneWord {
    (mask >> (PACKED_LANES * g)) & 0xff
}

/// Spread the low [`PACKED_LANES`] bits of `mask` into packed byte lanes:
/// byte `i` of the result is 1 exactly when bit `i` of `mask` is set.
///
/// The multiply broadcasts the mask byte into every byte lane, the AND
/// picks bit `i` out of byte lane `i` (the diagonal), and the final
/// shift-OR tree normalizes each surviving bit to the value 1 in its own
/// byte. No step can carry across a byte boundary: after the AND each
/// byte holds at most one set bit.
///
/// The lane bound is checked in **all** builds: an out-of-range mask would
/// not trap, it would silently corrupt every byte lane of the packed
/// counters downstream (the multiply smears high bits across the word).
/// Callers slice wide masks through [`group_mask`], which can never
/// violate the bound, so the branch predicts perfectly in the hot kernel.
#[inline]
pub fn spread8(mask: LaneWord) -> u64 {
    assert!(mask < 1 << PACKED_LANES, "mask has lanes beyond the word");
    let diag = mask.wrapping_mul(0x0101_0101_0101_0101) & 0x8040_2010_0804_0201;
    let mut x = diag | (diag >> 4);
    x |= x >> 2;
    x |= x >> 1;
    x & 0x0101_0101_0101_0101
}

/// Masked add: add `k` to every byte lane of `acc` selected by `mask`, in
/// one wordwide operation. Caller must keep every byte lane at or below
/// [`PACKED_MAX`] (flush first otherwise); the debug assertion catches a
/// violated budget before it silently corrupts a neighbouring lane.
#[inline]
pub fn packed_add(acc: u64, mask: LaneWord, k: u64) -> u64 {
    debug_assert!(k <= PACKED_MAX);
    acc.wrapping_add(spread8(mask).wrapping_mul(k))
}

/// Read byte lane `lane` of a packed accumulator.
#[inline]
pub fn packed_lane(acc: u64, lane: usize) -> u64 {
    debug_assert!(lane < PACKED_LANES);
    (acc >> (8 * lane)) & 0xff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread8_places_each_bit_in_its_own_byte() {
        for mask in 0u64..256 {
            let s = spread8(mask);
            for lane in 0..PACKED_LANES {
                assert_eq!(
                    packed_lane(s, lane),
                    (mask >> lane) & 1,
                    "mask {mask:#x} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn packed_add_accumulates_per_lane() {
        let mut acc = 0u64;
        acc = packed_add(acc, 0b1010_0001, 3);
        acc = packed_add(acc, 0b0000_0011, 7);
        assert_eq!(packed_lane(acc, 0), 10);
        assert_eq!(packed_lane(acc, 1), 7);
        assert_eq!(packed_lane(acc, 5), 3);
        assert_eq!(packed_lane(acc, 7), 3);
        assert_eq!(packed_lane(acc, 4), 0);
    }

    #[test]
    fn lane_mask_and_groups_cover_every_width() {
        assert_eq!(lane_mask(1), 0b1);
        assert_eq!(lane_mask(8), 0xff);
        assert_eq!(lane_mask(9), 0x1ff);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
        assert_eq!(lane_mask(64), u64::MAX);
        assert_eq!(lane_groups(1), 1);
        assert_eq!(lane_groups(8), 1);
        assert_eq!(lane_groups(9), 2);
        assert_eq!(lane_groups(64), 8);
    }

    #[test]
    fn group_mask_slices_wide_masks_within_spread8_bound() {
        let mask: u64 = (1 << 3) | (1 << 8) | (1 << 17) | (1 << 63);
        assert_eq!(group_mask(mask, 0), 0b1000);
        assert_eq!(group_mask(mask, 1), 0b01); // bit 8 -> lane 0
        assert_eq!(group_mask(mask, 2), 0b10); // bit 17 -> lane 1
        assert_eq!(group_mask(mask, 7), 0x80); // bit 63 -> lane 7
        for g in 0..8 {
            assert!(group_mask(mask, g) < 1 << PACKED_LANES);
            // Every slice is a legal spread8 input by construction.
            let _ = spread8(group_mask(mask, g));
        }
    }

    #[test]
    #[should_panic(expected = "lanes beyond the word")]
    fn spread8_rejects_wide_masks_in_all_builds() {
        // Release builds used to silently corrupt packed counters here.
        let _ = spread8(1 << PACKED_LANES);
    }

    #[test]
    fn packed_add_saturating_budget_stays_in_lane() {
        // 255 single adds on alternating lanes: the neighbouring (empty)
        // lanes must stay exactly zero.
        let mut acc = 0u64;
        for _ in 0..PACKED_MAX {
            acc = packed_add(acc, 0b0101_0101, 1);
        }
        for lane in 0..PACKED_LANES {
            let want = if lane % 2 == 0 { PACKED_MAX } else { 0 };
            assert_eq!(packed_lane(acc, lane), want, "lane {lane}");
        }
    }

    mod packed_vs_scalar {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any sequence of masked adds whose per-lane running totals
            /// stay within the byte budget must match a scalar per-lane
            /// accumulation exactly — in particular, no add may leak into
            /// a lane its mask did not select (carry across a byte
            /// boundary).
            #[test]
            fn masked_adds_never_cross_lane_boundaries(
                adds in prop::collection::vec((0u64..256, 1u64..=8), 0..120),
            ) {
                let mut acc = 0u64;
                let mut scalar = [0u64; PACKED_LANES];
                for &(mask, k) in &adds {
                    // Respect the budget the kernel enforces: flush (here,
                    // reset) before any selected lane could exceed a byte.
                    if (0..PACKED_LANES)
                        .any(|l| mask >> l & 1 == 1 && scalar[l] + k > PACKED_MAX)
                    {
                        acc = 0;
                        scalar = [0; PACKED_LANES];
                    }
                    acc = packed_add(acc, mask, k);
                    for (l, s) in scalar.iter_mut().enumerate() {
                        if mask >> l & 1 == 1 {
                            *s += k;
                        }
                    }
                    for (l, &s) in scalar.iter().enumerate() {
                        prop_assert_eq!(
                            packed_lane(acc, l),
                            s,
                            "lane {} after add (mask {:#x}, k {})",
                            l,
                            mask,
                            k
                        );
                    }
                }
            }
        }
    }
}
