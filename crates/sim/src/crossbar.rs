//! The CE↔cache crossbar switch.
//!
//! "Connection to these cache modules is accomplished through a crossbar
//! switch which routes both address and data between cache and CE"
//! (Appendix C). Each cache bank can service one CE request per cycle;
//! when several CEs address the same bank in the same cycle the crossbar
//! arbitrates and the losers retry, their buses showing the pending opcode
//! — which is how shared-resource contention becomes visible in the
//! CE-bus-busy measure.

use crate::config::Arbitration;
use crate::{CeId, Cycle, LaneWord};
use serde::{Deserialize, Serialize};

/// Contention counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossbarStats {
    /// Requests granted.
    pub grants: u64,
    /// Requests denied (lost arbitration or bank busy) — each denial costs
    /// the requesting CE at least one retry cycle.
    pub denials: u64,
    /// Denials broken down by requesting CE.
    pub denials_by_ce: Vec<u64>,
    /// Grants broken down by cache bank (the `fx8-trace` contention view:
    /// a skewed distribution means the interleave is not spreading lines).
    pub grants_by_bank: Vec<u64>,
}

/// The crossbar arbiter.
#[derive(Debug)]
pub struct Crossbar {
    arb: Arbitration,
    n_ces: usize,
    /// Per-bank cycle until which the bank is servicing a prior request.
    bank_busy_until: Vec<Cycle>,
    /// Per-bank round-robin rotor (last winner).
    rotor: Vec<usize>,
    /// Per-bank requester bitmask, rebuilt each arbitration cycle (owned
    /// buffer so the per-cycle path stays allocation-free).
    req_mask: Vec<LaneWord>,
    /// Priority permutation for the fixed (rotor-independent) disciplines,
    /// materialized once; empty for `RoundRobin`, whose order rotates.
    prio: Vec<u8>,
    stats: CrossbarStats,
}

impl Crossbar {
    /// Build an arbiter for `n_ces` CEs and `banks` cache banks.
    pub fn new(n_ces: usize, banks: usize, arb: Arbitration) -> Self {
        let prio = match arb {
            Arbitration::RoundRobin => Vec::new(),
            fixed => fixed.order(n_ces, 0).into_iter().map(|c| c as u8).collect(),
        };
        Crossbar {
            arb,
            n_ces,
            bank_busy_until: vec![0; banks],
            rotor: vec![0; banks],
            req_mask: vec![0; banks],
            prio,
            stats: CrossbarStats {
                denials_by_ce: vec![0; n_ces],
                grants_by_bank: vec![0; banks],
                ..Default::default()
            },
        }
    }

    /// Highest-priority requester in `mask` under the current discipline.
    /// `mask` must be nonzero.
    #[inline]
    pub(crate) fn winner_of(&self, mask: LaneWord, rotor: usize) -> usize {
        // A lone requester wins under every discipline; in the dense loop
        // regime eight lanes spread over sixteen banks, so most nonzero
        // masks are a single bit and the policy scan below never runs.
        if mask & (mask - 1) == 0 {
            return mask.trailing_zeros() as usize;
        }
        match self.arb {
            Arbitration::FixedLowFirst => mask.trailing_zeros() as usize,
            Arbitration::RoundRobin => {
                let n = self.n_ces;
                (0..n)
                    .map(|k| (rotor + 1 + k) % n)
                    .find(|&ce| mask & (1 << ce) != 0)
                    .expect("nonzero mask has a winner")
            }
            _ => self
                .prio
                .iter()
                .map(|&ce| ce as usize)
                .find(|&ce| mask & (1 << ce) != 0)
                .expect("nonzero mask has a winner"),
        }
    }

    /// Charge a denial to every CE set in `mask`.
    #[inline]
    fn deny_mask(&mut self, mut mask: LaneWord) {
        self.stats.denials += mask.count_ones() as u64;
        while mask != 0 {
            let ce = mask.trailing_zeros() as usize;
            self.stats.denials_by_ce[ce] += 1;
            mask &= mask - 1;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }

    /// Arbitrate one cycle, materializing the grant flags (tests, tools).
    /// The cluster's stepper uses [`Crossbar::arbitrate_into`].
    pub fn arbitrate(
        &mut self,
        now: Cycle,
        requests: &[Option<usize>],
        service_cycles: u64,
    ) -> Vec<bool> {
        let mut granted = vec![false; self.n_ces];
        self.arbitrate_into(now, requests, service_cycles, &mut granted);
        granted
    }

    /// Arbitrate one cycle into a caller-owned grant buffer — the per-cycle
    /// path, free of heap allocation. `requests[ce] = Some(bank)` if CE `ce`
    /// wants `bank` this cycle; every slot of `granted` is overwritten. A
    /// granted bank is then busy for `service_cycles` (hit-service
    /// occupancy).
    pub fn arbitrate_into(
        &mut self,
        now: Cycle,
        requests: &[Option<usize>],
        service_cycles: u64,
        granted: &mut [bool],
    ) {
        debug_assert_eq!(requests.len(), self.n_ces);
        debug_assert_eq!(granted.len(), self.n_ces);
        granted.fill(false);
        // One pass over the CEs builds per-bank requester bitmasks; the
        // per-bank work below is then mask arithmetic instead of rescanning
        // the request slice twice per bank.
        let banks = self.bank_busy_until.len();
        self.req_mask[..banks].fill(0);
        for (ce, req) in requests.iter().enumerate() {
            if let Some(b) = *req {
                if b < banks {
                    self.req_mask[b] |= 1 << ce;
                }
            }
        }
        let mut won = self.arbitrate_staged(now, service_cycles);
        while won != 0 {
            let ce = won.trailing_zeros() as usize;
            granted[ce] = true;
            won &= won - 1;
        }
    }

    /// Arbitrate one cycle from per-bank requester bitmasks, returning the
    /// granted CEs as a bitmask. This is the dense stepper's path: the SoA
    /// kernel already keeps its requests lane-packed, so the bank conflict
    /// resolution never leaves mask arithmetic. Counter movement is
    /// identical to [`Crossbar::arbitrate_into`] with the equivalent
    /// request slice — both funnel into the same staged resolver.
    /// Kept as the reference resolver for the SWAR differential tests
    /// (`arbitrate_masks_swar` must grant and count identically).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn arbitrate_masks(
        &mut self,
        now: Cycle,
        bank_req: &[LaneWord],
        service_cycles: u64,
    ) -> LaneWord {
        let banks = self.bank_busy_until.len();
        debug_assert!(bank_req.len() >= banks);
        self.req_mask[..banks].copy_from_slice(&bank_req[..banks]);
        self.arbitrate_staged(now, service_cycles)
    }

    /// The SWAR twin of [`Crossbar::arbitrate_masks`]: resolve one cycle
    /// over a caller-maintained persistent bank×word requester table,
    /// visiting only the banks flagged in `occupied` (a bank bitmask the
    /// dense kernel keeps incrementally as requests enter and are
    /// granted). Two deliberate asymmetries against the staged resolver,
    /// both invisible at window granularity:
    ///
    /// * empty banks are never scanned — the occupancy word is the scan
    ///   list, so an idle 16-bank geometry costs nothing;
    /// * **denials are not charged here.** Each cycle's denied set is
    ///   exactly `requesters & !won`, which the dense kernel accumulates
    ///   in a packed SWAR word and flushes through
    ///   [`Crossbar::note_denied_retries`] at window exit. Grants, the
    ///   per-bank rotor, and bank service occupancy move per-grant,
    ///   identically to the staged path.
    #[inline]
    pub(crate) fn arbitrate_masks_swar(
        &mut self,
        now: Cycle,
        bank_req: &[LaneWord],
        occupied: u32,
        service_cycles: u64,
    ) -> LaneWord {
        let mut won: LaneWord = 0;
        let mut banks = occupied;
        while banks != 0 {
            let bank = banks.trailing_zeros() as usize;
            banks &= banks - 1;
            let mask = bank_req[bank];
            debug_assert!(mask != 0, "occupied bank {bank} has no requesters");
            if self.bank_busy_until[bank] > now {
                continue; // busy: denial accounted by the caller's flush
            }
            let w: CeId = self.winner_of(mask, self.rotor[bank]);
            won |= 1 << w;
            self.stats.grants += 1;
            self.stats.grants_by_bank[bank] += 1;
            self.bank_busy_until[bank] = now + service_cycles;
            self.rotor[bank] = w;
        }
        won
    }

    /// Resolve one cycle's conflicts over the staged `req_mask` buffers.
    /// Returns the winners as a CE bitmask.
    fn arbitrate_staged(&mut self, now: Cycle, service_cycles: u64) -> LaneWord {
        let banks = self.bank_busy_until.len();
        let mut won: LaneWord = 0;
        for bank in 0..banks {
            let mask = self.req_mask[bank];
            if mask == 0 {
                continue;
            }
            if self.bank_busy_until[bank] > now {
                // Bank still servicing: everyone aiming at it is denied.
                self.deny_mask(mask);
                continue;
            }
            let w: CeId = self.winner_of(mask, self.rotor[bank]);
            won |= 1 << w;
            self.stats.grants += 1;
            self.stats.grants_by_bank[bank] += 1;
            self.bank_busy_until[bank] = now + service_cycles;
            self.rotor[bank] = w;
            self.deny_mask(mask & !(1 << w));
        }
        won
    }

    /// The cycle at which `bank` can next grant a request; a value at or
    /// before the current cycle means the bank is free now. The
    /// fast-forward horizon leans on this: a request denied because its
    /// bank is busy cannot be granted — and a denial mutates nothing but
    /// the denial counters — before this cycle.
    pub fn bank_free_at(&self, bank: usize) -> Cycle {
        self.bank_busy_until[bank]
    }

    /// Account `k` denied retry cycles for CE `ce` in closed form: exactly
    /// the counter movement `k` busy-bank [`Crossbar::arbitrate_into`]
    /// cycles would record for that CE (a busy-bank denial touches no
    /// other arbiter state — the rotor only moves on grants).
    pub fn note_denied_retries(&mut self, ce: CeId, k: u64) {
        self.stats.denials += k;
        self.stats.denials_by_ce[ce] += k;
    }

    /// Capacity invariants over one cycle's arbitration outcome: a grant
    /// implies a request, at most one grant per bank, and the granted bank
    /// was claimed for service. Allocation-free (nested scan over ≤ 8 CEs).
    #[cfg(feature = "audit")]
    pub(crate) fn audit_check(
        &self,
        now: Cycle,
        requests: &[Option<usize>],
        granted: &[bool],
    ) -> Result<(), String> {
        for (ce, &g) in granted.iter().enumerate() {
            if !g {
                continue;
            }
            let Some(bank) = requests[ce] else {
                return Err(format!("CE{ce} granted without a request"));
            };
            if self.bank_busy_until[bank] < now {
                return Err(format!(
                    "CE{ce} granted bank {bank} but the bank was never claimed \
                     (busy_until {} < now {now})",
                    self.bank_busy_until[bank]
                ));
            }
            for (other, &g2) in granted.iter().enumerate() {
                if other != ce && g2 && requests[other] == Some(bank) {
                    return Err(format!(
                        "bank {bank} granted to CE{ce} and CE{other} in the same cycle"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sole_requester_is_granted() {
        let mut x = Crossbar::new(4, 2, Arbitration::FixedLowFirst);
        let g = x.arbitrate(0, &[None, Some(1), None, None], 1);
        assert_eq!(g, vec![false, true, false, false]);
        assert_eq!(x.stats().grants, 1);
        assert_eq!(x.stats().denials, 0);
    }

    #[test]
    fn conflict_resolved_by_priority() {
        let mut x = Crossbar::new(4, 1, Arbitration::FixedLowFirst);
        let g = x.arbitrate(0, &[Some(0), Some(0), None, Some(0)], 1);
        assert_eq!(g, vec![true, false, false, false]);
        assert_eq!(x.stats().denials, 2);
        assert_eq!(x.stats().denials_by_ce, vec![0, 1, 0, 1]);
    }

    #[test]
    fn busy_bank_denies_everyone() {
        let mut x = Crossbar::new(2, 1, Arbitration::FixedLowFirst);
        assert_eq!(x.arbitrate(0, &[Some(0), None], 3), vec![true, false]);
        // Cycles 1 and 2: bank busy.
        assert_eq!(x.arbitrate(1, &[None, Some(0)], 3), vec![false, false]);
        assert_eq!(x.arbitrate(2, &[None, Some(0)], 3), vec![false, false]);
        // Cycle 3: free again.
        assert_eq!(x.arbitrate(3, &[None, Some(0)], 3), vec![false, true]);
    }

    #[test]
    fn distinct_banks_grant_in_parallel() {
        let mut x = Crossbar::new(4, 4, Arbitration::FixedLowFirst);
        let g = x.arbitrate(0, &[Some(0), Some(1), Some(2), Some(3)], 1);
        assert_eq!(g, vec![true; 4]);
    }

    #[test]
    fn bulk_denial_accounting_matches_per_cycle_retries() {
        let mk = || Crossbar::new(2, 1, Arbitration::FixedLowFirst);
        let (mut a, mut b) = (mk(), mk());
        // Claim the bank for 5 cycles at t=0 on both arbiters.
        assert_eq!(a.arbitrate(0, &[Some(0), None], 5), vec![true, false]);
        assert_eq!(b.arbitrate(0, &[Some(0), None], 5), vec![true, false]);
        // Per-cycle: CE1 retries cycles 1..5, denied each time.
        for t in 1..5 {
            assert_eq!(a.arbitrate(t, &[None, Some(0)], 5), vec![false, false]);
        }
        // Bulk: the horizon says the bank frees at cycle 5; account the
        // 4 skipped retry cycles in closed form.
        assert_eq!(b.bank_free_at(0), 5);
        b.note_denied_retries(1, 4);
        assert_eq!(a.stats(), b.stats());
        // Both arbiters then grant identically at the horizon cycle.
        let ga = a.arbitrate(5, &[None, Some(0)], 5);
        let gb = b.arbitrate(5, &[None, Some(0)], 5);
        assert_eq!(ga, gb);
        assert_eq!(ga, vec![false, true]);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn round_robin_shares_a_contended_bank() {
        let mut x = Crossbar::new(2, 1, Arbitration::RoundRobin);
        let mut wins = [0u32; 2];
        for t in 0..10 {
            let g = x.arbitrate(t, &[Some(0), Some(0)], 1);
            for (ce, got) in g.iter().enumerate() {
                if *got {
                    wins[ce] += 1;
                }
            }
        }
        assert_eq!(wins[0], wins[1], "round robin must alternate: {wins:?}");
    }

    #[test]
    fn fixed_priority_starves_low_priority_under_saturation() {
        let mut x = Crossbar::new(2, 1, Arbitration::FixedLowFirst);
        for t in 0..10 {
            let g = x.arbitrate(t, &[Some(0), Some(0)], 1);
            assert!(g[0] && !g[1]);
        }
        assert_eq!(x.stats().denials_by_ce[1], 10);
    }

    mod swar_vs_staged {
        use super::*;
        use proptest::prelude::*;

        /// Cluster widths the differential suite samples: narrower than
        /// the measured machine, the machine itself, and the scaling-study
        /// widths up to the full `LaneWord`.
        const WIDTHS: [usize; 5] = [2, 8, 16, 32, 64];

        /// Bank count for a width, mirroring the scaled preset's geometry
        /// (one bank per two CEs, saturating at the 16-bank crossbar).
        fn banks_for(n_ces: usize) -> usize {
            (n_ces / 2).clamp(2, 16)
        }

        /// Drive both resolvers through the same random request
        /// trajectory; after the SWAR side's deferred-denial flush every
        /// observable — winners each cycle, rotor state (via future
        /// winners), and the full counter set — must agree.
        fn check_equivalence(arb: Arbitration, n_ces: usize, cycles: &[(Vec<LaneWord>, u64)]) {
            let banks = banks_for(n_ces);
            let mut staged = Crossbar::new(n_ces, banks, arb);
            let mut swar = Crossbar::new(n_ces, banks, arb);
            // SWAR-side deferred denial bookkeeping, per CE — the dense
            // kernel tracks this via its pending masks; here the request
            // table itself says who asked and lost.
            let mut denied = vec![0u64; n_ces];
            for (t, (bank_req, service)) in cycles.iter().enumerate() {
                let now = t as Cycle;
                let want = staged.arbitrate_masks(now, bank_req, *service);
                let occupied =
                    bank_req
                        .iter()
                        .enumerate()
                        .fold(0u32, |o, (b, &m)| if m != 0 { o | 1 << b } else { o });
                let got = swar.arbitrate_masks_swar(now, bank_req, occupied, *service);
                prop_assert_eq!(
                    want,
                    got,
                    "winners diverged at cycle {} (width {})",
                    t,
                    n_ces
                );
                let requesters = bank_req.iter().fold(0, |a, &m| a | m);
                let mut lost = requesters & !got;
                while lost != 0 {
                    let ce = lost.trailing_zeros() as usize;
                    denied[ce] += 1;
                    lost &= lost - 1;
                }
            }
            for (ce, &k) in denied.iter().enumerate() {
                swar.note_denied_retries(ce, k);
            }
            prop_assert_eq!(staged.stats(), swar.stats());
        }

        /// Random per-bank requester masks with disjoint lanes (a CE
        /// requests at most one bank per cycle, as the cluster guarantees).
        /// Only the first `n_ces` drawn bytes participate.
        fn split_lanes(raw: &[u8], n_ces: usize, banks: usize) -> Vec<LaneWord> {
            let mut req = vec![0 as LaneWord; banks];
            for (ce, &r) in raw.iter().take(n_ces).enumerate() {
                // 0..=banks encodes "no request" as banks.
                let choice = (r as usize) % (banks + 1);
                if choice < banks {
                    req[choice] |= 1 << ce;
                }
            }
            req
        }

        proptest! {
            /// One byte per possible lane is drawn each cycle; the sampled
            /// width decides how many take part, so the same trajectory
            /// shape exercises 2-lane and 64-lane arbitration alike.
            #[test]
            fn swar_resolver_matches_staged_resolver(
                arb_pick in 0usize..4,
                width_pick in 0usize..WIDTHS.len(),
                raw in prop::collection::vec(
                    (prop::collection::vec(any::<u8>(), 64..65), 1u64..=3),
                    1..60,
                ),
            ) {
                let arb = [
                    Arbitration::FixedLowFirst,
                    Arbitration::RoundRobin,
                    Arbitration::EndsFirst,
                    Arbitration::CenterFirst,
                ][arb_pick];
                let n_ces = WIDTHS[width_pick];
                let banks = banks_for(n_ces);
                let cycles: Vec<(Vec<LaneWord>, u64)> = raw
                    .iter()
                    .map(|(lanes, service)| (split_lanes(lanes, n_ces, banks), *service))
                    .collect();
                check_equivalence(arb, n_ces, &cycles);
            }

            /// The lone-requester fast path in `winner_of` must pick the
            /// same winner as the policy scan for every discipline and
            /// every single-bit mask, across the full lane range.
            #[test]
            fn lone_requester_fast_path_is_policy_invariant(
                arb_pick in 0usize..4,
                width_pick in 0usize..WIDTHS.len(),
                lane_seed in 0usize..64,
                rotor_seed in 0usize..64,
            ) {
                let arb = [
                    Arbitration::FixedLowFirst,
                    Arbitration::RoundRobin,
                    Arbitration::EndsFirst,
                    Arbitration::CenterFirst,
                ][arb_pick];
                let n_ces = WIDTHS[width_pick];
                let ce = lane_seed % n_ces;
                let rotor = rotor_seed % n_ces;
                let x = Crossbar::new(n_ces, banks_for(n_ces), arb);
                prop_assert_eq!(x.winner_of(1 << ce, rotor), ce);
            }
        }
    }
}
