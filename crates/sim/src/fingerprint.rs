//! Stable content fingerprints for cache keys.
//!
//! The session result cache (fx8-core) memoizes simulation outputs keyed
//! by *content*: every input that can steer the simulation must reach the
//! key, and the key must be stable across processes, builds, and
//! platforms. `std::hash::Hash` guarantees none of that — its output is
//! explicitly allowed to change between releases and differs across
//! pointer widths — so this module provides a dedicated hasher with a
//! pinned algorithm: FNV-1a over a 128-bit state, with domain-separated,
//! length-prefixed writes so distinct input *structures* can never
//! produce identical byte streams (`"ab", "c"` hashes differently from
//! `"a", "bc"`).
//!
//! FNV-1a is not collision-resistant against adversaries; it does not
//! need to be. Cache entries are self-describing (versioned header, key
//! echoed inside the entry) and a wrong hit degrades to a recompute, not
//! corruption. What matters is that the fingerprint is *stable* (same
//! input, same key, forever — guarded by a golden test) and *sensitive*
//! (any input perturbation moves the key — guarded by a proptest in
//! fx8-core).

/// Version of the stepping semantics baked into this build. Any change
/// that can alter a simulated trajectory — stepper semantics, RNG draw
/// order, monitor reduction, workload templates — must bump this constant
/// so previously cached session results are invalidated wholesale.
/// (Pure-performance changes that are proven bit-identical, like the
/// fast-forward and dense engines were, do not require a bump.)
pub const ENGINE_VERSION: u64 = 1;

/// Whether this build carries the cycle-level auditor (`--features
/// audit`). Audit builds force scalar stepping and fill
/// [`crate::audit::AuditReport`]s, so their session results are not
/// interchangeable with plain builds; the cache keys the flag.
pub const AUDIT_BUILD: bool = cfg!(feature = "audit");

const FNV128_OFFSET: u128 = 0x6C62272E07BB014262B821756295C58D;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A 128-bit content fingerprint, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The canonical 32-hex-digit spelling (also the cache file stem).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a-128 hasher with domain-separated writes.
///
/// Each write is framed (a type tag, plus a length prefix for
/// variable-size payloads) so the concatenation of writes is an
/// unambiguous encoding of the input sequence.
#[derive(Debug, Clone)]
pub struct CacheKeyHasher {
    state: u128,
}

impl Default for CacheKeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheKeyHasher {
    /// Fresh hasher at the FNV-1a-128 offset basis.
    pub fn new() -> Self {
        CacheKeyHasher {
            state: FNV128_OFFSET,
        }
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Raw bytes, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.absorb(&[0x01]);
        self.absorb(&(bytes.len() as u64).to_le_bytes());
        self.absorb(bytes);
    }

    /// A UTF-8 string, length-prefixed (distinct domain from raw bytes).
    pub fn write_str(&mut self, s: &str) {
        self.absorb(&[0x02]);
        self.absorb(&(s.len() as u64).to_le_bytes());
        self.absorb(s.as_bytes());
    }

    /// A 64-bit integer, fixed-width little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.absorb(&[0x03]);
        self.absorb(&v.to_le_bytes());
    }

    /// A `usize`, widened to 64 bits so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// A boolean flag.
    pub fn write_bool(&mut self, v: bool) {
        self.absorb(&[0x04, v as u8]);
    }

    /// The finished fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_strs(parts: &[&str]) -> Fingerprint {
        let mut h = CacheKeyHasher::new();
        for p in parts {
            h.write_str(p);
        }
        h.finish()
    }

    /// Golden value: the algorithm is pinned. If this test ever fails the
    /// fingerprint function changed, which silently invalidates (or worse,
    /// silently *revalidates*) every on-disk cache in the world — bump
    /// [`ENGINE_VERSION`] instead of accepting a new golden.
    #[test]
    fn fingerprint_is_pinned() {
        let mut h = CacheKeyHasher::new();
        h.write_str("fx8");
        h.write_u64(1987);
        h.write_bool(true);
        h.write_bytes(&[0xde, 0xad]);
        assert_eq!(h.finish().to_hex(), "e630403baec0657df29ac19c094aa77c");
    }

    #[test]
    fn empty_input_is_offset_basis() {
        assert_eq!(CacheKeyHasher::new().finish(), Fingerprint(FNV128_OFFSET));
    }

    #[test]
    fn writes_are_domain_separated() {
        // Same byte stream, different framing, different fingerprint.
        assert_ne!(hash_strs(&["ab", "c"]), hash_strs(&["a", "bc"]));
        assert_ne!(hash_strs(&["abc"]), hash_strs(&["ab", "c"]));
        let mut s = CacheKeyHasher::new();
        s.write_str("ab");
        let mut b = CacheKeyHasher::new();
        b.write_bytes(b"ab");
        assert_ne!(s.finish(), b.finish(), "str and bytes domains differ");
    }

    #[test]
    fn single_bit_sensitivity() {
        let mut a = CacheKeyHasher::new();
        a.write_u64(42);
        let mut b = CacheKeyHasher::new();
        b.write_u64(43);
        assert_ne!(a.finish(), b.finish());
        let mut t = CacheKeyHasher::new();
        t.write_bool(true);
        let mut f = CacheKeyHasher::new();
        f.write_bool(false);
        assert_ne!(t.finish(), f.finish());
    }

    #[test]
    fn hex_rendering_is_32_digits() {
        let fp = hash_strs(&["x"]);
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(format!("{fp}"), hex);
        assert_eq!(Fingerprint(0).to_hex(), "0".repeat(32));
    }
}
