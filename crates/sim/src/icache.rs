//! Per-CE internal instruction cache.
//!
//! Each CE contains a 16 KB instruction cache "for efficient handling of
//! loops and other localized portions of code" (Appendix C). Loop bodies
//! that fit stop generating instruction traffic to the shared cache after
//! their first pass — the effect § 5.1 identifies as one reason high
//! concurrency does not force high miss rates.
//!
//! Modeled as a direct-mapped cache over instruction-fetch lines.

use crate::addr::LineId;
use crate::cache::{CacheStats, SetAssocCache};

/// A CE's internal instruction cache.
#[derive(Debug)]
pub struct ICache {
    inner: SetAssocCache,
    line_bytes: u64,
    n_sets: u64,
}

impl ICache {
    /// Build an icache of `capacity_bytes` with `line_bytes` lines.
    pub fn new(capacity_bytes: u64, line_bytes: u64) -> Self {
        assert!(capacity_bytes.is_power_of_two() && line_bytes.is_power_of_two());
        let n_sets = capacity_bytes / line_bytes;
        ICache {
            inner: SetAssocCache::new(n_sets as usize, 1),
            line_bytes,
            n_sets,
        }
    }

    #[inline]
    fn set_of(&self, line: LineId) -> usize {
        // `n_sets` is a power of two (asserted at construction), so the
        // set index is a mask, not a runtime modulo.
        (line.0 & (self.n_sets - 1)) as usize
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Probe for a fetch line. Returns `true` on hit; on miss the caller
    /// must fetch the line from the shared cache and then call [`Self::fill`].
    pub fn probe(&mut self, line: LineId) -> bool {
        self.inner.lookup(self.set_of(line), line).is_some()
    }

    /// Install a fetched line.
    pub fn fill(&mut self, line: LineId) {
        let set = self.set_of(line);
        if !self.inner.contains(set, line) {
            // Instruction lines are never dirty.
            self.inner.fill(set, line, false, false);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Invalidate everything (context switch to an unrelated job).
    pub fn flush(&mut self) {
        self.inner.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_that_fits_hits_after_first_pass() {
        let mut ic = ICache::new(1024, 32); // 32 lines
                                            // A "loop body" of 8 lines: first pass misses, second pass hits.
        for pass in 0..2 {
            for l in 0..8u64 {
                let hit = ic.probe(LineId(l));
                if pass == 0 {
                    assert!(!hit, "cold line {l} should miss");
                    ic.fill(LineId(l));
                } else {
                    assert!(hit, "warm line {l} should hit");
                }
            }
        }
        assert_eq!(ic.stats().misses, 8);
        assert_eq!(ic.stats().hits, 8);
    }

    #[test]
    fn footprint_larger_than_capacity_keeps_missing() {
        let mut ic = ICache::new(128, 32); // 4 lines, direct mapped
                                           // 8 distinct lines mapping onto 4 sets: every probe conflicts.
        for pass in 0..3 {
            for l in 0..8u64 {
                let hit = ic.probe(LineId(l));
                assert!(!hit, "pass {pass} line {l} should conflict-miss");
                ic.fill(LineId(l));
            }
        }
    }

    #[test]
    fn flush_forgets_contents() {
        let mut ic = ICache::new(256, 32);
        ic.fill(LineId(3));
        assert!(ic.probe(LineId(3)));
        ic.flush();
        assert!(!ic.probe(LineId(3)));
    }

    #[test]
    fn fill_is_idempotent() {
        let mut ic = ICache::new(256, 32);
        ic.fill(LineId(5));
        ic.fill(LineId(5));
        assert!(ic.probe(LineId(5)));
    }
}
