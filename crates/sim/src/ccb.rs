//! The Concurrency Control Bus.
//!
//! Concurrency on the FX/8 is dispatched in hardware: a special instruction
//! starts concurrent operation, "iterations of the DO loop are assigned to
//! CEs in a self-scheduled fashion", and "the processor which executes the
//! last iteration will continue serial execution after all iterations are
//! complete" (§ 3.2). Synchronization between dependent iterations also
//! rides this physically separate bus, so dependence waiting generates no
//! cache-bus traffic (§ 5.1).
//!
//! The grant daisy chain arbitrates simultaneous iteration requests. Its
//! default wiring ([`Arbitration::EndsFirst`]) favours the CEs at the ends
//! of the backplane — the mechanism this reproduction uses to explain the
//! paper's observation that CEs 7 and 0 stay busiest through concurrency
//! transitions (leftover iterations keep landing on them).

use crate::config::Arbitration;
use crate::{CeId, Cycle};
use serde::{Deserialize, Serialize};

/// Response to an iteration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterGrant {
    /// Keep waiting — the grant channel is occupied this cycle.
    Wait,
    /// Execute this iteration.
    Iter(u64),
    /// No iterations remain.
    Exhausted,
}

/// Dispatch counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CcbStats {
    /// Iterations granted, by CE.
    pub grants_by_ce: Vec<u64>,
    /// Cycles CEs spent waiting for the grant channel.
    pub grant_wait_cycles: u64,
    /// Cycles CEs spent blocked on the synchronization register.
    pub sync_wait_cycles: u64,
}

/// State of the in-flight concurrent loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LoopState {
    /// Next iteration index to hand out.
    next: u64,
    /// One past the last iteration index.
    total: u64,
    /// Iterations completed (including those done before this window).
    done: u64,
    /// CE granted the final iteration, if assigned yet.
    last_iter_ce: Option<CeId>,
}

/// The Concurrency Control Bus.
#[derive(Debug)]
pub struct Ccb {
    arb: Arbitration,
    grant_cycles: u64,
    /// Cycle at which the grant channel frees up.
    channel_free: Cycle,
    rotor: usize,
    state: Option<LoopState>,
    sync_value: u64,
    stats: CcbStats,
}

impl Ccb {
    /// Build a CCB for `n_ces` CEs.
    pub fn new(n_ces: usize, arb: Arbitration, grant_cycles: u64) -> Self {
        Ccb {
            arb,
            grant_cycles: grant_cycles.max(1),
            channel_free: 0,
            rotor: 0,
            state: None,
            sync_value: 0,
            stats: CcbStats {
                grants_by_ce: vec![0; n_ces],
                ..Default::default()
            },
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &CcbStats {
        &self.stats
    }

    /// Begin (or resume, at macro progress `first`) a concurrent loop of
    /// `total` iterations. Resets the sync register to `first` so dependent
    /// loops resumed mid-way do not deadlock.
    pub fn start_loop(&mut self, first: u64, total: u64) {
        assert!(first <= total, "progress beyond loop end");
        self.state = Some(LoopState {
            next: first,
            total,
            done: first,
            last_iter_ce: None,
        });
        self.sync_value = first;
    }

    /// Tear down loop state (cluster unmount).
    pub fn clear(&mut self) {
        self.state = None;
    }

    /// Whether a loop is mounted.
    pub fn loop_active(&self) -> bool {
        self.state.is_some()
    }

    /// Iterations not yet handed out.
    pub fn remaining(&self) -> u64 {
        self.state.map_or(0, |s| s.total - s.next)
    }

    /// Whether every iteration has completed.
    pub fn all_complete(&self) -> bool {
        self.state.is_none_or(|s| s.done == s.total)
    }

    /// The CE that must continue serial execution after the loop, if the
    /// final iteration has been assigned.
    pub fn serial_successor(&self) -> Option<CeId> {
        self.state.and_then(|s| s.last_iter_ce)
    }

    /// Arbitrate one cycle of iteration requests, materializing the grants
    /// (tests, tools). The cluster's stepper uses [`Ccb::arbitrate_into`].
    pub fn arbitrate(&mut self, now: Cycle, requesting: &[bool]) -> Vec<IterGrant> {
        let mut out = vec![IterGrant::Wait; requesting.len()];
        self.arbitrate_into(now, requesting, &mut out);
        out
    }

    /// Arbitrate one cycle of iteration requests into a caller-owned
    /// buffer — the per-cycle path, free of heap allocation. `requesting[ce]`
    /// is true if CE `ce` needs an iteration this cycle; every slot of `out`
    /// is overwritten. At most one grant per `grant_cycles`; once iterations
    /// run out every requester immediately learns `Exhausted`.
    pub fn arbitrate_into(&mut self, now: Cycle, requesting: &[bool], out: &mut [IterGrant]) {
        let n = self.stats.grants_by_ce.len();
        debug_assert_eq!(requesting.len(), n);
        debug_assert_eq!(out.len(), n);
        out.fill(IterGrant::Wait);
        let Some(state) = &mut self.state else {
            // No loop mounted: nothing to grant.
            for (ce, &req) in requesting.iter().enumerate() {
                if req {
                    out[ce] = IterGrant::Exhausted;
                }
            }
            return;
        };

        if state.next == state.total {
            for (ce, &req) in requesting.iter().enumerate() {
                if req {
                    out[ce] = IterGrant::Exhausted;
                }
            }
            return;
        }

        if self.channel_free > now {
            self.stats.grant_wait_cycles += requesting.iter().filter(|&&r| r).count() as u64;
            return;
        }

        let winner = self
            .arb
            .order_iter(n, self.rotor)
            .find(|&ce| requesting[ce]);
        if let Some(w) = winner {
            let iter = state.next;
            state.next += 1;
            if state.next == state.total {
                state.last_iter_ce = Some(w);
            }
            out[w] = IterGrant::Iter(iter);
            self.stats.grants_by_ce[w] += 1;
            self.rotor = w;
            self.channel_free = now + self.grant_cycles;
            // Losers wait for the channel.
            let losers = requesting
                .iter()
                .enumerate()
                .filter(|&(ce, &r)| r && ce != w)
                .count();
            self.stats.grant_wait_cycles += losers as u64;
        }
    }

    /// Record that a CE finished an iteration.
    pub fn complete_iter(&mut self) {
        if let Some(state) = &mut self.state {
            debug_assert!(state.done < state.total, "more completions than iterations");
            state.done += 1;
        }
    }

    /// Check the synchronization register against an `AwaitSync` target.
    pub fn sync_reached(&self, target: u64) -> bool {
        self.sync_value >= target
    }

    /// Count a cycle spent blocked on synchronization (for stats).
    pub fn note_sync_wait(&mut self) {
        self.stats.sync_wait_cycles += 1;
    }

    /// Bulk form of [`Ccb::note_sync_wait`]: the fast-forward path charges
    /// a whole skipped window of blocked cycles at once.
    pub(crate) fn note_sync_waits(&mut self, cycles: u64) {
        self.stats.sync_wait_cycles += cycles;
    }

    /// Bulk grant-channel wait accounting for the fast-forward path: while
    /// the channel is busy, [`Ccb::arbitrate_into`] charges one
    /// `grant_wait_cycles` per requester per cycle and mutates nothing
    /// else, so a skipped window of `cycles` with `requesters` CEs in
    /// `AwaitIter` owes exactly `cycles * requesters`.
    pub(crate) fn note_grant_waits(&mut self, cycles: u64) {
        self.stats.grant_wait_cycles += cycles;
    }

    /// Event horizon of the grant channel for CEs waiting in `AwaitIter`:
    /// `Some(c)` means nothing can be granted before cycle `c` (the channel
    /// is busy and only time frees it), so every cycle until then is a pure
    /// `Wait` with stat-only effects. `None` means arbitration resolves
    /// *this* cycle — a grant lands, or the requesters learn `Exhausted`
    /// (both the no-loop and the handed-out-everything cases bypass the
    /// channel-busy check in [`Ccb::arbitrate_into`]) — and the stepper
    /// must run it.
    pub(crate) fn grant_horizon(&self, now: Cycle) -> Option<Cycle> {
        match self.state {
            Some(s) if s.next < s.total && self.channel_free > now => Some(self.channel_free),
            _ => None,
        }
    }

    /// Apply a `PostSync` advance.
    pub fn post_sync(&mut self, value: u64) {
        self.sync_value = self.sync_value.max(value);
    }

    /// Loop progress `(next, done, total)` of the mounted loop, if any —
    /// the ground truth the invariant auditor checks dispatch against.
    pub fn progress(&self) -> Option<(u64, u64, u64)> {
        self.state.map(|s| (s.next, s.done, s.total))
    }

    /// Current value of the synchronization register.
    pub fn sync_value(&self) -> u64 {
        self.sync_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requesting(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn iterations_hand_out_in_order_and_exhaust() {
        let mut ccb = Ccb::new(2, Arbitration::FixedLowFirst, 1);
        ccb.start_loop(0, 3);
        let mut granted = Vec::new();
        let mut t = 0;
        while granted.len() < 3 {
            for g in ccb.arbitrate(t, &all_requesting(2)) {
                if let IterGrant::Iter(i) = g {
                    granted.push(i);
                }
            }
            t += 1;
        }
        assert_eq!(granted, vec![0, 1, 2]);
        let g = ccb.arbitrate(t, &all_requesting(2));
        assert!(g.iter().all(|x| *x == IterGrant::Exhausted));
    }

    #[test]
    fn one_grant_per_grant_period() {
        let mut ccb = Ccb::new(4, Arbitration::FixedLowFirst, 2);
        ccb.start_loop(0, 100);
        let g0 = ccb.arbitrate(0, &all_requesting(4));
        assert_eq!(
            g0.iter()
                .filter(|g| matches!(g, IterGrant::Iter(_)))
                .count(),
            1
        );
        // Channel busy at cycle 1 (grant_cycles = 2).
        let g1 = ccb.arbitrate(1, &all_requesting(4));
        assert!(g1.iter().all(|g| *g == IterGrant::Wait));
        let g2 = ccb.arbitrate(2, &all_requesting(4));
        assert_eq!(
            g2.iter()
                .filter(|g| matches!(g, IterGrant::Iter(_)))
                .count(),
            1
        );
    }

    #[test]
    fn ends_first_gives_leftovers_to_ce0_and_ce7() {
        let mut ccb = Ccb::new(8, Arbitration::EndsFirst, 1);
        ccb.start_loop(0, 2); // two leftover iterations, everyone asks
        let g0 = ccb.arbitrate(0, &all_requesting(8));
        assert_eq!(g0[0], IterGrant::Iter(0), "CE0 wins first leftover");
        // CE0 is now busy executing; the rest keep requesting.
        let mut req = all_requesting(8);
        req[0] = false;
        let g1 = ccb.arbitrate(1, &req);
        assert_eq!(g1[7], IterGrant::Iter(1), "CE7 wins second leftover");
    }

    #[test]
    fn last_iteration_ce_becomes_serial_successor() {
        let mut ccb = Ccb::new(2, Arbitration::FixedLowFirst, 1);
        ccb.start_loop(0, 2);
        assert_eq!(ccb.serial_successor(), None);
        ccb.arbitrate(0, &[true, false]); // CE0 takes iter 0
        ccb.arbitrate(1, &[false, true]); // CE1 takes iter 1 (the last)
        assert_eq!(ccb.serial_successor(), Some(1));
    }

    #[test]
    fn completion_tracking_resumes_from_macro_progress() {
        let mut ccb = Ccb::new(2, Arbitration::FixedLowFirst, 1);
        ccb.start_loop(10, 12); // 10 done at macro level, 2 to go
        assert!(!ccb.all_complete());
        assert_eq!(ccb.remaining(), 2);
        ccb.arbitrate(0, &[true, false]);
        ccb.arbitrate(1, &[false, true]);
        ccb.complete_iter();
        assert!(!ccb.all_complete());
        ccb.complete_iter();
        assert!(ccb.all_complete());
    }

    #[test]
    fn sync_register_orders_dependent_iterations() {
        let mut ccb = Ccb::new(2, Arbitration::FixedLowFirst, 1);
        ccb.start_loop(5, 10);
        // Resumed at iteration 5: awaiting 5 passes, awaiting 6 blocks.
        assert!(ccb.sync_reached(5));
        assert!(!ccb.sync_reached(6));
        ccb.post_sync(6);
        assert!(ccb.sync_reached(6));
        // Posts never move the register backwards.
        ccb.post_sync(2);
        assert!(ccb.sync_reached(6));
    }

    #[test]
    fn no_loop_means_immediate_exhausted() {
        let mut ccb = Ccb::new(2, Arbitration::FixedLowFirst, 1);
        let g = ccb.arbitrate(0, &[true, true]);
        assert!(g.iter().all(|x| *x == IterGrant::Exhausted));
        assert!(ccb.all_complete());
    }

    #[test]
    fn grant_horizon_tracks_channel_occupancy() {
        let mut ccb = Ccb::new(2, Arbitration::FixedLowFirst, 4);
        // No loop mounted: requests resolve immediately (Exhausted).
        assert_eq!(ccb.grant_horizon(0), None);
        ccb.start_loop(0, 2);
        // Channel free: a grant would land this cycle.
        assert_eq!(ccb.grant_horizon(0), None);
        ccb.arbitrate(0, &[true, false]);
        // Channel busy until cycle 4: nothing can change before then.
        assert_eq!(ccb.grant_horizon(1), Some(4));
        assert_eq!(ccb.grant_horizon(3), Some(4));
        assert_eq!(ccb.grant_horizon(4), None);
        // Last iteration handed out: Exhausted resolves immediately even
        // while the channel is still cooling down.
        ccb.arbitrate(4, &[true, false]);
        assert_eq!(ccb.remaining(), 0);
        assert_eq!(ccb.grant_horizon(5), None);
    }

    #[test]
    fn grant_stats_accumulate_per_ce() {
        let mut ccb = Ccb::new(3, Arbitration::FixedLowFirst, 1);
        ccb.start_loop(0, 6);
        let mut t = 0;
        while ccb.remaining() > 0 {
            ccb.arbitrate(t, &all_requesting(3));
            t += 1;
        }
        let total: u64 = ccb.stats().grants_by_ce.iter().sum();
        assert_eq!(total, 6);
        // Fixed-low-first with everyone always requesting: CE0 gets them all.
        assert_eq!(ccb.stats().grants_by_ce[0], 6);
    }
}
